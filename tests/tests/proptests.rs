//! Cross-crate property tests: invariants that must hold for any generated
//! dataset and any sampled configuration.

use proptest::prelude::*;
use smartml::{Algorithm, Budget, SmartML, SmartMlOptions};
use smartml_data::synth::SynthSpec;
use smartml_data::train_valid_split;
use smartml_metafeatures::{extract, N_META_FEATURES};

/// Strategy: a small but valid blob dataset spec.
fn blob_spec() -> impl Strategy<Value = (SynthSpec, u64)> {
    (60usize..150, 2usize..6, 2usize..4, 0.3f64..2.0, 0u64..1000).prop_map(
        |(n, d, k, spread, seed)| (SynthSpec::Blobs { n, d, k, spread }, seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn metafeatures_always_25_and_finite((spec, seed) in blob_spec()) {
        let data = spec.generate("prop", seed);
        let mf = extract(&data, &data.all_rows());
        prop_assert_eq!(mf.values.len(), N_META_FEATURES);
        prop_assert!(mf.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn splits_partition_any_dataset((spec, seed) in blob_spec()) {
        let data = spec.generate("prop", seed);
        let (train, valid) = train_valid_split(&data, 0.25, seed);
        let mut all: Vec<usize> = train.iter().chain(&valid).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..data.n_rows()).collect::<Vec<_>>());
        // Both splits see every class (stratified, n >= 60, k <= 3).
        prop_assert!(data.class_counts_for(&train).iter().all(|&c| c > 0));
        prop_assert!(data.class_counts_for(&valid).iter().all(|&c| c > 0));
    }

    #[test]
    fn sampled_configs_always_build_and_fit(
        (spec, seed) in blob_spec(),
        alg_idx in 0usize..15,
    ) {
        let data = spec.generate("prop", seed);
        let algorithm = Algorithm::ALL[alg_idx];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let config = algorithm.param_space().sample(&mut rng);
        let rows = data.all_rows();
        // Building never panics; fitting either succeeds or returns a
        // structured error.
        let clf = algorithm.build(&config);
        match clf.fit(&data, &rows) {
            Ok(model) => {
                let proba = model.predict_proba(&data, &rows[..5.min(rows.len())]);
                for p in proba {
                    let total: f64 = p.iter().sum();
                    prop_assert!((total - 1.0).abs() < 1e-6, "{algorithm}: sums to {total}");
                    prop_assert!(p.iter().all(|v| v.is_finite()));
                }
            }
            Err(e) => {
                // Acceptable structured failure (tiny class, degenerate data).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

// The full pipeline is too slow for many proptest cases; one representative
// randomised case via a fixed set of seeds.
#[test]
fn pipeline_never_reports_out_of_range_accuracy() {
    for seed in [3u64, 17, 99] {
        let data = SynthSpec::Blobs { n: 120, d: 3, k: 2, spread: 1.0 }
            .generate(&format!("range{seed}"), seed);
        let options = SmartMlOptions {
            budget: Budget::Trials(6),
            top_n_algorithms: 2,
            cv_folds: 2,
            seed,
            ..Default::default()
        };
        let outcome = SmartML::new(options).run(&data).expect("runs");
        let acc = outcome.report.best.validation_accuracy;
        assert!((0.0..=1.0).contains(&acc), "accuracy {acc} out of range");
        for tune in &outcome.report.tuning {
            assert!((0.0..=1.0).contains(&tune.best_cv_accuracy));
            assert!((0.0..=1.0).contains(&tune.validation_accuracy));
        }
    }
}
