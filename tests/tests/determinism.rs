//! Cross-thread-count determinism: a SmartML run must produce a
//! byte-identical report JSON for any `n_threads` at a fixed seed — the
//! pool only changes wall-clock time, never results.

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;

/// Runs the full pipeline at the given width and returns the report JSON
/// with wall-clock timings zeroed (the only legitimately nondeterministic
/// field).
fn report_json(n_threads: usize) -> String {
    let data = gaussian_blobs("det", 200, 5, 3, 1.0, 7);
    let options = SmartMlOptions::default()
        .with_budget(Budget::Trials(12))
        .with_ensembling(true)
        .with_interpretability(true)
        .with_seed(7)
        .with_n_threads(n_threads);
    let mut engine = SmartML::new(options);
    let mut report = engine.run(&data).expect("pipeline runs").report;
    for phase in &mut report.phases {
        phase.secs = 0.0;
    }
    serde_json::to_string_pretty(&report).expect("report serialises")
}

#[test]
fn report_is_identical_for_any_thread_count() {
    let serial = report_json(1);
    for threads in [2, 8] {
        let parallel = report_json(threads);
        assert_eq!(
            serial, parallel,
            "report diverged between n_threads=1 and n_threads={threads}"
        );
    }
}
