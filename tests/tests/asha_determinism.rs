//! Full-pipeline ASHA determinism: with the asynchronous successive
//! halving optimiser selected, a SmartML run must produce a
//! byte-identical report JSON at any worker-pool width — the bounded
//! async window orders every rung decision by job index, so the pool
//! only changes wall-clock time, never results. The same must hold with
//! Hyperband, and (feature-gated below) under injected fold faults.

use smartml::{Budget, OptimizerChoice, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;
use std::sync::Mutex;

/// The fail-point registry is process-global; the fault-armed test below
/// must not overlap the clean runs, so every test in this binary
/// serialises on this lock.
static ARMED: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARMED.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the full pipeline at the given width and returns the report JSON
/// with wall-clock timings zeroed (the only legitimately nondeterministic
/// field).
fn report_json(optimizer: OptimizerChoice, n_threads: usize) -> String {
    let data = gaussian_blobs("det", 200, 5, 3, 1.0, 7);
    let options = SmartMlOptions::default()
        .with_budget(Budget::Trials(12))
        .with_optimizer(optimizer)
        .with_seed(7)
        .with_n_threads(n_threads);
    let mut engine = SmartML::new(options);
    let mut report = engine.run(&data).expect("pipeline runs").report;
    for phase in &mut report.phases {
        phase.secs = 0.0;
    }
    serde_json::to_string_pretty(&report).expect("report serialises")
}

#[test]
fn asha_report_is_identical_for_any_thread_count() {
    let _guard = lock();
    let serial = report_json(OptimizerChoice::Asha, 1);
    for threads in [2, 8] {
        let parallel = report_json(OptimizerChoice::Asha, threads);
        assert_eq!(
            serial, parallel,
            "ASHA report diverged between n_threads=1 and n_threads={threads}"
        );
    }
}

#[test]
fn hyperband_report_is_identical_for_any_thread_count() {
    let _guard = lock();
    let serial = report_json(OptimizerChoice::Hyperband, 1);
    let parallel = report_json(OptimizerChoice::Hyperband, 8);
    assert_eq!(serial, parallel, "Hyperband report diverged between n_threads=1 and 8");
}

/// With the fail-point registry armed at a 20% panic rate on the fold
/// site, the faulted ASHA pipeline must still be byte-identical across
/// widths: the fail point keys on `(config, fold)`, so the same rung
/// jobs fault the same way in the same ledger order regardless of how
/// many workers race.
#[cfg(feature = "fault-injection")]
#[test]
fn asha_report_is_width_independent_under_injected_faults() {
    use smartml_runtime::faults::fail::{self, FaultPlan, SiteRule};
    use std::time::Duration;

    let _guard = lock();
    let plan = FaultPlan {
        seed: 41,
        rules: vec![SiteRule {
            site: "smac::fold".into(),
            panic_rate: 0.2,
            hang_rate: 0.0,
            hang_for: Duration::ZERO,
        }],
    };
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        fail::arm(plan.clone());
        reports.push((threads, report_json(OptimizerChoice::Asha, threads)));
        fail::disarm();
    }
    let (_, serial) = &reports[0];
    for (threads, parallel) in &reports[1..] {
        assert_eq!(
            serial, parallel,
            "faulted ASHA report diverged between n_threads=1 and n_threads={threads}"
        );
    }
}
