//! Job-service integration: the multi-tenant daemon must produce
//! results byte-identical (modulo wall-clock timings) to the one-shot
//! API at any worker-pool width, keep tenants' fault domains apart,
//! survive a kill -9 mid-job, and stream WATCH lines end to end over
//! the real TCP front end.

use smartml::api::{handle, DatasetPayload, ExperimentOptions, Request, Response};
use smartml::KnowledgeBase;
use smartml_data::synth::SynthSpec;
use smartml_jobd::{
    materialize, spawn_workers, JobClient, JobDataset, JobServer, JobServerOptions, JobState,
    JobdConfig, JobdState, Submitted, WatchKind, JOURNAL_FILE,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Experiments (daemon-side or one-shot) are serialised across this
/// file's tests: the fault-injection registry is process-global, and a
/// run in one test must never see a plan armed by another.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jobd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(tag: &str, workers: usize) -> JobdConfig {
    JobdConfig { dir: tmp_dir(tag), workers, fsync: false, ..JobdConfig::default() }
}

fn synth_job(spec: SynthSpec, seed: u64) -> JobDataset {
    JobDataset::Synth { spec, seed, rows: None }
}

fn tiny_options(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        budget_trials: Some(4),
        top_n_algorithms: Some(1),
        seed: Some(seed),
        n_threads: Some(1),
        ..ExperimentOptions::default()
    }
}

/// The job mix all the pool-width runs share: three tenants, two jobs
/// each, distinct generator families and seeds.
fn job_mix() -> Vec<(&'static str, &'static str, JobDataset, ExperimentOptions)> {
    vec![
        (
            "alpha",
            "a-blobs",
            synth_job(SynthSpec::Blobs { n: 48, d: 3, k: 2, spread: 0.6 }, 3),
            tiny_options(11),
        ),
        (
            "alpha",
            "a-spirals",
            synth_job(SynthSpec::TwoSpirals { n: 40, noise: 0.05 }, 5),
            tiny_options(12),
        ),
        (
            "beta",
            "b-kin",
            synth_job(SynthSpec::Kinematics { n: 48, d: 4, noise: 0.05 }, 7),
            tiny_options(13),
        ),
        (
            "beta",
            "b-blobs",
            synth_job(SynthSpec::Blobs { n: 40, d: 4, k: 3, spread: 1.0 }, 9),
            tiny_options(14),
        ),
        (
            "gamma",
            "g-drift",
            synth_job(SynthSpec::SensorDrift { n: 48, d: 3, drift: 0.3 }, 2),
            tiny_options(15),
        ),
        (
            "gamma",
            "g-proto",
            synth_job(SynthSpec::PrototypeNoise { n: 40, d: 6, k: 2, snr: 1.5 }, 4),
            tiny_options(16),
        ),
    ]
}

/// Strips wall-clock noise so reports compare byte-for-byte: phase
/// timings and the (timing-only) timeline section.
fn normalize(report_json: &str) -> serde_json::Value {
    use serde_json::Value;
    let mut v: Value = serde_json::from_str(report_json).expect("report parses");
    let Value::Object(fields) = &mut v else { panic!("report is an object") };
    for (key, val) in fields.iter_mut() {
        match key.as_str() {
            "phases" => {
                let Value::Array(phases) = val else { continue };
                for phase in phases {
                    let Value::Object(pf) = phase else { continue };
                    for (k, f) in pf.iter_mut() {
                        if k == "secs" {
                            *f = Value::Null;
                        }
                    }
                }
            }
            "timeline" => *val = Value::Null,
            _ => {}
        }
    }
    v
}

/// The one-shot reference: the exact path `smartml-cli run` takes — a
/// fresh knowledge base, the same materialised payload, `api::handle`.
fn one_shot(name: &str, dataset: &JobDataset, options: &ExperimentOptions) -> serde_json::Value {
    let payload: DatasetPayload = materialize(dataset, name);
    let mut kb = KnowledgeBase::new();
    let request = Request::RunExperiment {
        name: name.to_string(),
        dataset: payload,
        options: options.clone(),
    };
    match handle(&mut kb, request) {
        Response::Experiment { report } => {
            normalize(&serde_json::to_string_pretty(&*report).expect("report encodes"))
        }
        other => panic!("one-shot run failed: {other:?}"),
    }
}

fn wait_terminal(state: &JobdState, id: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = state.job_view(id).expect("job exists").state;
        if s.is_terminal() {
            return s;
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The headline guarantee: a job's report equals the one-shot run's,
/// byte for byte after timing normalisation, at pool widths 1, 2 and 8.
#[test]
fn job_reports_match_one_shot_at_widths_1_2_8() {
    let _guard = lock();
    let mix = job_mix();
    let expected: Vec<serde_json::Value> =
        mix.iter().map(|(_, name, ds, opts)| one_shot(name, ds, opts)).collect();
    for width in [1usize, 2, 8] {
        let config = cfg(&format!("width{width}"), width);
        let dir = config.dir.clone();
        let (state, _) = JobdState::open(config).expect("state opens");
        let state = Arc::new(state);
        let workers = spawn_workers(&state, width);
        let ids: Vec<u64> = mix
            .iter()
            .map(|(tenant, name, ds, opts)| {
                state.submit(tenant, name, ds.clone(), opts.clone()).expect("admitted").0
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let terminal = wait_terminal(&state, id);
            assert_eq!(terminal, JobState::Done, "job {} at width {width}", mix[i].1);
            let got = normalize(&state.result_json(id).expect("result file"));
            assert_eq!(
                got, expected[i],
                "job {} at width {width} diverged from the one-shot run",
                mix[i].1
            );
        }
        state.shutdown();
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// kill -9 mid-job: drop the state with a job running (journal says
/// started, no terminal record) and another queued. On reopen the
/// running job is aborted, the queued one is re-queued and — run by a
/// fresh worker pool — still produces the one-shot answer.
#[test]
fn kill_minus_nine_recovery_completes_queued_work() {
    let _guard = lock();
    let config = cfg("kill9", 1);
    let dir = config.dir.clone();
    let mix = job_mix();
    let (_, name, ds, opts) = &mix[0];
    let expected = one_shot(name, ds, opts);
    let (id_running, id_queued);
    {
        let (state, _) = JobdState::open(config.clone()).expect("state opens");
        let (a, _) = state.submit("t", "doomed", ds.clone(), opts.clone()).expect("admitted");
        let (b, _) = state.submit("t", name, ds.clone(), opts.clone()).expect("admitted");
        id_running = a;
        id_queued = b;
        assert_eq!(state.claim_next().expect("claimable").id, a);
        // Drop without finishing: the kill -9. No worker threads were
        // spawned, so the claimed job dies exactly mid-flight.
    }
    let (state, info) = JobdState::open(config).expect("recovery opens");
    assert_eq!(info.aborted, vec![id_running]);
    assert_eq!(info.requeued, vec![id_queued]);
    assert_eq!(state.job_view(id_running).expect("job").state, JobState::Aborted);
    let state = Arc::new(state);
    let workers = spawn_workers(&state, 1);
    assert_eq!(wait_terminal(&state, id_queued), JobState::Done);
    let got = normalize(&state.result_json(id_queued).expect("result file"));
    assert_eq!(got, expected, "post-recovery run diverged from the one-shot run");
    state.shutdown();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn journal tail (partial final record, as a crash mid-append
/// leaves behind) is truncated on open and every intact record replays.
#[test]
fn torn_journal_tail_is_truncated_on_recovery() {
    let _guard = lock();
    let config = cfg("torn", 1);
    let dir = config.dir.clone();
    let id = {
        let (state, _) = JobdState::open(config.clone()).expect("state opens");
        state
            .submit("t", "survivor", job_mix()[0].2.clone(), tiny_options(1))
            .expect("admitted")
            .0
    };
    // Simulate a crash mid-append: garbage half-frame at the tail.
    let wal = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&wal).expect("journal readable");
    bytes.extend_from_slice(b"00000042 deadbeef {\"kind\":\"cut-off");
    std::fs::write(&wal, &bytes).expect("journal writable");
    let (state, info) = JobdState::open(config).expect("recovery opens");
    assert!(info.truncated_tail, "the torn tail must be detected");
    assert_eq!(info.requeued, vec![id], "intact records replay");
    assert_eq!(state.job_view(id).expect("job").state, JobState::Queued);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End to end over TCP: submit through the real server, watch the
/// lifecycle stream (subscribed → running → done with progress lines in
/// between), fetch the result, exercise admission rejection and
/// shutdown drain.
#[test]
fn server_streams_watch_lines_end_to_end() {
    let _guard = lock();
    let config = JobdConfig { quota_trials: 9, ..cfg("e2e", 1) };
    let dir = config.dir.clone();
    let options = JobServerOptions {
        config,
        progress_interval: Duration::from_millis(60),
        ..JobServerOptions::default()
    };
    let server = JobServer::bind(options).expect("server binds");
    let addr = server.local_addr().expect("bound").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let client = JobClient::connect(&addr);
    client.ping().expect("ping");
    let (_, name, ds, opts) = &job_mix()[0];
    let id = match client.submit("acme", name, ds.clone(), opts.clone()).expect("submit") {
        Submitted::Accepted { id, clamped } => {
            assert!(!clamped);
            id
        }
        Submitted::Rejected { reason, detail } => panic!("rejected: {reason}: {detail}"),
    };
    let mut kinds: Vec<WatchKind> = Vec::new();
    let terminal = client
        .watch(id, |line| {
            if let smartml_jobd::JobResponse::Watch { kind, .. } = line {
                kinds.push(*kind);
            }
        })
        .expect("watch");
    assert_eq!(terminal, JobState::Done);
    assert_eq!(kinds.first(), Some(&WatchKind::Subscribed));
    assert!(
        kinds.contains(&WatchKind::Transition),
        "lifecycle transitions must stream: {kinds:?}"
    );
    let report = client.result(id).expect("result");
    assert_eq!(report.dataset, *name);

    // Quota: 9 trials granted 4 already, next 4 fits, then exhausted.
    let second = client.submit("acme", name, ds.clone(), opts.clone()).expect("submit");
    let Submitted::Accepted { id: id2, .. } = second else { panic!("second submit rejected") };
    client.wait(id2).expect("second job");
    match client.submit("acme", name, ds.clone(), opts.clone()).expect("submit") {
        // 1 trial left < 3-trial floor → typed rejection.
        Submitted::Rejected { reason, .. } => assert_eq!(reason, "quota_exhausted"),
        Submitted::Accepted { .. } => panic!("quota must be exhausted"),
    }
    // Another tenant is untouched by acme's exhaustion.
    let Submitted::Accepted { id: id3, .. } =
        client.submit("other", name, ds.clone(), opts.clone()).expect("submit")
    else {
        panic!("other tenant must admit")
    };
    client.wait(id3).expect("other tenant job");

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread").expect("clean run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault isolation across tenants: a tenant whose job is bombarded with
/// injected trial panics (tripping that job's breakers, filling its
/// failure ledger) must not perturb another tenant's results — the
/// clean tenant's report stays byte-identical to the no-faults one-shot
/// run, because every job owns a fresh engine.
#[cfg(feature = "fault-injection")]
#[test]
fn faulty_tenant_never_perturbs_clean_tenant_results() {
    use smartml_runtime::faults::fail::{self, FaultPlan, SiteRule};
    let _guard = lock();
    let config = cfg("faults", 1);
    let dir = config.dir.clone();
    let mix = job_mix();
    let (_, clean_name, clean_ds, clean_opts) = &mix[2];
    // Baseline computed with no plan armed.
    let expected_clean = one_shot(clean_name, clean_ds, clean_opts);

    let (state, _) = JobdState::open(config).expect("state opens");
    let state = Arc::new(state);
    let workers = spawn_workers(&state, 1);

    // 30% combined fault rate into the mayhem tenant's job.
    fail::arm(FaultPlan {
        seed: 41,
        rules: vec![SiteRule {
            site: "smac::fold".into(),
            panic_rate: 0.2,
            hang_rate: 0.1,
            hang_for: Duration::from_secs(60),
        }],
    });
    let mayhem_opts = ExperimentOptions {
        budget_trials: Some(12),
        top_n_algorithms: Some(2),
        trial_timeout_seconds: Some(2.0),
        ..tiny_options(5)
    };
    let (mayhem_id, _) = state
        .submit("mayhem", "m-blobs", mix[0].2.clone(), mayhem_opts)
        .expect("admitted");
    let mayhem_state = wait_terminal(&state, mayhem_id);
    fail::disarm();
    assert!(fail::injected_panics() + fail::injected_hangs() > 0, "faults must have fired");
    if mayhem_state == JobState::Done {
        // The engine absorbed the faults; its own ledger must say so.
        let report = normalize(&state.result_json(mayhem_id).expect("result"));
        let clean = report["failures"]["algorithms"]
            .as_array()
            .is_none_or(|a| a.iter().all(|s| s["counts"]["panicked"] == 0i64));
        assert!(!clean, "injected panics must surface in the mayhem ledger");
    }

    // Now the clean tenant, after the mayhem: fresh engine, no faults
    // armed, identical answer.
    let (clean_id, _) = state
        .submit("victim", clean_name, clean_ds.clone(), clean_opts.clone())
        .expect("admitted");
    assert_eq!(wait_terminal(&state, clean_id), JobState::Done);
    let got = normalize(&state.result_json(clean_id).expect("result"));
    assert_eq!(
        got, expected_clean,
        "the clean tenant's report changed because another tenant faulted"
    );
    state.shutdown();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
