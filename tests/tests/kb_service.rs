//! End-to-end: the SmartML pipeline running against the durable and
//! remote knowledge-base backends. The engine must behave exactly as it
//! does in-memory — same phases, same report — while the experience it
//! accumulates survives process restarts (WAL) or lives behind a socket
//! (`smartmld`).

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::KbBackend;
use smartml_kbd::{DurableKb, DurableOptions, KbClient, Server, ServerOptions};
use smartml_preprocess::Op;
use std::path::PathBuf;

fn quick_options() -> SmartMlOptions {
    SmartMlOptions {
        budget: Budget::Trials(6),
        top_n_algorithms: 2,
        cv_folds: 2,
        preprocessing: vec![Op::Zv],
        ..Default::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn pipeline_over_wal_backend_survives_reopen() {
    let dir = temp_dir("wal");

    // First process lifetime: run on a durable KB, then drop it.
    let kb = DurableKb::open(&dir).expect("open durable KB");
    let mut engine = SmartML::with_backend(kb, quick_options());
    let d1 = gaussian_blobs("wal-first", 150, 3, 2, 0.8, 11);
    let outcome = engine.run(&d1).expect("first run");
    assert!(outcome.report.best.validation_accuracy > 0.6);
    let kb = engine.into_kb();
    assert_eq!(kb.kb().len(), 1);
    let runs_after_first = kb.kb().n_runs();
    assert!(runs_after_first >= 2);
    drop(kb);

    // Second lifetime: the WAL replays and the next run sees neighbours.
    let kb = DurableKb::open(&dir).expect("reopen durable KB");
    assert_eq!(kb.kb().len(), 1, "experience must survive reopen");
    assert_eq!(kb.kb().n_runs(), runs_after_first);
    let mut engine = SmartML::with_backend(kb, quick_options());
    let d2 = gaussian_blobs("wal-second", 150, 3, 2, 0.8, 12);
    let outcome = engine.run(&d2).expect("second run");
    assert!(
        !outcome.report.kb_neighbors.is_empty(),
        "warm KB must surface neighbours"
    );
    let kb = engine.into_kb();
    assert_eq!(kb.kb().len(), 2);
    assert_eq!(kb.kb_describe(), format!("wal:{}", dir.display()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_over_remote_backend_grows_server_kb() {
    let dir = temp_dir("remote");
    let server = Server::bind(ServerOptions {
        dir: dir.clone(),
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        ..ServerOptions::default()
    })
    .expect("server binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    let client = KbClient::connect(addr.clone());
    let mut engine = SmartML::with_backend(client, quick_options());
    let d = gaussian_blobs("remote-run", 150, 3, 2, 0.8, 21);
    let outcome = engine.run(&d).expect("run over tcp");
    assert!(outcome.report.best.validation_accuracy > 0.6);

    // The server-side KB grew by this run's records.
    let control = KbClient::connect(addr);
    let stats = control.stats().expect("stats");
    assert_eq!(stats.datasets, 1);
    assert_eq!(stats.runs, 2, "one run per nominated algorithm");

    control.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_verb_reports_request_and_wal_activity() {
    let dir = temp_dir("metrics");
    let server = Server::bind(ServerOptions {
        dir: dir.clone(),
        // fsync on: the WAL fsync counter must move with each write.
        ..ServerOptions::default()
    })
    .expect("server binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    let client = KbClient::connect(addr);
    client.ping().expect("ping");
    client.ping().expect("ping");
    let d = gaussian_blobs("metrics-run", 60, 3, 2, 0.8, 31);
    let mf = smartml_metafeatures::extract(&d, &d.all_rows());
    client
        .record_run(
            "metrics-run",
            &mf,
            smartml_kb::AlgorithmRun {
                algorithm: smartml_classifiers::Algorithm::Knn,
                config: smartml_classifiers::ParamConfig::default(),
                accuracy: 0.9,
            },
        )
        .expect("record");

    let before = client.metrics().expect("metrics verb answers");
    // Counters are process-global, so other tests in this binary may have
    // contributed — assert floors and deltas, not absolutes.
    assert!(before.requests >= 3, "ping+ping+record seen: {before:?}");
    let op = |m: &smartml_kbd::ServerMetrics, name: &str| {
        m.ops.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or(0)
    };
    assert!(op(&before, "ping") >= 2);
    assert!(op(&before, "record_run") >= 1);
    assert!(before.wal_fsyncs >= 1, "fsync-on write must fsync: {before:?}");
    assert!(before.bytes_in > 0 && before.bytes_out > 0);

    // The metrics request itself is counted by the next reading.
    let after = client.metrics().expect("second metrics read");
    assert!(after.requests > before.requests);
    assert!(op(&after, "metrics") > op(&before, "metrics").saturating_sub(1));

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
