//! End-to-end failover: a SmartML pipeline pointed at a replicated KB
//! deployment (`tcp:primary,replica`) loses its primary mid-flight and
//! still completes — reads fail over to the caught-up replica, the
//! unreachable write is degraded into the report's warnings ledger
//! rather than an error, and nothing is silently dropped.

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;
use smartml_kbd::{
    DurableOptions, EventServer, EventServerOptions, KbClient, ReplicaOptions, ReplicaTailer,
    RetryPolicy, ServeRole, ShardedKb,
};
use smartml_preprocess::Op;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_options() -> SmartMlOptions {
    SmartMlOptions {
        budget: Budget::Trials(6),
        top_n_algorithms: 2,
        cv_folds: 2,
        preprocessing: vec![Op::Zv],
        ..Default::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        ..RetryPolicy::default()
    }
}

#[test]
fn pipeline_survives_losing_the_primary_mid_flight() {
    let durable = DurableOptions { fsync_writes: false, ..Default::default() };

    // A primary with one pipeline run of experience in it.
    let primary_dir = temp_dir("failover-primary");
    let primary = EventServer::bind(EventServerOptions {
        dir: primary_dir.clone(),
        n_loops: 2,
        durable: durable.clone(),
        ..EventServerOptions::default()
    })
    .expect("primary binds");
    let primary_addr = primary.local_addr().expect("addr").to_string();
    let primary_handle = std::thread::spawn(move || primary.run().expect("primary serve loop"));
    {
        let client = KbClient::connect(primary_addr.clone());
        let mut engine = SmartML::with_backend(client, quick_options());
        let seed = gaussian_blobs("failover-seed", 150, 3, 2, 0.8, 41);
        engine.run(&seed).expect("seeding run against the live primary");
    }
    let control = KbClient::connect(primary_addr.clone());
    let target = control.stats().expect("stats").applied_seq;
    assert!(target >= 2, "the seeding run must have recorded experience");

    // A replica, caught up to that experience, serving reads.
    let replica_dir = temp_dir("failover-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable.clone(), 2).expect("replica opens"));
    let tailer = ReplicaTailer::spawn(
        ReplicaOptions {
            primary: primary_addr.clone(),
            poll_interval: Duration::from_millis(5),
            durable: durable.clone(),
            ..ReplicaOptions::default()
        },
        Arc::clone(&store),
    );
    let replica = EventServer::bind_with_store(
        EventServerOptions {
            dir: replica_dir.clone(),
            n_loops: 2,
            durable,
            role: ServeRole::Replica { primary: primary_addr.clone() },
            ..EventServerOptions::default()
        },
        Arc::clone(&store),
    )
    .expect("replica binds");
    let replica_addr = replica.local_addr().expect("addr").to_string();
    let replica_handle = std::thread::spawn(move || replica.run().expect("replica serve loop"));
    let start = Instant::now();
    while store.applied_seq() != target {
        assert!(start.elapsed() < Duration::from_secs(60), "replica never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    tailer.stop();

    // Lose the primary, then run the pipeline against the replica set.
    control.shutdown().expect("kill the primary");
    primary_handle.join().expect("primary thread");

    let client =
        KbClient::connect(format!("{primary_addr},{replica_addr}")).with_retry(fast_retry());
    let mut engine = SmartML::with_backend(client, quick_options());
    let d = gaussian_blobs("failover-run", 150, 3, 2, 0.8, 42);
    let outcome = engine.run(&d).expect("the run must complete on replica reads");

    // Reads were answered: the warm KB surfaced neighbours through the
    // replica even though the primary was gone.
    assert!(
        !outcome.report.kb_neighbors.is_empty(),
        "replica reads must have served the KB recommendation"
    );
    // The failures ledger is exact: the lost write is reported, and the
    // read path's failover left its trace in the health warnings.
    let warnings = outcome.report.failures.kb_warnings.join("\n");
    assert!(
        warnings.contains("KB update failed"),
        "the unreachable primary write must be in the ledger: {warnings}"
    );
    assert!(
        warnings.contains("failing over"),
        "the read failover must be in the ledger: {warnings}"
    );
    // The replica itself was never written to.
    let replica_control = KbClient::connect(replica_addr);
    assert_eq!(
        replica_control.stats().expect("stats").applied_seq,
        target,
        "no write may have reached the read-only replica"
    );

    replica_control.shutdown().expect("replica shuts down");
    replica_handle.join().expect("replica thread");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
