//! Meta-learning loop tests: the paper's central claims, verified
//! end-to-end — KB warm starts help at small budgets, the KB grows with
//! every run, and selection routes dataset families to the right
//! algorithm regions.

use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::{Algorithm, Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_data::synth::{gaussian_blobs, sparse_counts, xor_parity, SynthSpec};
use smartml_kb::QueryOptions;
use smartml_metafeatures::extract;

fn options(trials: usize) -> SmartMlOptions {
    SmartMlOptions {
        budget: Budget::Trials(trials),
        top_n_algorithms: 2,
        cv_folds: 2,
        seed: 7,
        update_kb: false,
        ..Default::default()
    }
}

/// A KB with experience on two distinct dataset families.
fn two_region_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile {
        algorithms: vec![
            Algorithm::Knn,
            Algorithm::NaiveBayes,
            Algorithm::Lda,
            Algorithm::RandomForest,
            Algorithm::J48,
        ],
        configs_per_algorithm: 2,
        ..BootstrapProfile::fast()
    };
    for seed in 0..3u64 {
        bootstrap_dataset(&mut kb, &gaussian_blobs(&format!("blob{seed}"), 200, 4, 3, 0.8, seed), &profile);
        bootstrap_dataset(&mut kb, &xor_parity(&format!("xor{seed}"), 250, 2, 10, 0.02, seed), &profile);
        bootstrap_dataset(&mut kb, &sparse_counts(&format!("text{seed}"), 200, 40, 4, 30, seed), &profile);
    }
    kb
}

#[test]
fn warm_kb_matches_or_beats_cold_start_at_small_budget() {
    let kb = two_region_kb();
    // Paired per-seed comparison over a few query datasets. The *median*
    // difference tames seed noise better than the sum: individual seeds
    // are bimodal (e.g. a cold SVM trial on xor either finds the RBF
    // structure or doesn't, a ~0.3 accuracy swing on ulp-level numeric
    // changes), and one such outlier must not decide the claim.
    let mut diffs = Vec::new();
    for seed in [100u64, 101, 102, 103, 104] {
        let task = xor_parity(&format!("task{seed}"), 280, 2, 10, 0.02, seed);
        let warm = SmartML::with_kb(kb.clone(), options(6))
            .run(&task)
            .expect("warm run")
            .report
            .best
            .validation_accuracy;
        let cold = SmartML::new(options(6))
            .run(&task)
            .expect("cold run")
            .report
            .best
            .validation_accuracy;
        diffs.push(warm - cold);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = diffs[diffs.len() / 2];
    assert!(
        median >= -0.08,
        "warm clearly below cold: median diff {median}, diffs {diffs:?}"
    );
}

#[test]
fn kb_routes_families_to_different_algorithms() {
    let kb = two_region_kb();
    let blob_task = gaussian_blobs("q-blob", 220, 4, 3, 0.8, 50);
    let xor_task = xor_parity("q-xor", 260, 2, 11, 0.02, 50);
    let blob_rec = kb.recommend(
        &extract(&blob_task, &blob_task.all_rows()),
        &QueryOptions::default(),
    );
    let xor_rec = kb.recommend(
        &extract(&xor_task, &xor_task.all_rows()),
        &QueryOptions::default(),
    );
    // Moment-based meta-features vary a lot *within* a family (random
    // centers), so exact nearest-1 is noisy; the query's own family must
    // still be well represented in the neighbour set, and the xor query's
    // top hit is unambiguous (different d, k and entropy profile).
    assert!(xor_rec.neighbors[0].0.starts_with("xor"), "{:?}", xor_rec.neighbors);
    let blob_hits = blob_rec
        .neighbors
        .iter()
        .filter(|(id, _)| id.starts_with("blob"))
        .count();
    assert!(blob_hits >= 2, "{:?}", blob_rec.neighbors);
    // And the sparse-text family must NOT appear near the blob query.
    assert!(
        !blob_rec.neighbors.iter().any(|(id, _)| id.starts_with("text")),
        "{:?}",
        blob_rec.neighbors
    );
}

#[test]
fn kb_accumulates_across_runs_and_persists() {
    let dir = std::env::temp_dir().join("smartml-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb-accumulate.json");
    let mut opts = options(6);
    opts.update_kb = true;
    let mut engine = SmartML::new(opts);
    for seed in 0..3u64 {
        let task = gaussian_blobs(&format!("acc{seed}"), 150, 3, 2, 1.0, seed);
        engine.run(&task).expect("run succeeds");
    }
    assert_eq!(engine.kb().len(), 3);
    let runs = engine.kb().n_runs();
    assert!(runs >= 6, "2 algorithms per run x 3 runs, got {runs}");
    let kb = engine.into_kb();
    kb.save(&path).unwrap();
    let reloaded = KnowledgeBase::load(&path).unwrap();
    assert_eq!(reloaded.len(), 3);
    assert_eq!(reloaded.n_runs(), runs);
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_starts_flow_from_kb_into_tuning() {
    let kb = two_region_kb();
    let task = gaussian_blobs("warm-flow", 200, 4, 3, 0.8, 60);
    let outcome = SmartML::with_kb(kb, options(8)).run(&task).expect("runs");
    // At least one nominated algorithm must have received warm starts.
    assert!(
        outcome.report.tuning.iter().any(|t| t.n_warm_starts > 0),
        "{:?}",
        outcome
            .report
            .tuning
            .iter()
            .map(|t| (t.algorithm, t.n_warm_starts))
            .collect::<Vec<_>>()
    );
}

#[test]
fn bootstrap_corpus_covers_benchmark_neighbourhoods() {
    // Every benchmark analogue must find at least one KB-corpus neighbour
    // within a sane distance — the precondition for Table 4's protocol.
    let profile = BootstrapProfile {
        algorithms: vec![Algorithm::Knn],
        configs_per_algorithm: 1,
        ..BootstrapProfile::fast()
    };
    let mut kb = KnowledgeBase::new();
    for (i, (name, spec)) in smartml_data::synth::kb_bootstrap_corpus()
        .iter()
        .enumerate()
        .take(25)
    {
        let data = spec.generate(name, i as u64);
        bootstrap_dataset(&mut kb, &data, &profile);
    }
    for bench in smartml_data::synth::benchmark_suite() {
        let data = bench.generate(2019);
        let meta = extract(&data, &data.all_rows());
        let rec = kb.recommend(&meta, &QueryOptions::default());
        assert!(
            !rec.neighbors.is_empty(),
            "{} found no neighbours",
            bench.paper_name
        );
    }
}

#[test]
fn per_algorithm_budget_sums_to_total() {
    let task = SynthSpec::Blobs { n: 200, d: 4, k: 2, spread: 1.0 }.generate("budget-sum", 9);
    let mut opts = options(20);
    opts.top_n_algorithms = 3;
    let outcome = SmartML::new(opts).run(&task).expect("runs");
    let total: usize = outcome.report.tuning.iter().map(|t| t.trials).sum();
    // Proportional shares round and floor at 3; total stays near budget.
    assert!(
        (14..=30).contains(&total),
        "trials {total} far from the 20-trial budget"
    );
}
