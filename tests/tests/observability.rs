//! Observability must be a pure observer: enabling span tracing cannot
//! change model selection, at any pool width. A traced run additionally
//! has to produce a span stream covering the phase → algorithm → trial
//! hierarchy and a timeline attribution in the report.
//!
//! Note on assertions: the obs flags and span ring are process-global, so
//! a traced run executing concurrently with other tests in this binary
//! may pick up *their* spans too. Assertions on the trace therefore check
//! presence and structure, never exact counts; the strict ±1% phase-sum
//! validation runs in `scripts/verify.sh` against a dedicated single-run
//! CLI invocation.

use smartml::{Budget, RunOutcome, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;
use smartml_preprocess::Op;

fn run(n_threads: usize, trace: bool) -> RunOutcome {
    let data = gaussian_blobs("obs-det", 180, 5, 3, 1.0, 13);
    let mut options = SmartMlOptions::default()
        .with_budget(Budget::Trials(6))
        .with_seed(13)
        .with_n_threads(n_threads)
        .with_trace(trace);
    options.top_n_algorithms = 2;
    options.cv_folds = 2;
    options.preprocessing = vec![Op::Zv];
    let mut engine = SmartML::new(options);
    engine.run(&data).expect("pipeline runs")
}

/// Report JSON with everything wall-clock-dependent removed: phase
/// timings zeroed and the timeline dropped (it only exists when traced).
fn canonical_json(outcome: &RunOutcome) -> String {
    let mut report = outcome.report.clone();
    for phase in &mut report.phases {
        phase.secs = 0.0;
    }
    report.timeline = None;
    serde_json::to_string_pretty(&report).expect("report serialises")
}

#[test]
fn tracing_does_not_change_selection_at_any_width() {
    let baseline = canonical_json(&run(1, false));
    for threads in [1usize, 2, 8] {
        for trace in [false, true] {
            let outcome = run(threads, trace);
            assert_eq!(
                baseline,
                canonical_json(&outcome),
                "selection diverged at n_threads={threads} trace={trace}"
            );
        }
    }
}

#[test]
fn traced_run_yields_span_hierarchy_and_timeline() {
    // Untraced: no trace, no timeline — and nothing half-initialised.
    let plain = run(2, false);
    assert!(plain.trace.is_none(), "untraced run must not carry a trace");
    assert!(plain.report.timeline.is_none(), "untraced report must not carry a timeline");

    let traced = run(2, true);
    let trace = traced.trace.as_ref().expect("traced run returns its span stream");
    let has = |name: &str| trace.spans.iter().any(|s| s.name == name);
    for name in ["run", "phase2.preprocess", "phase3.select", "phase4.tune_all", "phase4.tune", "smac.trial", "smac.fold"] {
        assert!(has(name), "span {name:?} missing from trace");
    }
    // Exports are well-formed JSON even under serde_json's strict parser.
    let chrome: serde_json::Value =
        serde_json::from_str(&trace.to_chrome_trace()).expect("chrome trace parses");
    assert!(chrome.as_array().is_some_and(|a| !a.is_empty()));
    for line in trace.to_jsonl().lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("jsonl line parses");
    }

    let tl = traced.report.timeline.as_ref().expect("traced report carries a timeline");
    assert!(tl.total_secs > 0.0);
    assert!(
        tl.phases.iter().any(|(name, _)| name == "phase4.tune_all"),
        "timeline must attribute the tuning phase: {:?}",
        tl.phases
    );
    assert!(!tl.algorithms.is_empty(), "timeline must attribute per-algorithm time");
    for algo in &tl.algorithms {
        assert!(algo.tune_secs >= 0.0 && algo.trials > 0, "algo {algo:?} saw no trials");
    }
    // The rendered report surfaces the attribution in both formats.
    assert!(traced.report.render().contains("Where the time went"));
    assert!(traced.report.render_markdown().contains("### Where the time went"));
}
