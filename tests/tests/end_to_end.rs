//! End-to-end pipeline tests: the full Figure-1 flow from raw file text to
//! a tuned model, spanning every crate in the workspace.

use smartml::{Budget, Op, SmartML, SmartMlOptions};
use smartml_data::io::{parse_arff, parse_csv};
use smartml_data::synth::{categorical_mixture, gaussian_blobs, SynthSpec};
use smartml_data::{accuracy, Feature};

fn quick_options() -> SmartMlOptions {
    SmartMlOptions {
        budget: Budget::Trials(9),
        top_n_algorithms: 2,
        cv_folds: 2,
        ..Default::default()
    }
}

/// CSV text for a generated dataset (numeric features only).
fn dataset_to_csv(data: &smartml_data::Dataset) -> String {
    let mut out: String = data
        .features()
        .iter()
        .map(|f| f.name().to_string())
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(",label\n");
    for row in 0..data.n_rows() {
        for f in data.features() {
            if let Feature::Numeric { values, .. } = f {
                out.push_str(&format!("{:.6},", values[row]));
            }
        }
        out.push_str(&data.class_names()[data.label(row) as usize]);
        out.push('\n');
    }
    out
}

#[test]
fn csv_text_to_tuned_model() {
    let generated = gaussian_blobs("e2e-csv", 200, 4, 2, 0.8, 1);
    let csv = dataset_to_csv(&generated);
    let data = parse_csv("e2e-csv", &csv, None).expect("round-tripped CSV parses");
    assert_eq!(data.n_rows(), 200);
    let mut engine = SmartML::new(quick_options());
    let outcome = engine.run(&data).expect("pipeline runs");
    assert!(
        outcome.report.best.validation_accuracy > 0.8,
        "separable blobs should score well, got {}",
        outcome.report.best.validation_accuracy
    );
}

#[test]
fn arff_to_tuned_model_with_categoricals() {
    // Build a small ARFF with nominal + numeric attributes.
    let data = categorical_mixture("e2e-arff", 160, 2, 2, 2, 3, 2);
    let mut arff = String::from("@relation e2e\n");
    for f in data.features() {
        match f {
            Feature::Categorical { name, levels, .. } => {
                arff.push_str(&format!("@attribute {name} {{{}}}\n", levels.join(",")));
            }
            Feature::Numeric { name, .. } => {
                arff.push_str(&format!("@attribute {name} numeric\n"));
            }
        }
    }
    arff.push_str("@attribute class {class0,class1}\n@data\n");
    for row in 0..data.n_rows() {
        let mut cells = Vec::new();
        for f in data.features() {
            match f {
                Feature::Categorical { codes, levels, .. } => {
                    cells.push(levels[codes[row] as usize].clone());
                }
                Feature::Numeric { values, .. } => cells.push(format!("{:.4}", values[row])),
            }
        }
        cells.push(data.class_names()[data.label(row) as usize].clone());
        arff.push_str(&cells.join(","));
        arff.push('\n');
    }
    let parsed = parse_arff("e2e-arff", &arff).expect("generated ARFF parses");
    assert_eq!(parsed.categorical_feature_indices().len(), 2);
    let mut engine = SmartML::new(quick_options());
    let outcome = engine.run(&parsed).expect("pipeline handles mixed types");
    assert!(outcome.report.best.validation_accuracy > 0.5);
}

#[test]
fn full_preprocessing_chain_runs() {
    let data = gaussian_blobs("e2e-prep", 220, 6, 3, 1.2, 3);
    let mut options = quick_options();
    options.preprocessing = vec![Op::Zv, Op::YeoJohnson, Op::Center, Op::Scale, Op::Pca];
    let mut engine = SmartML::new(options);
    let outcome = engine.run(&data).expect("long chain runs");
    // PCA replaced the feature columns.
    assert!(outcome.preprocessed.features()[0].name().starts_with("PC"));
    assert!(outcome.report.best.validation_accuracy > 0.6);
}

#[test]
fn every_synth_family_survives_the_pipeline() {
    let specs = [
        SynthSpec::Blobs { n: 150, d: 3, k: 2, spread: 1.0 },
        SynthSpec::XorParity { n: 150, informative: 2, noise: 4, flip: 0.02 },
        SynthSpec::PrototypeNoise { n: 150, d: 16, k: 4, snr: 0.8 },
        SynthSpec::SparseCounts { n: 150, d: 30, k: 3, doc_len: 20 },
        SynthSpec::Kinematics { n: 150, d: 4, noise: 0.2 },
        SynthSpec::ImbalancedMixture { n: 150, d: 4, k: 5, overlap: 1.5 },
        SynthSpec::SensorDrift { n: 150, d: 4, drift: 0.5 },
        SynthSpec::TwoSpirals { n: 150, noise: 0.2 },
        SynthSpec::CategoricalMixture { n: 150, d_cat: 3, d_num: 2, k: 3, cardinality: 3 },
    ];
    for (i, spec) in specs.iter().enumerate() {
        let data = spec.generate(&format!("family-{i}"), 11);
        let mut engine = SmartML::new(quick_options());
        let outcome = engine
            .run(&data)
            .unwrap_or_else(|e| panic!("family {i} failed: {e}"));
        assert!(
            outcome.report.best.validation_accuracy >= 0.0,
            "family {i} produced a model"
        );
    }
}

#[test]
fn outcome_model_predictions_match_report() {
    let data = gaussian_blobs("e2e-pred", 180, 3, 2, 0.7, 5);
    let mut engine = SmartML::new(quick_options());
    let outcome = engine.run(&data).expect("runs");
    let acc = accuracy(
        &outcome.preprocessed.labels_for(&outcome.valid_rows),
        &outcome.model.predict(&outcome.preprocessed, &outcome.valid_rows),
    );
    assert!((acc - outcome.report.best.validation_accuracy).abs() < 1e-12);
    // Train + valid rows partition the dataset.
    let mut all: Vec<usize> = outcome
        .train_rows
        .iter()
        .chain(&outcome.valid_rows)
        .copied()
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..data.n_rows()).collect::<Vec<_>>());
}

#[test]
fn missing_values_flow_through_the_whole_pipeline() {
    use smartml_data::dataset::MISSING_CODE;
    // Start from a clean generated dataset and punch 20% holes in it.
    let base = categorical_mixture("e2e-missing", 200, 2, 3, 2, 3, 9);
    let features: Vec<Feature> = base
        .features()
        .iter()
        .map(|f| match f {
            Feature::Numeric { name, values } => Feature::Numeric {
                name: name.clone(),
                values: values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| if i % 5 == 0 { f64::NAN } else { v })
                    .collect(),
            },
            Feature::Categorical { name, codes, levels } => Feature::Categorical {
                name: name.clone(),
                codes: codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| if i % 5 == 0 { MISSING_CODE } else { c })
                    .collect(),
                levels: levels.clone(),
            },
        })
        .collect();
    let holey = base.with_features(features);
    assert!(holey.missing_cells() > 100);
    let mut options = quick_options();
    options.preprocessing = vec![Op::Zv, Op::Scale];
    options.interpretability = true;
    let mut engine = SmartML::new(options);
    let outcome = engine.run(&holey).expect("missing data handled end to end");
    // The imputation step (always first) removed every hole.
    assert_eq!(outcome.preprocessed.missing_cells(), 0);
    assert!(outcome.report.best.validation_accuracy > 0.4);
}

#[test]
fn time_budget_is_respected() {
    let data = gaussian_blobs("e2e-time", 200, 4, 2, 1.0, 6);
    let mut options = quick_options();
    options.budget = Budget::Time(std::time::Duration::from_millis(900));
    let mut engine = SmartML::new(options);
    let start = std::time::Instant::now();
    let outcome = engine.run(&data).expect("time-budgeted run completes");
    // Generous bound: budget + fit/refit overhead.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "run took {:?}",
        start.elapsed()
    );
    assert!(outcome.report.best.validation_accuracy > 0.0);
}
