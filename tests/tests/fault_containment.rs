//! Full-pipeline fault containment: with the `fault-injection` feature
//! on, `SmartML::run` is bombarded with seed-driven panics and hangs in
//! the trial path and must still return a model within its budget, with
//! the report's failure ledger accounting for every injected fault —
//! and the whole run must stay deterministic for any worker-pool width.
#![cfg(feature = "fault-injection")]

use smartml::{Budget, RunReport, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;
use smartml_data::Dataset;
use smartml_runtime::faults::fail::{self, FaultPlan, SiteRule};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The fail-point plan and its counters are process-global; tests that
/// arm them must not overlap.
static ARMED: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARMED.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn data() -> Dataset {
    gaussian_blobs("fault-e2e", 80, 3, 2, 0.9, 11)
}

fn options(n_threads: usize) -> SmartMlOptions {
    SmartMlOptions {
        budget: Budget::Trials(12),
        top_n_algorithms: 2,
        cv_folds: 2,
        seed: 5,
        n_threads,
        trial_timeout: Some(Duration::from_secs(2)),
        ..Default::default()
    }
}

fn fold_rule(panic_rate: f64, hang_rate: f64) -> SiteRule {
    SiteRule {
        site: "smac::fold".into(),
        panic_rate,
        hang_rate,
        hang_for: Duration::from_secs(60),
    }
}

/// Everything the failure section claims, in a pool-width-independent
/// canonical form (no timings).
fn fingerprint(report: &RunReport) -> String {
    let mut out = format!(
        "best={:?}/{}@{:.6}",
        report.best.algorithm,
        report.best.config.summary(),
        report.best.validation_accuracy
    );
    for section in &report.failures.algorithms {
        out.push_str(&format!(
            ";{:?}:ok={},nf={},p={},to={},f={},tripped={},extra={}",
            section.algorithm,
            section.counts.ok,
            section.counts.non_finite,
            section.counts.panicked,
            section.counts.timed_out,
            section.counts.failed,
            section.tripped,
            section.reallocated_trials,
        ));
    }
    out
}

/// The headline guarantee: at a combined 30% injected failure rate the
/// run completes, hands back a usable model, and the per-algorithm
/// ledger matches the injection counters exactly (serial pool, so each
/// injected fault ends exactly one trial).
#[test]
fn pipeline_survives_30_percent_fault_rate_with_exact_ledger() {
    let _guard = lock();
    let data = data();
    fail::arm(FaultPlan { seed: 41, rules: vec![fold_rule(0.2, 0.1)] });
    let started = Instant::now();
    let outcome = SmartML::new(options(1)).run(&data).expect("run must survive the faults");
    let elapsed = started.elapsed();
    let (panics, hangs) = (fail::injected_panics(), fail::injected_hangs());
    fail::disarm();

    assert!(elapsed < Duration::from_secs(120), "containment must not eat the budget: {elapsed:?}");
    let predictions = outcome.model.predict(&data, &data.all_rows());
    assert_eq!(predictions.len(), data.n_rows(), "the model must be usable");

    let report = &outcome.report;
    assert!(panics + hangs > 0, "the plan must actually fire at these rates");
    assert!(!report.failures.is_clean(), "injected faults must show up in the report");
    let ledger_panics: usize =
        report.failures.algorithms.iter().map(|a| a.counts.panicked).sum();
    let ledger_timeouts: usize =
        report.failures.algorithms.iter().map(|a| a.counts.timed_out).sum();
    assert_eq!(ledger_panics, panics, "every injected panic must be accounted for");
    assert!(
        ledger_timeouts >= hangs,
        "every injected hang must surface as a timed-out trial ({ledger_timeouts} < {hangs})"
    );
    // The rendered report carries the section too.
    assert!(report.render().contains("Failures (contained)"));
}

/// Kill-the-trial smoke: every fold evaluation hangs far beyond the
/// watchdog. Each trial must be cut at the timeout, breakers must trip,
/// and the run must still return a model from the guarded refit path.
#[test]
fn hanging_fits_time_out_and_the_run_still_returns_a_model() {
    let _guard = lock();
    let data = data();
    fail::arm(FaultPlan { seed: 7, rules: vec![fold_rule(0.0, 1.0)] });
    let started = Instant::now();
    let mut opts = options(1);
    opts.trial_timeout = Some(Duration::from_millis(500));
    opts.breaker_threshold = 2;
    let outcome = SmartML::new(opts).run(&data).expect("hangs must never kill the run");
    let elapsed = started.elapsed();
    fail::disarm();

    assert!(
        elapsed < Duration::from_secs(60),
        "watchdogs must cut hanging trials, took {elapsed:?}"
    );
    let report = &outcome.report;
    assert!(
        report.failures.algorithms.iter().all(|a| a.tripped),
        "all-hanging tuning must trip every breaker"
    );
    assert!(
        report.failures.algorithms.iter().all(|a| a.counts.timed_out >= 2),
        "each algorithm must record its timed-out trials"
    );
    let predictions = outcome.model.predict(&data, &data.all_rows());
    assert_eq!(predictions.len(), data.n_rows());
}

/// Tripped-breaker budget reallocation must be deterministic across
/// worker-pool widths: the failure ledger, tripped flags, reallocated
/// trial counts and the winning model are identical for 1, 2 and 8
/// threads under the same fault plan.
#[test]
fn breaker_reallocation_is_deterministic_across_pool_widths() {
    let _guard = lock();
    let data = data();
    let run_width = |n_threads: usize| {
        // Plan seed 1 at a 35% panic rate trips one algorithm's breaker
        // while the other survives and inherits the freed trials — the
        // reallocation path is actually exercised, not vacuously green.
        fail::arm(FaultPlan { seed: 1, rules: vec![fold_rule(0.35, 0.0)] });
        let mut opts = options(n_threads);
        opts.breaker_threshold = 2;
        let outcome = SmartML::new(opts).run(&data).expect("run survives");
        fail::disarm();
        let tripped = outcome.report.failures.algorithms.iter().filter(|a| a.tripped).count();
        let reallocated: usize =
            outcome.report.failures.algorithms.iter().map(|a| a.reallocated_trials).sum();
        assert_eq!(tripped, 1, "exactly one breaker must trip under this plan");
        assert!(reallocated > 0, "the survivor must inherit the freed trials");
        fingerprint(&outcome.report)
    };
    let serial = run_width(1);
    let two = run_width(2);
    let eight = run_width(8);
    assert_eq!(serial, two, "2-thread report diverged from serial");
    assert_eq!(serial, eight, "8-thread report diverged from serial");
}
