//! Integration tests for the JSON API surface and the baseline systems'
//! comparability with SmartML.

use smartml::api::{handle_json, DatasetPayload, ExperimentOptions, Request};
use smartml::KnowledgeBase;
use smartml_baselines::{AutoWekaSim, JointOptimizer, RandomSearchAutoML, TpotLite};
use smartml_data::synth::gaussian_blobs;
use smartml_data::{train_valid_split, Feature};

fn blob_csv(n: usize, seed: u64) -> String {
    let data = gaussian_blobs("api", n, 3, 2, 0.8, seed);
    let mut out = String::from("f0,f1,f2,label\n");
    for row in 0..data.n_rows() {
        for f in data.features() {
            if let Feature::Numeric { values, .. } = f {
                out.push_str(&format!("{:.5},", values[row]));
            }
        }
        out.push_str(&data.class_names()[data.label(row) as usize]);
        out.push('\n');
    }
    out
}

#[test]
fn json_api_full_experiment_roundtrip() {
    let mut kb = KnowledgeBase::new();
    let request = Request::RunExperiment {
        name: "api-test".into(),
        dataset: DatasetPayload::Csv { content: blob_csv(150, 1), target: Some("label".into()) },
        options: ExperimentOptions {
            budget_trials: Some(8),
            top_n_algorithms: Some(2),
            ensembling: true,
            interpretability: true,
            seed: Some(3),
            ..Default::default()
        },
    };
    let json = serde_json::to_string(&request).unwrap();
    let out = handle_json(&mut kb, &json);
    let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(parsed["status"], "experiment", "{out}");
    let report = &parsed["report"];
    assert!(report["best"]["validation_accuracy"].as_f64().unwrap() > 0.6);
    assert!(report["ensemble"].is_object());
    assert!(report["importance"].is_array());
    // The run updated the server-side KB.
    assert_eq!(kb.len(), 1);
}

#[test]
fn json_api_meta_feature_and_selection_chain() {
    let mut kb = KnowledgeBase::new();
    // First, populate the KB with one experiment.
    let run_req = serde_json::json!({
        "action": "run_experiment",
        "name": "seed-task",
        "dataset": {"csv": {"content": blob_csv(150, 2), "target": "label"}},
        "options": {"budget_trials": 6, "top_n_algorithms": 2, "seed": 4},
    });
    let out = handle_json(&mut kb, &run_req.to_string());
    assert!(out.contains("\"status\": \"experiment\""), "{out}");

    // Extract meta-features of a new dataset…
    let mf_req = serde_json::json!({
        "action": "extract_meta_features",
        "name": "new-task",
        "dataset": {"csv": {"content": blob_csv(150, 3), "target": "label"}},
    });
    let out = handle_json(&mut kb, &mf_req.to_string());
    let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
    let values: Vec<f64> = parsed["features"]
        .as_array()
        .unwrap()
        .iter()
        .map(|pair| pair[1].as_f64().unwrap())
        .collect();
    assert_eq!(values.len(), 25);

    // …and ask for algorithm selection from the meta-features alone (the
    // paper's meta-features-only upload path).
    let sel_req = serde_json::json!({
        "action": "select_algorithms",
        "meta_features": values,
        "top_n": 2,
    });
    let out = handle_json(&mut kb, &sel_req.to_string());
    let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(parsed["status"], "algorithms");
    assert_eq!(parsed["nominated"].as_array().unwrap().len(), 2);
}

#[test]
fn all_baselines_run_on_equal_footing() {
    let data = gaussian_blobs("baselines", 160, 3, 2, 0.8, 5);
    let (train, valid) = train_valid_split(&data, 0.3, 7);
    let budget = 8;

    let aw = AutoWekaSim { cv_folds: 2, seed: 1, ..Default::default() }
        .run(&data, &train, &valid, budget, None);
    let aw_tpe = AutoWekaSim { optimizer: JointOptimizer::Tpe, cv_folds: 2, seed: 1, ..Default::default() }
        .run(&data, &train, &valid, budget, None);
    let rs = RandomSearchAutoML { cv_folds: 2, seed: 1 }.run(&data, &train, &valid, budget, None);
    let (_, tpot_acc, tpot_evals) =
        TpotLite { population: 4, seed: 1, ..Default::default() }
            .run(&data, &train, &valid, budget, None);

    for (name, acc) in [
        ("autoweka-smac", aw.validation_accuracy),
        ("autoweka-tpe", aw_tpe.validation_accuracy),
        ("random", rs.validation_accuracy),
        ("tpot", tpot_acc),
    ] {
        assert!(
            acc > 0.4,
            "{name} collapsed on separable blobs: {acc}"
        );
    }
    assert!(aw.history.len() <= budget);
    assert!(tpot_evals <= budget);
}

#[test]
fn autoweka_history_is_an_anytime_curve() {
    let data = gaussian_blobs("anytime", 140, 3, 2, 1.0, 6);
    let (train, valid) = train_valid_split(&data, 0.3, 7);
    let aw = AutoWekaSim { cv_folds: 2, seed: 2, ..Default::default() }
        .run(&data, &train, &valid, 10, None);
    // Timestamps are monotone.
    for w in aw.history.windows(2) {
        assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
    }
    // Every trial carries a config that parses back to some algorithm.
    assert!(aw.history.iter().all(|t| !t.config.values.is_empty()));
}
