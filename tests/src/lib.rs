//! Integration-test crate for the SmartML workspace. All tests live under
//! `tests/tests/` and exercise cross-crate behaviour: the full pipeline,
//! the meta-learning loop, the API surface, and SmartML-vs-baseline
//! comparisons.
