//! Deterministic parallel execution for SmartML's hot loops.
//!
//! Design rules that keep output bit-identical for any thread count:
//!
//! 1. **Order-preserving reduction** — [`Pool::map_indexed`] returns
//!    results in submission order, whatever order workers finish in.
//! 2. **Index-derived seeds** — randomised tasks derive their RNG seed
//!    with [`task_seed`]`(seed, index)`, never from a shared RNG whose
//!    consumption order would depend on scheduling.
//! 3. **No cross-task mutation** — tasks communicate only through their
//!    return values; any merging happens serially afterwards.
//!
//! The pool is scoped: workers are spawned per call via
//! [`std::thread::scope`], so closures may borrow from the caller and no
//! `'static` erasure or shutdown protocol is needed. At SmartML's task
//! granularity (a classifier fit, a tree growth) spawn cost is noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use smartml_obs::{Counter, Gauge};

pub mod faults;

static POOL_TASKS: Counter = Counter::new("runtime.pool.tasks");
static POOL_STEALS: Counter = Counter::new("runtime.pool.steals");
static POOL_BATCHES: Counter = Counter::new("runtime.pool.batches");
static POOL_QUEUE_DEPTH: Gauge = Gauge::new("runtime.pool.queue_depth");

/// Number of worker threads to use when the caller asked for "auto" (0).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fixed-width scoped worker pool.
///
/// `Pool` is `Copy` configuration, not a handle to live threads: each
/// [`map_indexed`](Pool::map_indexed) call spawns its own scoped workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    n_threads: usize,
}

impl Pool {
    /// A pool with an explicit width; `0` means "available parallelism".
    pub fn new(n_threads: usize) -> Pool {
        let n = if n_threads == 0 { available_parallelism() } else { n_threads };
        Pool { n_threads: n }
    }

    /// A single-threaded pool (runs everything inline).
    pub fn serial() -> Pool {
        Pool { n_threads: 1 }
    }

    /// A pool as wide as the hardware.
    pub fn auto() -> Pool {
        Pool::new(0)
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Applies `f(index, item)` to every item and returns the results in
    /// submission order. Work is distributed by an atomic cursor, so
    /// threads steal the next pending index as they free up; result
    /// placement is by index, which makes the output independent of the
    /// scheduling order and of `n_threads`.
    ///
    /// A worker panic propagates to the caller once all threads finish.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.n_threads.min(n);
        POOL_BATCHES.inc();
        POOL_TASKS.add(n as u64);
        if workers <= 1 {
            return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (cursor, slots, results, f) = (&cursor, &slots, &results, &f);
            for w in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A task is a "steal" when a worker claims an index
                    // outside its round-robin stripe — i.e. the claiming
                    // order diverged from an even static partition, which
                    // is exactly the load imbalance the cursor absorbs.
                    if i % workers != w {
                        POOL_STEALS.inc();
                    }
                    POOL_QUEUE_DEPTH.set(n.saturating_sub(i + 1) as i64);
                    let item = slots[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each slot is claimed exactly once");
                    let out = f(i, item);
                    *results[i].lock().unwrap() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }

    /// `map_indexed` over `0..n` without materialising an item vector.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed((0..n).collect(), |_, i| f(i))
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::auto()
    }
}

/// Derives the RNG seed for task `index` of a run seeded with `seed`.
///
/// SplitMix64-style finaliser: adjacent indices map to statistically
/// independent seeds, and the mapping is pure, so a task's random stream
/// is a function of (seed, index) alone — never of which thread ran it.
pub fn task_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shareable wall-clock cutoff. `Copy`, so concurrent tasks each carry
/// the same absolute deadline instead of dividing a remaining budget
/// (which would depend on completion order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No time limit.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline(Some(Instant::now() + budget))
    }

    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// The absolute cutoff instant, if a limit is set. Lets callers
    /// combine a shared run deadline with per-trial timeouts (the
    /// earlier of the two wins).
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    pub fn expired(&self) -> bool {
        matches!(self.0, Some(t) if Instant::now() >= t)
    }

    /// Time left, if a limit is set (zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The remaining budget shaped for `set_read_timeout`-style socket
    /// APIs, which reject a zero `Duration`: `None` when no limit is set,
    /// otherwise the remaining time floored at 1 ms — an already-expired
    /// deadline still yields the floor so the next I/O call fails fast
    /// instead of blocking forever (or panicking on zero).
    pub fn io_timeout(&self) -> Option<Duration> {
        self.0.map(|t| {
            t.saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_submission_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_indexed(items, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            Pool::new(threads).map_range(64, |i| {
                // Emulate a randomised task: output depends only on the
                // derived seed, not on scheduling.
                task_seed(42, i as u64).wrapping_mul(i as u64 + 1)
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map_indexed(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.map_indexed(vec![7u8], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(Pool::new(0).n_threads(), available_parallelism());
        assert!(Pool::auto().n_threads() >= 1);
    }

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collision in task seeds");
        assert_eq!(task_seed(7, 0), task_seed(7, 0));
        assert_ne!(task_seed(7, 0), task_seed(8, 0));
    }

    #[test]
    fn deadline_expiry() {
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
        let d = Deadline::after(Duration::from_millis(5));
        assert!(d.is_some());
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn io_timeout_never_yields_zero() {
        assert_eq!(Deadline::none().io_timeout(), None);
        let d = Deadline::after(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(5));
        // Expired, but sockets still get a small positive timeout.
        let t = d.io_timeout().unwrap();
        assert!(t >= Duration::from_millis(1) && t <= Duration::from_millis(2));
        let far = Deadline::after(Duration::from_secs(60));
        assert!(far.io_timeout().unwrap() > Duration::from_secs(59));
    }

    #[test]
    fn borrows_from_scope_work() {
        let data = vec![1.0f64; 32];
        let pool = Pool::new(4);
        let sums = pool.map_range(8, |i| data[i * 4..(i + 1) * 4].iter().sum::<f64>());
        assert_eq!(sums, vec![4.0; 8]);
    }
}
