//! Deterministic parallel execution for SmartML's hot loops.
//!
//! Design rules that keep output bit-identical for any thread count:
//!
//! 1. **Order-preserving reduction** — [`Pool::map_indexed`] returns
//!    results in submission order, whatever order workers finish in.
//! 2. **Index-derived seeds** — randomised tasks derive their RNG seed
//!    with [`task_seed`]`(seed, index)`, never from a shared RNG whose
//!    consumption order would depend on scheduling.
//! 3. **No cross-task mutation** — tasks communicate only through their
//!    return values; any merging happens serially afterwards.
//!
//! The pool is scoped: workers are spawned per call via
//! [`std::thread::scope`], so closures may borrow from the caller and no
//! `'static` erasure or shutdown protocol is needed. At SmartML's task
//! granularity (a classifier fit, a tree growth) spawn cost is noise.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use smartml_obs::{Counter, Gauge};

pub mod faults;

static POOL_TASKS: Counter = Counter::new("runtime.pool.tasks");
static POOL_STEALS: Counter = Counter::new("runtime.pool.steals");
static POOL_BATCHES: Counter = Counter::new("runtime.pool.batches");
static POOL_STREAMS: Counter = Counter::new("runtime.pool.streams");
static POOL_QUEUE_DEPTH: Gauge = Gauge::new("runtime.pool.queue_depth");

/// Number of worker threads to use when the caller asked for "auto" (0).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fixed-width scoped worker pool.
///
/// `Pool` is `Copy` configuration, not a handle to live threads: each
/// [`map_indexed`](Pool::map_indexed) call spawns its own scoped workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    n_threads: usize,
}

impl Pool {
    /// A pool with an explicit width; `0` means "available parallelism".
    pub fn new(n_threads: usize) -> Pool {
        let n = if n_threads == 0 { available_parallelism() } else { n_threads };
        Pool { n_threads: n }
    }

    /// A single-threaded pool (runs everything inline).
    pub fn serial() -> Pool {
        Pool { n_threads: 1 }
    }

    /// A pool as wide as the hardware.
    pub fn auto() -> Pool {
        Pool::new(0)
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Applies `f(index, item)` to every item and returns the results in
    /// submission order. Work is distributed by an atomic cursor, so
    /// threads steal the next pending index as they free up; result
    /// placement is by index, which makes the output independent of the
    /// scheduling order and of `n_threads`.
    ///
    /// **Fairness under heterogeneous costs**: dispatch is dynamic, not a
    /// static index partition. A long task submitted first pins exactly one
    /// worker; the remaining workers drain the tail concurrently, so the
    /// batch makespan approaches `max(longest task, total/width)` instead
    /// of serialising behind the head (pinned by
    /// `long_head_does_not_serialize_the_tail`). The call itself is still
    /// a barrier — it returns only when *every* item has finished; use
    /// [`stream`](Pool::stream) when the caller needs completions as they
    /// land.
    ///
    /// A worker panic propagates to the caller once all threads finish.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.n_threads.min(n);
        POOL_BATCHES.inc();
        POOL_TASKS.add(n as u64);
        if workers <= 1 {
            return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (cursor, slots, results, f) = (&cursor, &slots, &results, &f);
            for w in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A task is a "steal" when a worker claims an index
                    // outside its round-robin stripe — i.e. the claiming
                    // order diverged from an even static partition, which
                    // is exactly the load imbalance the cursor absorbs.
                    if i % workers != w {
                        POOL_STEALS.inc();
                    }
                    POOL_QUEUE_DEPTH.set(n.saturating_sub(i + 1) as i64);
                    let item = slots[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each slot is claimed exactly once");
                    let out = f(i, item);
                    *results[i].lock().unwrap() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }

    /// `map_indexed` over `0..n` without materialising an item vector.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed((0..n).collect(), |_, i| f(i))
    }

    /// Streaming-completion execution: the inverse of the `map_indexed`
    /// barrier. `drive` runs on the calling thread with a [`StreamCtrl`]
    /// handle — it submits tasks with [`StreamCtrl::submit`] (each gets a
    /// monotonically increasing index) and consumes `(index, result)`
    /// pairs with [`StreamCtrl::next`] **as they finish**, in completion
    /// order, not submission order. New tasks may be submitted at any
    /// point, so a scheduler can react to each result while the rest of
    /// the pool keeps working — no rung/batch barrier ever drains the
    /// pool.
    ///
    /// Width ≤ 1 runs tasks inline on the calling thread in strict FIFO
    /// order (submission order == completion order). At any width, a task
    /// result is produced by `worker(index, task)` alone; callers that
    /// need scheduling-independent *decisions* must reorder completions
    /// themselves (see `smartml-smac`'s ASHA rung ledger for the
    /// discipline).
    ///
    /// A panicking task resumes its unwind inside the driver's `next()`
    /// call (inline mode: at the `next()` that runs it). Tasks still
    /// queued when `drive` returns are dropped unexecuted; in-flight tasks
    /// are joined before `stream` returns.
    pub fn stream<T, R, F, D, O>(&self, worker: F, drive: D) -> O
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        D: FnOnce(&mut StreamCtrl<'_, T, R>) -> O,
    {
        POOL_STREAMS.inc();
        if self.n_threads <= 1 {
            let mut ctrl = StreamCtrl {
                next_index: 0,
                outstanding: 0,
                mode: StreamMode::Inline { queue: TwoTierQueue::new(), worker: &worker },
            };
            return drive(&mut ctrl);
        }
        let queue: Mutex<TwoTierQueue<T>> = Mutex::new(TwoTierQueue::new());
        let available = Condvar::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        std::thread::scope(|scope| {
            let (queue, available, done, worker) = (&queue, &available, &done, &worker);
            for _ in 0..self.n_threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let task = {
                        let mut q = queue.lock().unwrap();
                        loop {
                            if let Some(t) = q.pop() {
                                break Some(t);
                            }
                            if done.load(Ordering::Acquire) {
                                break None;
                            }
                            q = available.wait(q).unwrap();
                        }
                    };
                    let Some((index, task)) = task else { break };
                    POOL_TASKS.inc();
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || worker(index, task),
                    ));
                    // The driver may have returned already (abandoning
                    // in-flight work); a closed channel is not an error.
                    let _ = tx.send((index, result));
                });
            }
            drop(tx);
            // Shutdown must happen even when `drive` (or a resumed task
            // panic inside it) unwinds — otherwise the scope would join
            // workers parked on the condvar forever.
            struct Shutdown<'a> {
                done: &'a std::sync::atomic::AtomicBool,
                available: &'a Condvar,
            }
            impl Drop for Shutdown<'_> {
                fn drop(&mut self) {
                    self.done.store(true, Ordering::Release);
                    self.available.notify_all();
                }
            }
            let _shutdown = Shutdown { done, available };
            let mut ctrl = StreamCtrl {
                next_index: 0,
                outstanding: 0,
                mode: StreamMode::Pooled { queue, available, rx },
            };
            drive(&mut ctrl)
        })
    }
}

/// Driver-side handle for [`Pool::stream`]: submit tasks, consume
/// completions.
pub struct StreamCtrl<'env, T, R> {
    next_index: usize,
    outstanding: usize,
    mode: StreamMode<'env, T, R>,
}

/// The stream's pending-task queue: two FIFO tiers, urgent before
/// normal. Workers drain every urgent task before touching a normal
/// one, so a driver can keep critical-path work (e.g. an ASHA rung
/// promotion) from queueing behind a backlog of speculative backfill.
/// The tier is an execution-order hint only — completion indices and
/// results are unaffected.
struct TwoTierQueue<T> {
    urgent: VecDeque<(usize, T)>,
    normal: VecDeque<(usize, T)>,
}

impl<T> TwoTierQueue<T> {
    fn new() -> Self {
        TwoTierQueue { urgent: VecDeque::new(), normal: VecDeque::new() }
    }

    fn push(&mut self, index: usize, task: T, urgent: bool) {
        if urgent {
            self.urgent.push_back((index, task));
        } else {
            self.normal.push_back((index, task));
        }
    }

    fn pop(&mut self) -> Option<(usize, T)> {
        self.urgent.pop_front().or_else(|| self.normal.pop_front())
    }

    fn len(&self) -> usize {
        self.urgent.len() + self.normal.len()
    }
}

enum StreamMode<'env, T, R> {
    /// Width ≤ 1: tasks run inline inside `next()`, urgent tier first,
    /// FIFO within each tier.
    Inline {
        queue: TwoTierQueue<T>,
        worker: &'env (dyn Fn(usize, T) -> R + 'env),
    },
    /// Multi-worker: tasks go to the shared queue, completions come back
    /// over the channel in finish order.
    Pooled {
        queue: &'env Mutex<TwoTierQueue<T>>,
        available: &'env Condvar,
        rx: mpsc::Receiver<(usize, std::thread::Result<R>)>,
    },
}

impl<T, R> StreamCtrl<'_, T, R> {
    /// Enqueues a task and returns its index (submission order, starting
    /// at 0).
    pub fn submit(&mut self, task: T) -> usize {
        self.enqueue(task, false)
    }

    /// Enqueues a task on the urgent tier: workers run every urgent task
    /// before any [`submit`](StreamCtrl::submit)-queued one (FIFO within
    /// each tier). Purely an execution-order hint — indices, results and
    /// completion delivery are identical to `submit`. Use for
    /// critical-path work that must not wait behind speculative backlog.
    pub fn submit_urgent(&mut self, task: T) -> usize {
        self.enqueue(task, true)
    }

    fn enqueue(&mut self, task: T, urgent: bool) -> usize {
        let index = self.next_index;
        self.next_index += 1;
        self.outstanding += 1;
        match &mut self.mode {
            StreamMode::Inline { queue, .. } => queue.push(index, task, urgent),
            StreamMode::Pooled { queue, available, .. } => {
                let mut q = queue.lock().unwrap();
                q.push(index, task, urgent);
                POOL_QUEUE_DEPTH.set(q.len() as i64);
                drop(q);
                available.notify_one();
            }
        }
        index
    }

    /// Tasks submitted but not yet returned by [`next`](StreamCtrl::next).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Blocks until the next completion lands and returns it as
    /// `(index, result)`; `None` once every submitted task has been
    /// consumed. Resumes the unwind of a panicked task.
    pub fn next(&mut self) -> Option<(usize, R)> {
        if self.outstanding == 0 {
            return None;
        }
        self.outstanding -= 1;
        match &mut self.mode {
            StreamMode::Inline { queue, worker } => {
                let (index, task) = queue.pop().expect("outstanding implies queued");
                POOL_TASKS.inc();
                Some((index, worker(index, task)))
            }
            StreamMode::Pooled { rx, .. } => {
                let (index, result) = rx
                    .recv()
                    .expect("workers outlive the driver, so a completion always arrives");
                match result {
                    Ok(r) => Some((index, r)),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        }
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::auto()
    }
}

/// Derives the RNG seed for task `index` of a run seeded with `seed`.
///
/// SplitMix64-style finaliser: adjacent indices map to statistically
/// independent seeds, and the mapping is pure, so a task's random stream
/// is a function of (seed, index) alone — never of which thread ran it.
pub fn task_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shareable wall-clock cutoff. `Copy`, so concurrent tasks each carry
/// the same absolute deadline instead of dividing a remaining budget
/// (which would depend on completion order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No time limit.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline(Some(Instant::now() + budget))
    }

    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// The absolute cutoff instant, if a limit is set. Lets callers
    /// combine a shared run deadline with per-trial timeouts (the
    /// earlier of the two wins).
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    pub fn expired(&self) -> bool {
        matches!(self.0, Some(t) if Instant::now() >= t)
    }

    /// Time left, if a limit is set (zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The remaining budget shaped for `set_read_timeout`-style socket
    /// APIs, which reject a zero `Duration`: `None` when no limit is set,
    /// otherwise the remaining time floored at 1 ms — an already-expired
    /// deadline still yields the floor so the next I/O call fails fast
    /// instead of blocking forever (or panicking on zero).
    pub fn io_timeout(&self) -> Option<Duration> {
        self.0.map(|t| {
            t.saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_submission_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_indexed(items, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            Pool::new(threads).map_range(64, |i| {
                // Emulate a randomised task: output depends only on the
                // derived seed, not on scheduling.
                task_seed(42, i as u64).wrapping_mul(i as u64 + 1)
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map_indexed(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.map_indexed(vec![7u8], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(Pool::new(0).n_threads(), available_parallelism());
        assert!(Pool::auto().n_threads() >= 1);
    }

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collision in task seeds");
        assert_eq!(task_seed(7, 0), task_seed(7, 0));
        assert_ne!(task_seed(7, 0), task_seed(8, 0));
    }

    #[test]
    fn deadline_expiry() {
        assert!(!Deadline::none().expired());
        assert!(Deadline::none().remaining().is_none());
        let d = Deadline::after(Duration::from_millis(5));
        assert!(d.is_some());
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn io_timeout_never_yields_zero() {
        assert_eq!(Deadline::none().io_timeout(), None);
        let d = Deadline::after(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(5));
        // Expired, but sockets still get a small positive timeout.
        let t = d.io_timeout().unwrap();
        assert!(t >= Duration::from_millis(1) && t <= Duration::from_millis(2));
        let far = Deadline::after(Duration::from_secs(60));
        assert!(far.io_timeout().unwrap() > Duration::from_secs(59));
    }

    #[test]
    fn borrows_from_scope_work() {
        let data = vec![1.0f64; 32];
        let pool = Pool::new(4);
        let sums = pool.map_range(8, |i| data[i * 4..(i + 1) * 4].iter().sum::<f64>());
        assert_eq!(sums, vec![4.0; 8]);
    }

    #[test]
    fn long_head_does_not_serialize_the_tail() {
        // Satellite regression pin: one 80 ms task submitted first plus
        // eight 10 ms tasks at width 4. With dynamic dispatch the head
        // pins one worker while three drain the tail (~80 ms makespan);
        // a static index partition that chains tasks behind the head
        // would take ~160 ms. Threshold splits the difference with slack
        // for a loaded CI host.
        let pool = Pool::new(4);
        let costs_ms: Vec<u64> = std::iter::once(80).chain(std::iter::repeat_n(10, 8)).collect();
        let start = Instant::now();
        let out = pool.map_indexed(costs_ms, |i, ms| {
            std::thread::sleep(Duration::from_millis(ms));
            i
        });
        let elapsed = start.elapsed();
        assert_eq!(out, (0..9).collect::<Vec<_>>());
        assert!(
            elapsed < Duration::from_millis(140),
            "heterogeneous batch serialized behind its head: {elapsed:?}"
        );
    }

    #[test]
    fn stream_completes_every_index_exactly_once() {
        for width in [1, 2, 8] {
            let pool = Pool::new(width);
            let mut seen = vec![0usize; 50];
            let total = pool.stream(
                |i, x: u64| (i as u64) * 1000 + x,
                |ctrl| {
                    for x in 0..50u64 {
                        ctrl.submit(x);
                    }
                    let mut total = 0u64;
                    while let Some((i, r)) = ctrl.next() {
                        seen[i] += 1;
                        assert_eq!(r, (i as u64) * 1000 + i as u64);
                        total += r;
                    }
                    total
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "width {width}: {seen:?}");
            assert_eq!(total, (0..50u64).map(|i| i * 1001).sum::<u64>());
        }
    }

    #[test]
    fn stream_inline_is_fifo() {
        let pool = Pool::serial();
        let order = pool.stream(
            |i, _: ()| i,
            |ctrl| {
                for _ in 0..10 {
                    ctrl.submit(());
                }
                let mut order = Vec::new();
                while let Some((i, r)) = ctrl.next() {
                    assert_eq!(i, r);
                    order.push(i);
                }
                order
            },
        );
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stream_driver_can_submit_in_response_to_completions() {
        // The scheduler shape ASHA needs: each completion may trigger a
        // follow-up task while other work is still in flight.
        for width in [1, 3] {
            let pool = Pool::new(width);
            let done = pool.stream(
                |_, gen: u32| gen,
                |ctrl| {
                    for _ in 0..4 {
                        ctrl.submit(0);
                    }
                    let mut done = 0;
                    while let Some((_, gen)) = ctrl.next() {
                        if gen < 3 {
                            ctrl.submit(gen + 1);
                        } else {
                            done += 1;
                        }
                    }
                    done
                },
            );
            assert_eq!(done, 4, "width {width}");
        }
    }

    #[test]
    fn stream_propagates_worker_panics() {
        for width in [1, 4] {
            let pool = Pool::new(width);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.stream(
                    |_, x: u32| {
                        if x == 7 {
                            panic!("boom {x}");
                        }
                        x
                    },
                    |ctrl| {
                        for x in 0..16u32 {
                            ctrl.submit(x);
                        }
                        while ctrl.next().is_some() {}
                    },
                )
            }));
            let payload = caught.expect_err("panic must reach the driver");
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("boom 7"), "width {width}: {msg}");
        }
    }

    #[test]
    fn stream_outstanding_tracks_submissions() {
        let pool = Pool::new(2);
        pool.stream(
            |_, _: ()| (),
            |ctrl| {
                assert_eq!(ctrl.outstanding(), 0);
                assert!(ctrl.next().is_none(), "empty stream yields None");
                ctrl.submit(());
                ctrl.submit(());
                assert_eq!(ctrl.outstanding(), 2);
                ctrl.next().unwrap();
                assert_eq!(ctrl.outstanding(), 1);
                ctrl.next().unwrap();
                assert_eq!(ctrl.outstanding(), 0);
                assert!(ctrl.next().is_none());
            },
        );
    }

    #[test]
    fn stream_urgent_runs_before_queued_backlog_inline() {
        // Inline mode executes the urgent tier first, FIFO within tiers.
        let pool = Pool::serial();
        let order = pool.stream(
            |i, _: ()| i,
            |ctrl| {
                ctrl.submit(()); // 0
                ctrl.submit(()); // 1
                ctrl.submit_urgent(()); // 2
                ctrl.submit_urgent(()); // 3
                let mut order = Vec::new();
                while let Some((i, _)) = ctrl.next() {
                    order.push(i);
                }
                order
            },
        );
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn stream_urgent_preempts_queued_backlog_pooled() {
        // With every worker pinned by a gate task, a freed worker must
        // take the urgent task before any earlier-queued normal one.
        use std::sync::atomic::AtomicBool;
        let started = AtomicUsize::new(0);
        let release = AtomicBool::new(false);
        let pool = Pool::new(2);
        let order = pool.stream(
            |i, gated: bool| {
                if gated {
                    started.fetch_add(1, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                i
            },
            |ctrl| {
                ctrl.submit(true); // 0: pins worker A
                ctrl.submit(true); // 1: pins worker B
                while started.load(Ordering::SeqCst) < 2 {
                    std::thread::yield_now();
                }
                ctrl.submit(false); // 2: normal backlog
                ctrl.submit_urgent(false); // 3: must run before 2
                release.store(true, Ordering::SeqCst);
                let mut order = Vec::new();
                while let Some((i, _)) = ctrl.next() {
                    order.push(i);
                }
                order
            },
        );
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(3) < pos(2), "urgent task ran after queued backlog: {order:?}");
    }

    #[test]
    fn stream_abandons_queued_tasks_when_driver_returns_early() {
        // Drivers may stop consuming (budget exhausted); the pool must
        // still shut down promptly without executing the whole queue.
        let pool = Pool::new(2);
        let first = pool.stream(
            |i, _: ()| i,
            |ctrl| {
                for _ in 0..64 {
                    ctrl.submit(());
                }
                ctrl.next().map(|(i, _)| i)
            },
        );
        assert!(first.is_some());
    }
}
