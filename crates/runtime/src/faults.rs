//! Fault containment for trial execution.
//!
//! SmartML's Phase-4 loop evaluates hundreds of classifier fits under a
//! shared time budget; the original R package survives misbehaving CRAN
//! fits with `try()`. This module is the Rust analogue, built from three
//! pieces:
//!
//! 1. [`TrialToken`] — a shareable per-trial cancellation + deadline
//!    token. Long-running fits poll it (directly, or through the
//!    scoped thread-local read by [`trial_should_stop`]) and abandon
//!    work once the trial is cancelled or overruns its deadline.
//! 2. A **watchdog thread** — a single lazy background thread that
//!    marks overrunning registered tokens as timed out, so even a fit
//!    that only polls the cheap atomic flag notices the overrun.
//! 3. [`run_trial`] — the guard: runs a closure under
//!    [`std::panic::catch_unwind`] with the token installed in the
//!    thread-local scope, and classifies the result as completed,
//!    panicked (with the originating site), or timed out.
//!
//! The companion [`fail`] module is a deterministic, seed-driven
//! fail-point registry. It compiles to a no-op unless the
//! `fault-injection` cargo feature is enabled, and is the standing
//! harness for robustness tests: `fail::trigger("site", seed)` calls are
//! sprinkled through the hot trial path and only come alive when a test
//! arms a [`fail::FaultPlan`].
//!
//! Everything here is deterministic-by-construction: with no deadline
//! and the feature off, a guarded trial behaves bit-identically to an
//! unguarded call.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::Deadline;
use smartml_obs::{Counter, Histogram};

static WATCHDOG_FIRES: Counter = Counter::new("runtime.watchdog.fires");
static QUEUE_WAIT_US: Histogram = Histogram::new("runtime.trial.queue_wait_us");
static EXEC_US: Histogram = Histogram::new("runtime.trial.exec_us");

// ---------------------------------------------------------------------------
// TrialToken
// ---------------------------------------------------------------------------

/// Sentinel for "execution has not started yet" in `exec_started_ns`.
const EXEC_UNSTARTED: u64 = u64::MAX;

#[derive(Debug)]
struct TokenInner {
    /// Absolute hard cutoff (the run's shared budget deadline); armed from
    /// creation. `None` = no hard cutoff.
    hard_deadline: Option<Instant>,
    /// Per-trial execution timeout. When `defer_timeout` is set this is
    /// measured from the moment the guard actually starts executing (not
    /// from token creation), so queue wait under a narrow pool does not
    /// count against the trial.
    timeout: Option<Duration>,
    /// Nanoseconds after `created` at which execution began;
    /// [`EXEC_UNSTARTED`] until the first guard marks it.
    exec_started_ns: AtomicU64,
    /// Explicit caller-side cancellation.
    cancelled: AtomicBool,
    /// Latched once the deadline passes (set by the watchdog or by the
    /// first `should_stop` poll past the deadline).
    timed_out: AtomicBool,
    /// When the token was created (dispatch time).
    created: Instant,
}

impl TokenInner {
    /// The currently effective absolute cutoff: the earlier of the hard
    /// deadline and the (armed) execution timeout. `None` while unbounded
    /// or while a deferred timeout is still waiting for execution to start.
    fn effective_deadline(&self) -> Option<Instant> {
        let soft = self.timeout.and_then(|t| {
            let ns = self.exec_started_ns.load(Ordering::Acquire);
            if ns == EXEC_UNSTARTED {
                None
            } else {
                Some(self.created + Duration::from_nanos(ns) + t)
            }
        });
        match (soft, self.hard_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn past_deadline(&self, now: Instant) -> bool {
        self.effective_deadline().is_some_and(|d| now >= d)
    }
}

/// A shareable cancellation + deadline token for one trial.
///
/// Cloning shares the same underlying state; a fit running on a worker
/// thread and the optimiser that launched it observe identical flags.
#[derive(Debug, Clone)]
pub struct TrialToken {
    inner: Arc<TokenInner>,
}

impl TrialToken {
    /// A token with no deadline: `should_stop` is false until `cancel`.
    pub fn unbounded() -> TrialToken {
        TrialToken::build(None, None, false)
    }

    /// A token that expires `timeout` from now. The timeout is armed
    /// immediately (creation *is* the start), for callers that build the
    /// token on the executing thread.
    pub fn with_timeout(timeout: Duration) -> TrialToken {
        TrialToken::build(Some(timeout), None, false)
    }

    /// A token bounded by a per-trial execution `timeout` (if any) and an
    /// absolute [`Deadline`] (if set). Used by optimisers whose trials
    /// carry both a per-trial watchdog timeout and a shared run cutoff.
    ///
    /// The per-trial timeout is **deferred**: it starts counting when the
    /// first [`run_trial`] guard begins executing under this token, not at
    /// creation. A trial dispatched to a busy pool therefore gets its full
    /// timeout of execution time regardless of how long it sat queued; the
    /// hard deadline is absolute and unaffected.
    pub fn bounded(timeout: Option<Duration>, deadline: Deadline) -> TrialToken {
        TrialToken::build(timeout, deadline.instant(), true)
    }

    fn build(
        timeout: Option<Duration>,
        hard_deadline: Option<Instant>,
        defer_timeout: bool,
    ) -> TrialToken {
        let exec_started = if defer_timeout { EXEC_UNSTARTED } else { 0 };
        let token = TrialToken {
            inner: Arc::new(TokenInner {
                hard_deadline,
                timeout,
                exec_started_ns: AtomicU64::new(exec_started),
                cancelled: AtomicBool::new(false),
                timed_out: AtomicBool::new(false),
                created: Instant::now(),
            }),
        };
        if timeout.is_some() || hard_deadline.is_some() {
            watchdog_register(&token);
        }
        token
    }

    /// Marks the start of execution, arming a deferred per-trial timeout.
    /// The first caller wins (folds of one trial share the token); returns
    /// whether this call armed it. Called by [`run_trial`]; idempotent.
    pub fn mark_exec_start(&self) -> bool {
        let ns = self.inner.created.elapsed().as_nanos() as u64;
        self.inner
            .exec_started_ns
            .compare_exchange(EXEC_UNSTARTED, ns, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Time spent between dispatch (token creation) and the start of
    /// execution. While still queued this is simply the age of the token.
    pub fn queue_wait(&self) -> Duration {
        match self.inner.exec_started_ns.load(Ordering::Acquire) {
            EXEC_UNSTARTED => self.inner.created.elapsed(),
            ns => Duration::from_nanos(ns),
        }
    }

    /// Execution time so far (zero until execution starts).
    pub fn exec_elapsed(&self) -> Duration {
        match self.inner.exec_started_ns.load(Ordering::Acquire) {
            EXEC_UNSTARTED => Duration::ZERO,
            ns => self
                .inner
                .created
                .elapsed()
                .saturating_sub(Duration::from_nanos(ns)),
        }
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once `cancel` was called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// True once the deadline passed (latched; set by the watchdog or by
    /// the first poll that observes the overrun).
    pub fn timed_out(&self) -> bool {
        if self.inner.timed_out.load(Ordering::Acquire) {
            return true;
        }
        if self.inner.past_deadline(Instant::now()) {
            self.inner.timed_out.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// True when the watchdog (not a self-poll) has already marked this
    /// token — i.e. without touching the clock.
    pub fn marked_timed_out(&self) -> bool {
        self.inner.timed_out.load(Ordering::Acquire)
    }

    /// The cooperative stop signal long-running fits poll.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.timed_out()
    }

    /// Time since the token was created (dispatch), including queue wait.
    pub fn elapsed(&self) -> Duration {
        self.inner.created.elapsed()
    }
}

impl Default for TrialToken {
    fn default() -> TrialToken {
        TrialToken::unbounded()
    }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

struct WatchdogState {
    queue: Mutex<Vec<Weak<TokenInner>>>,
    wake: Condvar,
}

fn watchdog_state() -> &'static WatchdogState {
    static STATE: OnceLock<WatchdogState> = OnceLock::new();
    STATE.get_or_init(|| {
        let state = WatchdogState { queue: Mutex::new(Vec::new()), wake: Condvar::new() };
        std::thread::Builder::new()
            .name("smartml-watchdog".into())
            .spawn(watchdog_loop)
            .expect("spawn watchdog thread");
        state
    })
}

/// Registers a deadline-bearing token with the global watchdog thread,
/// which will latch its `timed_out` flag once the deadline passes. The
/// watchdog holds only a `Weak` reference: dropped tokens are pruned, so
/// registration never leaks.
fn watchdog_register(token: &TrialToken) {
    let state = watchdog_state();
    let mut queue = state.queue.lock().expect("watchdog queue");
    queue.push(Arc::downgrade(&token.inner));
    state.wake.notify_one();
}

fn watchdog_loop() {
    let state = watchdog_state();
    let mut queue = state.queue.lock().expect("watchdog queue");
    loop {
        // Prune finished tokens: dropped, already marked, or cancelled.
        queue.retain(|w| {
            w.upgrade().is_some_and(|t| {
                !t.timed_out.load(Ordering::Acquire) && !t.cancelled.load(Ordering::Acquire)
            })
        });
        if queue.is_empty() {
            queue = state.wake.wait(queue).expect("watchdog wait");
            continue;
        }
        let now = Instant::now();
        for w in queue.iter() {
            if let Some(t) = w.upgrade() {
                // Deferred timeouts only become part of the effective
                // deadline once execution starts, so a queued trial is
                // never killed for pool congestion it did not cause.
                if t.past_deadline(now) && !t.timed_out.swap(true, Ordering::AcqRel) {
                    WATCHDOG_FIRES.inc();
                }
            }
        }
        // 2ms scan granularity while any trial is in flight; parked on
        // the condvar (zero cost) whenever the queue is empty.
        let (q, _) = state
            .wake
            .wait_timeout(queue, Duration::from_millis(2))
            .expect("watchdog wait");
        queue = q;
    }
}

// ---------------------------------------------------------------------------
// Scoped current-trial token (what classifier fits poll)
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_TOKEN: Cell<Option<&'static TokenInner>> = const { Cell::new(None) };
    /// Depth of guarded trials on this thread; a non-zero depth silences
    /// the panic hook (the guard reports the panic through the outcome
    /// taxonomy instead of stderr).
    static TRIAL_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII scope that installs `token` as the thread's current trial.
struct TrialScope {
    prev: Option<&'static TokenInner>,
}

impl TrialScope {
    fn enter(token: &TrialToken) -> TrialScope {
        // The reference handed to the thread-local is derived from an
        // `Arc` clone leaked *for the duration of the scope only*: we
        // hold the clone in the scope and restore on drop, so the
        // 'static lifetime never outlives the guard (the Cell is plain
        // data, it cannot hold a lifetime).
        let raw: &'static TokenInner =
            unsafe { &*(Arc::as_ptr(&token.inner) as *const TokenInner) };
        let prev = CURRENT_TOKEN.with(|c| c.replace(Some(raw)));
        TRIAL_DEPTH.with(|d| d.set(d.get() + 1));
        TrialScope { prev }
    }
}

impl Drop for TrialScope {
    fn drop(&mut self) {
        CURRENT_TOKEN.with(|c| c.set(self.prev));
        TRIAL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Polls the current trial's stop signal from anywhere below the guard on
/// the same thread — the hook long-running classifier fits (forest
/// growing, SMO passes, NN epochs) call each iteration. Returns `false`
/// when no guarded trial is active, so fits outside a trial (e.g. the
/// final refit) never stop early.
pub fn trial_should_stop() -> bool {
    CURRENT_TOKEN.with(|c| match c.get() {
        None => false,
        Some(inner) => {
            if inner.cancelled.load(Ordering::Acquire)
                || inner.timed_out.load(Ordering::Acquire)
            {
                return true;
            }
            if inner.past_deadline(Instant::now()) {
                inner.timed_out.store(true, Ordering::Release);
                return true;
            }
            false
        }
    })
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// How a guarded trial ended.
#[derive(Debug)]
pub enum GuardOutcome<T> {
    /// The closure returned within its deadline.
    Completed(T),
    /// The closure panicked; `site` is the fail-point site or panic
    /// message that identifies where.
    Panicked {
        /// Where the panic originated.
        site: String,
    },
    /// The trial overran its deadline (whether or not a value was
    /// eventually produced — an overrunning result is not trustworthy
    /// under a time-budget race and is discarded).
    TimedOut {
        /// Time the trial had consumed when classified.
        elapsed: Duration,
    },
}

impl<T> GuardOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            GuardOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// Silences the default panic printer for panics that unwind inside a
/// guarded trial: the guard catches and classifies them, so the noise on
/// stderr would only drown real diagnostics. Panics outside any guard
/// are passed through to the previous hook untouched.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if TRIAL_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable site from a caught panic payload.
fn panic_site(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(injected) = payload.downcast_ref::<fail::InjectedPanic>() {
        return injected.site.to_string();
    }
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "unknown panic payload".to_string()
}

/// Runs `f` as a fault-contained trial under `token`.
///
/// - Panics inside `f` are caught and classified as
///   [`GuardOutcome::Panicked`]; waiting threads, caches and pool
///   workers never see the unwind.
/// - If the token's deadline passes (marked by the watchdog thread or
///   observed by a poll), the trial is classified as
///   [`GuardOutcome::TimedOut`] — including when `f` limps to a value
///   after the cutoff.
/// - With an unbounded token and no panic the behaviour (and the
///   result) is bit-identical to calling `f()` directly.
pub fn run_trial<T>(token: &TrialToken, f: impl FnOnce() -> T) -> GuardOutcome<T> {
    if token.should_stop() {
        return GuardOutcome::TimedOut { elapsed: token.elapsed() };
    }
    // Arm a deferred per-trial timeout now that execution begins, and
    // attribute the dispatch→execution gap to queue wait (first guard on
    // the token only — later folds of the same trial are not "queued").
    if token.mark_exec_start() {
        let wait = token.queue_wait();
        QUEUE_WAIT_US.record_duration(wait);
        if smartml_obs::tracing_enabled() {
            let start = Instant::now() - wait;
            smartml_obs::record_interval("runtime.trial.queue_wait", String::new(), start, wait);
        }
    }
    install_quiet_hook();
    let exec_start = Instant::now();
    let result = {
        let _scope = TrialScope::enter(token);
        panic::catch_unwind(AssertUnwindSafe(f))
    };
    EXEC_US.record_duration(exec_start.elapsed());
    match result {
        Err(payload) => GuardOutcome::Panicked { site: panic_site(payload) },
        Ok(_) if token.should_stop() && !token.is_cancelled() => {
            GuardOutcome::TimedOut { elapsed: token.exec_elapsed() }
        }
        Ok(value) => GuardOutcome::Completed(value),
    }
}

// ---------------------------------------------------------------------------
// Deterministic fail-point registry
// ---------------------------------------------------------------------------

/// Deterministic, seed-driven fail points.
///
/// Production code calls [`fail::trigger`]`("site", seed)` at
/// interesting places in the trial path. With the `fault-injection`
/// feature **off** (the default) the call compiles to nothing. With the
/// feature on, a test arms a [`fail::FaultPlan`]; each `(site, seed)`
/// pair then deterministically panics, hangs, or does nothing, according
/// to the plan's per-site rates — the same plan, site and seed always
/// produce the same fault, independent of threads or timing.
pub mod fail {
    /// Payload type for injected panics, recognised by the guard so the
    /// reported site is exact rather than parsed from a message.
    #[derive(Debug)]
    pub struct InjectedPanic {
        /// The fail-point site that fired.
        pub site: &'static str,
    }

    #[cfg(feature = "fault-injection")]
    pub use enabled::*;

    #[cfg(feature = "fault-injection")]
    mod enabled {
        use super::InjectedPanic;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::RwLock;
        use std::time::{Duration, Instant};

        /// One site's injection rule.
        #[derive(Debug, Clone)]
        pub struct SiteRule {
            /// Site name to match exactly, or `"*"` for every site.
            pub site: String,
            /// Probability in `[0, 1]` that a hit panics.
            pub panic_rate: f64,
            /// Probability in `[0, 1]` that a hit hangs (evaluated after
            /// the panic draw on the same deterministic stream).
            pub hang_rate: f64,
            /// How long a hang busy-waits (cooperatively: it polls the
            /// current trial token and returns early once cancelled or
            /// timed out, so hangs never outlive their watchdog).
            pub hang_for: Duration,
        }

        impl SiteRule {
            /// A rule that always panics at `site`.
            pub fn always_panic(site: &str) -> SiteRule {
                SiteRule {
                    site: site.to_string(),
                    panic_rate: 1.0,
                    hang_rate: 0.0,
                    hang_for: Duration::ZERO,
                }
            }

            /// A rule that always hangs at `site` for `d`.
            pub fn always_hang(site: &str, d: Duration) -> SiteRule {
                SiteRule {
                    site: site.to_string(),
                    panic_rate: 0.0,
                    hang_rate: 1.0,
                    hang_for: d,
                }
            }
        }

        /// A deterministic injection plan: a master seed plus site rules.
        #[derive(Debug, Clone, Default)]
        pub struct FaultPlan {
            /// Master seed mixed into every decision.
            pub seed: u64,
            /// Site rules, first match wins.
            pub rules: Vec<SiteRule>,
        }

        static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
        static INJECTED_PANICS: AtomicUsize = AtomicUsize::new(0);
        static INJECTED_HANGS: AtomicUsize = AtomicUsize::new(0);

        /// Arms the registry with a plan (replacing any previous plan)
        /// and resets the injection counters.
        pub fn arm(plan: FaultPlan) {
            INJECTED_PANICS.store(0, Ordering::SeqCst);
            INJECTED_HANGS.store(0, Ordering::SeqCst);
            *PLAN.write().expect("fault plan lock") = Some(plan);
        }

        /// Disarms the registry; `trigger` becomes a no-op again.
        pub fn disarm() {
            *PLAN.write().expect("fault plan lock") = None;
        }

        /// Number of panics injected since the last `arm`.
        pub fn injected_panics() -> usize {
            INJECTED_PANICS.load(Ordering::SeqCst)
        }

        /// Number of hangs injected since the last `arm`.
        pub fn injected_hangs() -> usize {
            INJECTED_HANGS.load(Ordering::SeqCst)
        }

        /// FNV-1a over the site name — stable across runs and platforms.
        fn site_hash(site: &str) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in site.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }

        /// Uniform draw in `[0, 1)` from `(plan seed, site, seed, salt)`.
        fn draw(plan_seed: u64, site: &str, seed: u64, salt: u64) -> f64 {
            let mixed = crate::task_seed(plan_seed ^ site_hash(site), seed ^ salt);
            (mixed >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Evaluates the armed plan at `(site, seed)`: panics with an
        /// [`InjectedPanic`] payload, hangs cooperatively, or returns.
        pub fn trigger(site: &'static str, seed: u64) {
            let rule = {
                let plan = PLAN.read().expect("fault plan lock");
                let Some(plan) = plan.as_ref() else { return };
                let Some(rule) =
                    plan.rules.iter().find(|r| r.site == site || r.site == "*").cloned()
                else {
                    return;
                };
                (plan.seed, rule)
            };
            let (plan_seed, rule) = rule;
            if draw(plan_seed, site, seed, 0x9e37) < rule.panic_rate {
                INJECTED_PANICS.fetch_add(1, Ordering::SeqCst);
                std::panic::panic_any(InjectedPanic { site });
            }
            if draw(plan_seed, site, seed, 0x85eb) < rule.hang_rate {
                INJECTED_HANGS.fetch_add(1, Ordering::SeqCst);
                let start = Instant::now();
                while start.elapsed() < rule.hang_for {
                    if super::super::trial_should_stop() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// No-op fail point (feature `fault-injection` disabled).
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    pub fn trigger(_site: &'static str, _seed: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_stops() {
        let t = TrialToken::unbounded();
        assert!(!t.should_stop());
        assert!(!t.timed_out());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_stops_cooperatively() {
        let t = TrialToken::unbounded();
        t.cancel();
        assert!(t.should_stop());
        assert!(t.is_cancelled());
        assert!(!t.timed_out());
    }

    #[test]
    fn deadline_latches_timed_out() {
        let t = TrialToken::with_timeout(Duration::from_millis(5));
        assert!(!t.should_stop());
        std::thread::sleep(Duration::from_millis(15));
        assert!(t.timed_out());
        assert!(t.should_stop());
    }

    #[test]
    fn watchdog_marks_overrunning_tokens_without_a_poll() {
        let t = TrialToken::with_timeout(Duration::from_millis(5));
        // No `should_stop`/`timed_out` call in between: only the
        // watchdog thread can have set the latched flag.
        std::thread::sleep(Duration::from_millis(60));
        assert!(t.marked_timed_out(), "watchdog failed to mark the token");
    }

    #[test]
    fn bounded_takes_the_earlier_cutoff() {
        // The per-trial timeout is deferred: it only counts once a guard
        // starts executing, so the sleep happens inside run_trial.
        let far = Deadline::after(Duration::from_secs(60));
        let t = TrialToken::bounded(Some(Duration::from_millis(5)), far);
        let out = run_trial(&t, || std::thread::sleep(Duration::from_millis(15)));
        assert!(matches!(out, GuardOutcome::TimedOut { .. }));
        assert!(t.timed_out());
        // The hard deadline is absolute: it trips even with no execution.
        let near = Deadline::after(Duration::from_millis(5));
        let t = TrialToken::bounded(Some(Duration::from_secs(60)), near);
        std::thread::sleep(Duration::from_millis(15));
        assert!(t.timed_out());
        let t = TrialToken::bounded(None, Deadline::none());
        assert!(!t.should_stop());
    }

    #[test]
    fn queue_wait_does_not_count_against_a_deferred_timeout() {
        // Regression: a trial that sits queued for longer than its timeout
        // must still get its full execution budget once a worker picks it
        // up. Before the fix the deadline was measured from dispatch and
        // this trial died before running.
        let t = TrialToken::bounded(Some(Duration::from_millis(50)), Deadline::none());
        std::thread::sleep(Duration::from_millis(80)); // simulated queue wait
        assert!(!t.should_stop(), "queued trial must not time out");
        let out = run_trial(&t, || {
            std::thread::sleep(Duration::from_millis(5));
            7
        });
        assert!(
            matches!(out, GuardOutcome::Completed(7)),
            "trial killed for queue wait: {out:?}"
        );
        // The split accounting sees the wait and the execution separately.
        assert!(t.queue_wait() >= Duration::from_millis(80));
        assert!(t.exec_elapsed() >= Duration::from_millis(5));
        assert!(t.exec_elapsed() < Duration::from_millis(60));
    }

    #[test]
    fn deferred_timeout_still_fires_on_exec_overrun() {
        let t = TrialToken::bounded(Some(Duration::from_millis(10)), Deadline::none());
        std::thread::sleep(Duration::from_millis(30)); // queue wait, free
        let out = run_trial(&t, || {
            let mut polls = 0usize;
            while !trial_should_stop() {
                std::thread::sleep(Duration::from_millis(1));
                polls += 1;
                assert!(polls < 10_000, "watchdog never tripped");
            }
        });
        match out {
            GuardOutcome::TimedOut { elapsed } => {
                // elapsed reports execution time, not dispatch age.
                assert!(elapsed >= Duration::from_millis(5));
                assert!(elapsed < Duration::from_millis(1_000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mark_exec_start_first_caller_wins() {
        let t = TrialToken::bounded(Some(Duration::from_secs(1)), Deadline::none());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.mark_exec_start());
        let wait = t.queue_wait();
        assert!(wait >= Duration::from_millis(10));
        // Later guards (e.g. further folds of the same trial) do not move
        // the exec-start marker.
        std::thread::sleep(Duration::from_millis(5));
        assert!(!t.mark_exec_start());
        assert_eq!(t.queue_wait(), wait);
    }

    #[test]
    fn guard_completes_transparently() {
        let t = TrialToken::unbounded();
        match run_trial(&t, || 41 + 1) {
            GuardOutcome::Completed(v) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn guard_catches_panics_with_site() {
        let t = TrialToken::unbounded();
        match run_trial(&t, || -> u32 { panic!("exploding fit") }) {
            GuardOutcome::Panicked { site } => assert!(site.contains("exploding fit")),
            other => panic!("unexpected {other:?}"),
        }
        // The guard is reusable after a panic.
        assert!(matches!(run_trial(&t, || 7), GuardOutcome::Completed(7)));
    }

    #[test]
    fn guard_classifies_overrun_as_timeout() {
        let t = TrialToken::with_timeout(Duration::from_millis(5));
        let out = run_trial(&t, || {
            std::thread::sleep(Duration::from_millis(20));
            123
        });
        match out {
            GuardOutcome::TimedOut { elapsed } => {
                assert!(elapsed >= Duration::from_millis(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn guard_short_circuits_an_already_dead_token() {
        let t = TrialToken::with_timeout(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let mut ran = false;
        let out = run_trial(&t, || ran = true);
        assert!(matches!(out, GuardOutcome::TimedOut { .. }));
        assert!(!ran, "closure must not run once the token is dead");
    }

    #[test]
    fn cancelled_completion_is_not_a_timeout() {
        // A caller-side cancel on an unbounded token that still produced
        // a value: the value is kept (cancel is a hint, not a deadline).
        let t = TrialToken::unbounded();
        let out = run_trial(&t, || {
            t.cancel();
            5
        });
        assert!(matches!(out, GuardOutcome::Completed(5)));
    }

    #[test]
    fn trial_should_stop_sees_the_scoped_token() {
        assert!(!trial_should_stop(), "no trial active");
        let t = TrialToken::with_timeout(Duration::from_millis(5));
        let out = run_trial(&t, || {
            let mut polls = 0usize;
            while !trial_should_stop() {
                std::thread::sleep(Duration::from_millis(1));
                polls += 1;
                assert!(polls < 10_000, "poll never tripped");
            }
            polls
        });
        assert!(matches!(out, GuardOutcome::TimedOut { .. }));
        assert!(!trial_should_stop(), "scope restored after the trial");
    }

    #[test]
    fn nested_guards_restore_the_outer_token() {
        let outer = TrialToken::unbounded();
        let out = run_trial(&outer, || {
            let inner = TrialToken::with_timeout(Duration::from_millis(1));
            std::thread::sleep(Duration::from_millis(5));
            let inner_out = run_trial(&inner, || ());
            assert!(matches!(inner_out, GuardOutcome::TimedOut { .. }));
            assert!(!trial_should_stop(), "outer token is unbounded");
            9
        });
        assert!(matches!(out, GuardOutcome::Completed(9)));
    }

    #[cfg(feature = "fault-injection")]
    mod injection {
        use super::super::*;
        use std::sync::{Mutex, OnceLock};
        use std::time::Duration;

        /// The registry is process-global; tests that arm it serialise.
        fn lock() -> std::sync::MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            GATE.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        #[test]
        fn disarmed_trigger_is_a_noop() {
            let _g = lock();
            fail::disarm();
            fail::trigger("anywhere", 1);
        }

        #[test]
        fn armed_panic_rate_one_always_fires_and_is_caught() {
            let _g = lock();
            fail::arm(fail::FaultPlan {
                seed: 7,
                rules: vec![fail::SiteRule::always_panic("test::site")],
            });
            let t = TrialToken::unbounded();
            let out = run_trial(&t, || fail::trigger("test::site", 3));
            fail::disarm();
            match out {
                GuardOutcome::Panicked { site } => assert_eq!(site, "test::site"),
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(fail::injected_panics(), 1);
        }

        #[test]
        fn decisions_are_deterministic_in_site_and_seed() {
            let _g = lock();
            fail::arm(fail::FaultPlan {
                seed: 42,
                rules: vec![fail::SiteRule {
                    site: "*".into(),
                    panic_rate: 0.5,
                    hang_rate: 0.0,
                    hang_for: Duration::ZERO,
                }],
            });
            let probe = |seed: u64| {
                let t = TrialToken::unbounded();
                matches!(
                    run_trial(&t, || fail::trigger("flaky::site", seed)),
                    GuardOutcome::Panicked { .. }
                )
            };
            let first: Vec<bool> = (0..64).map(probe).collect();
            let second: Vec<bool> = (0..64).map(probe).collect();
            fail::disarm();
            assert_eq!(first, second, "same (site, seed) must fault identically");
            let fired = first.iter().filter(|&&b| b).count();
            assert!(
                (16..=48).contains(&fired),
                "rate 0.5 fired {fired}/64 — draw is badly skewed"
            );
        }

        #[test]
        fn hang_respects_the_trial_deadline() {
            let _g = lock();
            fail::arm(fail::FaultPlan {
                seed: 1,
                rules: vec![fail::SiteRule::always_hang("slow::site", Duration::from_secs(30))],
            });
            let t = TrialToken::with_timeout(Duration::from_millis(20));
            let start = std::time::Instant::now();
            let out = run_trial(&t, || fail::trigger("slow::site", 0));
            fail::disarm();
            assert!(matches!(out, GuardOutcome::TimedOut { .. }));
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "hang ignored the watchdog: {:?}",
                start.elapsed()
            );
            assert_eq!(fail::injected_hangs(), 1);
        }
    }
}
