//! The resident job queue: admission control, per-tenant quotas, the
//! deterministic weighted-fair scheduler, and crash recovery.
//!
//! Everything lives under one mutex ([`Core`]) with a condvar for the
//! worker pool. That is deliberate: the protected work is queue
//! bookkeeping (microseconds), while the jobs themselves — seconds of
//! AutoML — run outside any lock, so a single lock is never the
//! bottleneck and gives the scheduler its determinism for free: the
//! k-th claim is a pure function of the admission history and the
//! previous k−1 claims, regardless of how many workers race or which
//! thread wins the lock.
//!
//! ## Fairness
//!
//! Tenants are served by *virtual time*: each tenant accumulates
//! `served` cost units (trials, or 100 ms slices for time budgets)
//! normalised by its weight. The next claim goes to the nonempty tenant
//! with the smallest `served / weight`, compared exactly in integers
//! (`a.served * b.weight < b.served * a.weight` in u128 — no floats,
//! no rounding drift), ties broken by tenant name. Within a tenant,
//! jobs run strictly FIFO.

use crate::journal::{result_path, Journal, JournalRecord, JournalRecovery};
use crate::protocol::{reject, JobDataset, JobState, JobView, TenantView};
use smartml::api::ExperimentOptions;
use smartml::{charge_quota, Budget, QuotaCharge};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration (flags of the `jobd` binary).
#[derive(Debug, Clone)]
pub struct JobdConfig {
    /// Journal + result directory.
    pub dir: PathBuf,
    /// Worker pool width.
    pub workers: usize,
    /// Global queued-job cap; admission rejects `queue_full` beyond it.
    pub max_queued: usize,
    /// Per-tenant queued+running cap; admission rejects `tenant_busy`.
    pub max_tenant_inflight: usize,
    /// Per-tenant lifetime trial quota.
    pub quota_trials: usize,
    /// Per-tenant lifetime time-budget quota in seconds.
    pub quota_secs: f64,
    /// Fairness weights (`tenant`, `weight ≥ 1`); unlisted tenants get 1.
    pub weights: Vec<(String, u64)>,
    /// Fsync journal appends (tests may disable for speed).
    pub fsync: bool,
}

impl Default for JobdConfig {
    fn default() -> JobdConfig {
        JobdConfig {
            dir: PathBuf::from("jobd-data"),
            workers: 2,
            max_queued: 256,
            max_tenant_inflight: 64,
            quota_trials: 10_000,
            quota_secs: 3_600.0,
            weights: Vec::new(),
            fsync: true,
        }
    }
}

/// One job's resident record.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: u64,
    pub tenant: String,
    pub name: String,
    pub dataset: JobDataset,
    pub options: ExperimentOptions,
    pub state: JobState,
    pub clamped: bool,
    pub cost: u64,
    pub error: Option<String>,
    /// Set while running (not journaled; progress ticks only).
    pub started_at: Option<Instant>,
}

impl Job {
    pub fn view(&self) -> JobView {
        JobView {
            id: self.id,
            tenant: self.tenant.clone(),
            name: self.name.clone(),
            state: self.state,
            clamped: self.clamped,
            error: self.error.clone(),
        }
    }
}

/// Per-tenant scheduler + quota state.
#[derive(Debug)]
struct Tenant {
    weight: u64,
    /// Cost units already claimed for execution (virtual time).
    served: u64,
    remaining_trials: usize,
    remaining_secs: f64,
    queue: VecDeque<u64>,
    running: usize,
}

impl Tenant {
    fn new(weight: u64, cfg: &JobdConfig) -> Tenant {
        Tenant {
            weight: weight.max(1),
            served: 0,
            remaining_trials: cfg.quota_trials,
            remaining_secs: cfg.quota_secs,
            queue: VecDeque::new(),
            running: 0,
        }
    }

    fn inflight(&self) -> usize {
        self.queue.len() + self.running
    }
}

/// A lifecycle edge for `WATCH` subscribers.
#[derive(Debug, Clone)]
pub struct JobEvent {
    pub id: u64,
    pub state: JobState,
    pub detail: String,
}

/// Admission refusal with its closed-set reason.
#[derive(Debug, Clone)]
pub struct Rejection {
    pub reason: &'static str,
    pub detail: String,
}

/// What recovery found and did (printed at startup, asserted by tests).
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    pub replayed: usize,
    pub truncated_tail: bool,
    /// Jobs that were running at crash time, now `aborted`.
    pub aborted: Vec<u64>,
    /// Jobs that were queued at crash time, re-queued in id order.
    pub requeued: Vec<u64>,
}

struct Core {
    jobs: BTreeMap<u64, Job>,
    tenants: BTreeMap<String, Tenant>,
    next_id: u64,
    queued_total: usize,
    shutting_down: bool,
    journal: Journal,
    events: VecDeque<JobEvent>,
}

/// The shared service state: one mutex core, a condvar for workers, and
/// an optional event-loop waker poked whenever a watchable event lands.
pub struct JobdState {
    cfg: JobdConfig,
    core: Mutex<Core>,
    workers_cv: Condvar,
    notifier: Mutex<Option<std::sync::Arc<smartml_netio::Waker>>>,
}

impl JobdState {
    /// Opens the journal, replays it, repairs crash damage and returns
    /// the resident state.
    pub fn open(cfg: JobdConfig) -> io::Result<(JobdState, RecoveryInfo)> {
        let (journal, JournalRecovery { records, truncated_tail }) =
            Journal::open(&cfg.dir, cfg.fsync)?;
        let mut core = Core {
            jobs: BTreeMap::new(),
            tenants: BTreeMap::new(),
            next_id: 1,
            queued_total: 0,
            shutting_down: false,
            journal,
            events: VecDeque::new(),
        };
        let mut info = RecoveryInfo {
            replayed: records.len(),
            truncated_tail,
            ..RecoveryInfo::default()
        };
        for record in records {
            match record {
                JournalRecord::Submitted {
                    id,
                    tenant,
                    name,
                    dataset,
                    options,
                    clamped,
                    cost,
                    charged_trials,
                    charged_secs,
                } => {
                    let t = ensure_tenant(&mut core.tenants, &tenant, &cfg);
                    // Quota charges are made at admission and never
                    // refunded; replaying every submit reconstructs the
                    // balance exactly.
                    t.remaining_trials = t.remaining_trials.saturating_sub(charged_trials);
                    t.remaining_secs = (t.remaining_secs - charged_secs).max(0.0);
                    core.next_id = core.next_id.max(id + 1);
                    core.jobs.insert(
                        id,
                        Job {
                            id,
                            tenant,
                            name,
                            dataset,
                            options,
                            state: JobState::Queued,
                            clamped,
                            cost,
                            error: None,
                            started_at: None,
                        },
                    );
                }
                JournalRecord::Started { id } => {
                    if let Some(job) = core.jobs.get_mut(&id) {
                        job.state = JobState::Running;
                        // Fairness continuity: work claimed before the
                        // crash still counts against the tenant's share.
                        let cost = job.cost;
                        let tenant = job.tenant.clone();
                        ensure_tenant(&mut core.tenants, &tenant, &cfg).served += cost;
                    }
                }
                JournalRecord::Finished { id, ok, error } => {
                    if let Some(job) = core.jobs.get_mut(&id) {
                        job.state = if ok { JobState::Done } else { JobState::Failed };
                        job.error = error;
                    }
                }
                JournalRecord::Cancelled { id } => {
                    if let Some(job) = core.jobs.get_mut(&id) {
                        job.state = JobState::Cancelled;
                    }
                }
                JournalRecord::Aborted { id } => {
                    if let Some(job) = core.jobs.get_mut(&id) {
                        job.state = JobState::Aborted;
                    }
                }
            }
        }
        // Crash repair: running without a terminal record means the
        // process died mid-experiment. The work is gone; say so.
        let running: Vec<u64> = core
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        for id in running {
            core.journal.append(&JournalRecord::Aborted { id }, true)?;
            if let Some(job) = core.jobs.get_mut(&id) {
                job.state = JobState::Aborted;
            }
            info.aborted.push(id);
        }
        // Queued jobs survive the crash: re-queue in id order (BTreeMap
        // iteration order), which is exactly admission order.
        let queued: Vec<(u64, String)> = core
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .map(|j| (j.id, j.tenant.clone()))
            .collect();
        for (id, tenant) in queued {
            ensure_tenant(&mut core.tenants, &tenant, &cfg).queue.push_back(id);
            core.queued_total += 1;
            info.requeued.push(id);
        }
        Ok((
            JobdState {
                cfg,
                core: Mutex::new(core),
                workers_cv: Condvar::new(),
                notifier: Mutex::new(None),
            },
            info,
        ))
    }

    pub fn config(&self) -> &JobdConfig {
        &self.cfg
    }

    /// Registers the event-loop waker that gets poked on every pushed
    /// event (so `WATCH` lines stream without polling).
    pub fn set_notifier(&self, waker: std::sync::Arc<smartml_netio::Waker>) {
        *self.notifier.lock().expect("notifier poisoned") = Some(waker);
    }

    fn notify(&self) {
        if let Some(w) = self.notifier.lock().expect("notifier poisoned").as_ref() {
            let _ = w.wake();
        }
    }

    /// Admission: caps → quota → journal → queue. The `submitted`
    /// response must not be sent before this returns — the journal
    /// append inside is what makes the admit promise crash-proof.
    pub fn submit(
        &self,
        tenant: &str,
        name: &str,
        dataset: JobDataset,
        mut options: ExperimentOptions,
    ) -> Result<(u64, bool), Rejection> {
        // Validate before taking anything: a submission that cannot
        // build options must not consume quota or a queue slot.
        let built = options.build().map_err(|detail| Rejection {
            reason: reject::BAD_REQUEST,
            detail,
        })?;
        let requested = built.budget;
        let mut core = self.core.lock().expect("jobd core poisoned");
        if core.shutting_down {
            return Err(Rejection {
                reason: reject::SHUTTING_DOWN,
                detail: "daemon is draining".into(),
            });
        }
        if core.queued_total >= self.cfg.max_queued {
            return Err(Rejection {
                reason: reject::QUEUE_FULL,
                detail: format!("{} jobs queued (cap {})", core.queued_total, self.cfg.max_queued),
            });
        }
        let weight = tenant_weight(&self.cfg, tenant);
        let t = ensure_tenant_weighted(&mut core.tenants, tenant, weight, &self.cfg);
        if t.inflight() >= self.cfg.max_tenant_inflight {
            return Err(Rejection {
                reason: reject::TENANT_BUSY,
                detail: format!(
                    "tenant {tenant} has {} jobs in flight (cap {})",
                    t.inflight(),
                    self.cfg.max_tenant_inflight
                ),
            });
        }
        let (granted, clamped) = match charge_quota(&requested, t.remaining_trials, t.remaining_secs)
        {
            QuotaCharge::Granted(b) => (b, false),
            QuotaCharge::Clamped(b) => (b, true),
            QuotaCharge::Exhausted => {
                return Err(Rejection {
                    reason: reject::QUOTA_EXHAUSTED,
                    detail: format!(
                        "tenant {tenant} has {} trials / {:.2}s of quota left",
                        t.remaining_trials, t.remaining_secs
                    ),
                });
            }
        };
        // Drain the quota and rewrite the job's options to the granted
        // budget, so the executed run and the journal both carry what
        // was actually admitted.
        let (charged_trials, charged_secs, cost) = match granted {
            Budget::Trials(n) => {
                options.budget_trials = Some(n);
                options.budget_seconds = None;
                (n, 0.0, n as u64)
            }
            Budget::Time(d) => {
                options.budget_seconds = Some(d.as_secs_f64());
                options.budget_trials = None;
                // 100 ms slices, floor 1: keeps time-budget tenants
                // comparable to trial-budget tenants in virtual time.
                (0, d.as_secs_f64(), (d.as_millis() as u64 / 100).max(1))
            }
        };
        t.remaining_trials = t.remaining_trials.saturating_sub(charged_trials);
        t.remaining_secs = (t.remaining_secs - charged_secs).max(0.0);

        let id = core.next_id;
        core.next_id += 1;
        let job = Job {
            id,
            tenant: tenant.to_string(),
            name: name.to_string(),
            dataset,
            options,
            state: JobState::Queued,
            clamped,
            cost,
            error: None,
            started_at: None,
        };
        let record = JournalRecord::Submitted {
            id,
            tenant: job.tenant.clone(),
            name: job.name.clone(),
            dataset: job.dataset.clone(),
            options: job.options.clone(),
            clamped,
            cost,
            charged_trials,
            charged_secs,
        };
        core.journal.append(&record, true).map_err(|e| Rejection {
            reason: reject::BAD_REQUEST,
            detail: format!("journal write failed: {e}"),
        })?;
        core.jobs.insert(id, job);
        core.tenants
            .get_mut(tenant)
            .expect("tenant just ensured")
            .queue
            .push_back(id);
        core.queued_total += 1;
        drop(core);
        self.workers_cv.notify_one();
        Ok((id, clamped))
    }

    /// Worker entry point: blocks until a job is claimable, claims it
    /// under the scheduler's fairness order, returns a clone to run.
    /// `None` means the daemon is shutting down.
    pub fn claim_next(&self) -> Option<Job> {
        let mut guard = self.core.lock().expect("jobd core poisoned");
        loop {
            if guard.shutting_down {
                return None;
            }
            if let Some(tenant) = pick_tenant(&guard.tenants) {
                // Reborrow the guard so `tenants` and `jobs` split as
                // disjoint fields.
                let core = &mut *guard;
                let t = core.tenants.get_mut(&tenant).expect("picked tenant exists");
                let id = t.queue.pop_front().expect("picked tenant has a queued job");
                t.served += core.jobs[&id].cost;
                t.running += 1;
                core.queued_total -= 1;
                let _ = core.journal.append(&JournalRecord::Started { id }, false);
                let job = core.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Running;
                job.started_at = Some(Instant::now());
                let claimed = job.clone();
                core.events.push_back(JobEvent {
                    id,
                    state: JobState::Running,
                    detail: format!("claimed for tenant {}", claimed.tenant),
                });
                drop(guard);
                self.notify();
                return Some(claimed);
            }
            guard = self.workers_cv.wait(guard).expect("jobd core poisoned");
        }
    }

    /// Completion: make the report durable *first*, then journal the
    /// terminal state, then publish it. A crash between the two leaves
    /// `started`-without-terminal, which recovery turns into `aborted` —
    /// never a `done` without its report file.
    pub fn finish(&self, id: u64, outcome: Result<String, String>) -> io::Result<()> {
        let (state, error, detail) = match outcome {
            Ok(report_json) => {
                let path = result_path(&self.cfg.dir, id);
                let tmp = path.with_extension("json.tmp");
                std::fs::write(&tmp, &report_json)?;
                let f = std::fs::File::open(&tmp)?;
                f.sync_all()?;
                std::fs::rename(&tmp, &path)?;
                (JobState::Done, None, String::from("report durable"))
            }
            Err(message) => (JobState::Failed, Some(message.clone()), message),
        };
        let mut guard = self.core.lock().expect("jobd core poisoned");
        let core = &mut *guard;
        core.journal.append(
            &JournalRecord::Finished { id, ok: state == JobState::Done, error: error.clone() },
            true,
        )?;
        if let Some(job) = core.jobs.get_mut(&id) {
            job.state = state;
            job.error = error;
            job.started_at = None;
            if let Some(t) = core.tenants.get_mut(&job.tenant) {
                t.running = t.running.saturating_sub(1);
            }
        }
        core.events.push_back(JobEvent { id, state, detail });
        drop(guard);
        self.notify();
        Ok(())
    }

    /// Cancels a *queued* job. Running and terminal jobs refuse.
    pub fn cancel(&self, id: u64) -> Result<(), String> {
        let mut core = self.core.lock().expect("jobd core poisoned");
        let Some(job) = core.jobs.get(&id) else {
            return Err(format!("no such job: {id}"));
        };
        match job.state {
            JobState::Queued => {}
            JobState::Running => {
                return Err(format!("job {id} is running; only queued jobs can be cancelled"))
            }
            s => return Err(format!("job {id} is already terminal ({s:?})")),
        }
        let tenant = job.tenant.clone();
        core.journal
            .append(&JournalRecord::Cancelled { id }, true)
            .map_err(|e| format!("journal write failed: {e}"))?;
        if let Some(t) = core.tenants.get_mut(&tenant) {
            t.queue.retain(|&q| q != id);
        }
        core.queued_total -= 1;
        if let Some(job) = core.jobs.get_mut(&id) {
            job.state = JobState::Cancelled;
        }
        core.events.push_back(JobEvent {
            id,
            state: JobState::Cancelled,
            detail: String::from("cancelled while queued"),
        });
        drop(core);
        self.notify();
        Ok(())
    }

    /// One job's view, if it exists.
    pub fn job_view(&self, id: u64) -> Option<JobView> {
        self.core.lock().expect("jobd core poisoned").jobs.get(&id).map(Job::view)
    }

    /// All jobs (optionally one tenant's), plus tenant quota balances.
    pub fn list(&self, tenant: Option<&str>) -> (Vec<JobView>, Vec<TenantView>) {
        let core = self.core.lock().expect("jobd core poisoned");
        let jobs = core
            .jobs
            .values()
            .filter(|j| tenant.is_none_or(|t| j.tenant == t))
            .map(Job::view)
            .collect();
        let tenants = core
            .tenants
            .iter()
            .filter(|(name, _)| tenant.is_none_or(|t| name.as_str() == t))
            .map(|(name, t)| TenantView {
                tenant: name.clone(),
                remaining_trials: t.remaining_trials,
                remaining_secs: t.remaining_secs,
                queued: t.queue.len(),
                running: t.running,
            })
            .collect();
        (jobs, tenants)
    }

    /// Reads a finished job's durable report JSON.
    pub fn result_json(&self, id: u64) -> Result<String, String> {
        let state = self
            .job_view(id)
            .map(|v| v.state)
            .ok_or_else(|| format!("no such job: {id}"))?;
        if state != JobState::Done {
            return Err(format!("job {id} is {state:?}, not done"));
        }
        std::fs::read_to_string(result_path(&self.cfg.dir, id))
            .map_err(|e| format!("result file for job {id}: {e}"))
    }

    /// Currently-running jobs with elapsed time (progress ticks).
    pub fn running_snapshot(&self) -> Vec<(u64, u128)> {
        let core = self.core.lock().expect("jobd core poisoned");
        core.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| (j.id, j.started_at.map(|s| s.elapsed().as_millis()).unwrap_or(0)))
            .collect()
    }

    /// Drains pending watch events (event-loop side).
    pub fn drain_events(&self) -> Vec<JobEvent> {
        let mut core = self.core.lock().expect("jobd core poisoned");
        core.events.drain(..).collect()
    }

    /// Starts draining: no new admissions, workers exit after their
    /// current job. Queued jobs stay journaled and re-queue on restart.
    pub fn shutdown(&self) {
        let mut core = self.core.lock().expect("jobd core poisoned");
        core.shutting_down = true;
        drop(core);
        self.workers_cv.notify_all();
        self.notify();
    }

    pub fn is_shutting_down(&self) -> bool {
        self.core.lock().expect("jobd core poisoned").shutting_down
    }
}

fn tenant_weight(cfg: &JobdConfig, tenant: &str) -> u64 {
    cfg.weights
        .iter()
        .find(|(name, _)| name == tenant)
        .map(|&(_, w)| w.max(1))
        .unwrap_or(1)
}

fn ensure_tenant<'a>(
    tenants: &'a mut BTreeMap<String, Tenant>,
    name: &str,
    cfg: &JobdConfig,
) -> &'a mut Tenant {
    let weight = tenant_weight(cfg, name);
    ensure_tenant_weighted(tenants, name, weight, cfg)
}

fn ensure_tenant_weighted<'a>(
    tenants: &'a mut BTreeMap<String, Tenant>,
    name: &str,
    weight: u64,
    cfg: &JobdConfig,
) -> &'a mut Tenant {
    tenants.entry(name.to_string()).or_insert_with(|| Tenant::new(weight, cfg))
}

/// The weighted-fair pick: among tenants with queued jobs, the smallest
/// virtual time `served / weight`, compared in exact integer arithmetic;
/// ties go to the lexicographically smaller tenant name (BTreeMap
/// iteration order makes that the first candidate seen).
fn pick_tenant(tenants: &BTreeMap<String, Tenant>) -> Option<String> {
    let mut best: Option<(&String, &Tenant)> = None;
    for (name, t) in tenants {
        if t.queue.is_empty() {
            continue;
        }
        best = match best {
            None => Some((name, t)),
            Some((bname, bt)) => {
                let candidate = (t.served as u128) * (bt.weight as u128);
                let incumbent = (bt.served as u128) * (t.weight as u128);
                if candidate < incumbent {
                    Some((name, t))
                } else {
                    Some((bname, bt))
                }
            }
        };
    }
    best.map(|(name, _)| name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cfg(tag: &str) -> JobdConfig {
        let dir = std::env::temp_dir().join(format!(
            "jobd-state-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        JobdConfig { dir, fsync: false, ..JobdConfig::default() }
    }

    fn csv() -> JobDataset {
        JobDataset::Csv { content: "a,y\n1,0\n2,1\n3,0\n4,1\n".into(), target: None }
    }

    fn trials(n: usize) -> ExperimentOptions {
        ExperimentOptions { budget_trials: Some(n), ..ExperimentOptions::default() }
    }

    #[test]
    fn fifo_within_tenant_weighted_fair_across() {
        let cfg = tmp_cfg("fair");
        let dir = cfg.dir.clone();
        let cfg = JobdConfig { weights: vec![("heavy".into(), 2)], ..cfg };
        let (state, _) = JobdState::open(cfg).unwrap();
        // heavy: h1 h2 h3; light: l1 l2 l3 — all cost 10.
        let mut ids = Vec::new();
        for tenant in ["heavy", "light"] {
            for i in 0..3 {
                let (id, _) =
                    state.submit(tenant, &format!("{tenant}{i}"), csv(), trials(10)).unwrap();
                ids.push((tenant, id));
            }
        }
        // Claim order: heavy (tie → name), light, heavy (10*1 < 10*2? no:
        // heavy served 10 weight 2 vs light 10 weight 1 → heavy 10*1 <
        // light 10*2 → heavy), light … weighted 2:1 interleave.
        let order: Vec<String> = (0..6)
            .map(|_| state.claim_next().unwrap().tenant)
            .collect();
        assert_eq!(order, ["heavy", "light", "heavy", "heavy", "light", "light"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_are_fifo_within_one_tenant() {
        let cfg = tmp_cfg("fifo");
        let dir = cfg.dir.clone();
        let (state, _) = JobdState::open(cfg).unwrap();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(state.submit("t", &format!("j{i}"), csv(), trials(5)).unwrap().0);
        }
        for want in ids {
            assert_eq!(state.claim_next().unwrap().id, want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_caps_reject_typed() {
        let cfg = tmp_cfg("caps");
        let dir = cfg.dir.clone();
        let cfg = JobdConfig { max_queued: 2, max_tenant_inflight: 2, ..cfg };
        let (state, _) = JobdState::open(cfg).unwrap();
        state.submit("a", "j0", csv(), trials(5)).unwrap();
        state.submit("a", "j1", csv(), trials(5)).unwrap();
        let r = state.submit("b", "j2", csv(), trials(5)).unwrap_err();
        assert_eq!(r.reason, reject::QUEUE_FULL);
        // Drain one so the global cap clears; tenant a is still at its
        // own inflight cap (1 queued + 1 running).
        let claimed = state.claim_next().unwrap();
        assert_eq!(claimed.tenant, "a");
        let r = state.submit("a", "j3", csv(), trials(5)).unwrap_err();
        assert_eq!(r.reason, reject::TENANT_BUSY);
        // …but tenant b is free to enter.
        assert!(state.submit("b", "j4", csv(), trials(5)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_clamps_then_exhausts() {
        let cfg = tmp_cfg("quota");
        let dir = cfg.dir.clone();
        let cfg = JobdConfig { quota_trials: 10, ..cfg };
        let (state, _) = JobdState::open(cfg).unwrap();
        let (_, clamped) = state.submit("q", "j0", csv(), trials(6)).unwrap();
        assert!(!clamped);
        // 4 trials left < 6 requested but ≥ floor → clamped admit.
        let (id1, clamped) = state.submit("q", "j1", csv(), trials(6)).unwrap();
        assert!(clamped);
        // Clamp rewrote the job's options to the granted budget.
        let j1 = {
            let core = state.core.lock().unwrap();
            core.jobs[&id1].options.clone()
        };
        assert_eq!(j1.budget_trials, Some(4));
        // 0 trials left < floor → exhausted.
        let r = state.submit("q", "j2", csv(), trials(6)).unwrap_err();
        assert_eq!(r.reason, reject::QUOTA_EXHAUSTED);
        // Other tenants are untouched.
        assert!(state.submit("other", "j3", csv(), trials(6)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_options_reject_without_consuming_anything() {
        let cfg = tmp_cfg("bad");
        let dir = cfg.dir.clone();
        let (state, _) = JobdState::open(cfg).unwrap();
        let opts = ExperimentOptions {
            optimizer: Some("no-such-optimizer".into()),
            ..ExperimentOptions::default()
        };
        let r = state.submit("t", "j", csv(), opts).unwrap_err();
        assert_eq!(r.reason, reject::BAD_REQUEST);
        let (_, tenants) = state.list(Some("t"));
        // The tenant record may not even exist; if it does, it is full.
        assert!(tenants.iter().all(|t| t.remaining_trials == JobdConfig::default().quota_trials));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_only_queued() {
        let cfg = tmp_cfg("cancel");
        let dir = cfg.dir.clone();
        let (state, _) = JobdState::open(cfg).unwrap();
        let (id0, _) = state.submit("t", "j0", csv(), trials(5)).unwrap();
        let (id1, _) = state.submit("t", "j1", csv(), trials(5)).unwrap();
        let claimed = state.claim_next().unwrap();
        assert_eq!(claimed.id, id0);
        assert!(state.cancel(id0).is_err(), "running jobs refuse");
        state.cancel(id1).unwrap();
        assert_eq!(state.job_view(id1).unwrap().state, JobState::Cancelled);
        assert!(state.cancel(id1).is_err(), "terminal jobs refuse");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_aborts_running_requeues_queued_replays_quota() {
        let cfg = tmp_cfg("recover");
        let dir = cfg.dir.clone();
        let cfg = JobdConfig { quota_trials: 20, ..cfg };
        let (id_running, id_queued);
        {
            let (state, _) = JobdState::open(cfg.clone()).unwrap();
            let (a, _) = state.submit("t", "running", csv(), trials(6)).unwrap();
            let (b, _) = state.submit("t", "queued", csv(), trials(6)).unwrap();
            id_running = a;
            id_queued = b;
            assert_eq!(state.claim_next().unwrap().id, a);
            // Drop without finishing: simulates kill -9 mid-job (the
            // journal has submitted+submitted+started).
        }
        let (state, info) = JobdState::open(cfg).unwrap();
        assert_eq!(info.aborted, vec![id_running]);
        assert_eq!(info.requeued, vec![id_queued]);
        assert_eq!(state.job_view(id_running).unwrap().state, JobState::Aborted);
        assert_eq!(state.job_view(id_queued).unwrap().state, JobState::Queued);
        // Quota replayed: 20 - 6 - 6 = 8 remaining.
        let (_, tenants) = state.list(Some("t"));
        assert_eq!(tenants[0].remaining_trials, 8);
        // The queued job is claimable after restart.
        assert_eq!(state.claim_next().unwrap().id, id_queued);
        // A second restart: the first crash's aborted job stays terminal
        // (its aborted record was journaled, not just computed), and the
        // job we just claimed-then-crashed becomes the new abort.
        drop(state);
        let (state, info) = JobdState::open(JobdConfig {
            dir: dir.clone(),
            fsync: false,
            quota_trials: 20,
            ..JobdConfig::default()
        })
        .unwrap();
        assert_eq!(info.aborted, vec![id_queued]);
        assert_eq!(state.job_view(id_running).unwrap().state, JobState::Aborted);
        assert_eq!(state.job_view(id_queued).unwrap().state, JobState::Aborted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_stops_claims() {
        let cfg = tmp_cfg("shutdown");
        let dir = cfg.dir.clone();
        let (state, _) = JobdState::open(cfg).unwrap();
        state.submit("t", "j", csv(), trials(5)).unwrap();
        state.shutdown();
        assert!(state.claim_next().is_none(), "no claims while draining");
        let r = state.submit("t", "late", csv(), trials(5)).unwrap_err();
        assert_eq!(r.reason, reject::SHUTTING_DOWN);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
