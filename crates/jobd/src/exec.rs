//! The worker pool: claims jobs from the scheduler and runs them
//! through the one-shot experiment API.
//!
//! ## Byte-identity with the CLI
//!
//! A job runs [`smartml::api::handle`] with a *fresh* knowledge base —
//! exactly what `smartml-cli run <file>` does — so a job's report is
//! byte-identical (modulo wall-clock phase timings) to the equivalent
//! one-shot run, at any pool width. No state is shared between jobs.
//!
//! ## Fault domains
//!
//! Inside a job, the engine's own per-trial fault machinery applies:
//! watchdog deadlines, the per-algorithm circuit breaker, the failures
//! ledger — all of it scoped to the job's run, because each job has its
//! own engine instance. One tenant's faulting trials trip *that job's*
//! breakers only. Around a job, `catch_unwind` converts a full-run
//! panic into a `failed` terminal state: a poisoned job never takes a
//! worker thread (or the daemon) down with it.

use crate::protocol::JobDataset;
use crate::state::{Job, JobdState};
use smartml::api::{handle, DatasetPayload, Request, Response};
use smartml::KnowledgeBase;
use smartml_obs::Counter;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

static JOBS_DONE: Counter = Counter::new("jobd.jobs.done");
static JOBS_FAILED: Counter = Counter::new("jobd.jobs.failed");

/// Spawns `n` worker threads; they exit when the state shuts down.
pub fn spawn_workers(state: &Arc<JobdState>, n: usize) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name(format!("jobd-worker-{i}"))
                .spawn(move || work_loop(&state))
                .expect("spawn jobd worker")
        })
        .collect()
}

fn work_loop(state: &Arc<JobdState>) {
    while let Some(job) = state.claim_next() {
        let outcome = run_job(&job);
        match &outcome {
            Ok(_) => JOBS_DONE.inc(),
            Err(_) => JOBS_FAILED.inc(),
        }
        if state.finish(job.id, outcome).is_err() {
            // Journal/result-file I/O failure: nothing sane to do but
            // keep serving other jobs; the job stays `running` in
            // memory and recovery will abort it after a restart.
            continue;
        }
    }
}

/// Materialises the dataset payload a job will parse. Synth specs are
/// rendered to CSV text with the same writer the CLI `synth` command
/// uses, so a synth job and a CLI run over the exported file see
/// identical bytes.
pub fn materialize(dataset: &JobDataset, name: &str) -> DatasetPayload {
    match dataset {
        JobDataset::Csv { content, target } => {
            DatasetPayload::Csv { content: content.clone(), target: target.clone() }
        }
        JobDataset::Arff { content } => DatasetPayload::Arff { content: content.clone() },
        JobDataset::Synth { spec, seed, rows } => {
            let spec = match rows {
                Some(r) => spec.clone().with_rows(*r),
                None => spec.clone(),
            };
            let data = spec.generate(name, *seed);
            DatasetPayload::Csv { content: smartml_data::io::write_csv(&data), target: None }
        }
    }
}

/// Runs one job to completion. `Ok` carries the pretty-printed report
/// JSON (the bytes that become `result-<id>.json`).
pub fn run_job(job: &Job) -> Result<String, String> {
    let payload = materialize(&job.dataset, &job.name);
    let name = job.name.clone();
    let options = job.options.clone();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
        let mut kb = KnowledgeBase::new();
        handle(&mut kb, Request::RunExperiment { name, dataset: payload, options })
    }));
    match outcome {
        Ok(Response::Experiment { report }) => serde_json::to_string_pretty(&*report)
            .map_err(|e| format!("encode report: {e}")),
        Ok(Response::Error { message }) => Err(message),
        Ok(other) => Err(format!("unexpected engine response: {other:?}")),
        Err(panic) => Err(format!("job panicked: {}", panic_message(&panic))),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml::api::ExperimentOptions;
    use smartml_data::synth::SynthSpec;

    #[test]
    fn synth_materialises_like_the_cli_export() {
        let spec = SynthSpec::Blobs { n: 40, d: 3, k: 2, spread: 0.5 };
        let ds = JobDataset::Synth { spec: spec.clone(), seed: 9, rows: None };
        let DatasetPayload::Csv { content, .. } = materialize(&ds, "blobby") else {
            panic!("synth must materialise to csv");
        };
        // The CLI synth export path: generate + write_csv.
        let direct = smartml_data::io::write_csv(&spec.generate("blobby", 9));
        assert_eq!(content, direct);
    }

    #[test]
    fn rows_override_rescales() {
        let spec = SynthSpec::Blobs { n: 40, d: 3, k: 2, spread: 0.5 };
        let ds = JobDataset::Synth { spec, seed: 9, rows: Some(100) };
        let DatasetPayload::Csv { content, .. } = materialize(&ds, "blobby") else {
            panic!("synth must materialise to csv");
        };
        assert_eq!(content.lines().count(), 101, "header + 100 rows");
    }

    #[test]
    fn run_job_produces_report_json() {
        let job = Job {
            id: 1,
            tenant: "t".into(),
            name: "tiny".into(),
            dataset: JobDataset::Synth {
                spec: SynthSpec::Blobs { n: 40, d: 3, k: 2, spread: 0.5 },
                seed: 4,
                rows: None,
            },
            options: ExperimentOptions {
                budget_trials: Some(4),
                top_n_algorithms: Some(1),
                seed: Some(7),
                n_threads: Some(1),
                ..ExperimentOptions::default()
            },
            state: crate::protocol::JobState::Running,
            clamped: false,
            cost: 4,
            error: None,
            started_at: None,
        };
        let json = run_job(&job).expect("tiny job runs");
        let report: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(report["dataset"], serde_json::Value::String("tiny".into()));
    }

    #[test]
    fn bad_dataset_fails_cleanly() {
        let job = Job {
            id: 2,
            tenant: "t".into(),
            name: "broken".into(),
            dataset: JobDataset::Csv { content: "not,a\nvalid".into(), target: None },
            options: ExperimentOptions::default(),
            state: crate::protocol::JobState::Running,
            clamped: false,
            cost: 1,
            error: None,
            started_at: None,
        };
        assert!(run_job(&job).is_err());
    }
}
