//! The jobd wire protocol: JSON lines over TCP.
//!
//! Same transport discipline as `smartmld` (one request per line, one
//! response per line, [`MAX_FRAME_BYTES`] cap), but a different verb
//! set: jobs are *submitted* and run asynchronously on the daemon's
//! worker pool, so every verb except `WATCH` answers immediately from
//! queue state. `WATCH` is the one streaming verb — after the
//! subscription acknowledgement the server keeps pushing lifecycle and
//! progress lines until the job reaches a terminal state.

use serde::{Deserialize, Serialize};
use smartml::api::ExperimentOptions;
use smartml::RunReport;
use smartml_data::synth::SynthSpec;

pub use smartml_kbd::MAX_FRAME_BYTES;

/// Dataset forms a submission can carry.
///
/// `Csv`/`Arff` mirror the one-shot API's `DatasetPayload` byte for
/// byte. `Synth` names a generator from the corpus instead of shipping
/// rows; the daemon materialises it to CSV text with the *same* writer
/// the CLI `synth` command uses, so a synth job and a CLI run over the
/// exported file parse identical datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "format", rename_all = "snake_case")]
pub enum JobDataset {
    /// CSV text; last column (or `target`) is the label.
    Csv {
        content: String,
        #[serde(default)]
        target: Option<String>,
    },
    /// ARFF text; last attribute is the label.
    Arff { content: String },
    /// Inline synthetic spec: generated server-side, chunked, O(10^5)
    /// rows capable.
    Synth {
        spec: SynthSpec,
        #[serde(default)]
        seed: u64,
        #[serde(default)]
        rows: Option<usize>,
    },
}

/// Job lifecycle states (see `DESIGN.md` § Job service for the full
/// transition diagram, including what crash recovery does to each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobState {
    /// Admitted, journaled, waiting for a worker.
    Queued,
    /// Claimed by a worker; the experiment is executing.
    Running,
    /// Finished successfully; the report is durable on disk.
    Done,
    /// The experiment itself failed (bad dataset, panicked trial domain,
    /// invalid options). The error string says why.
    Failed,
    /// Cancelled while still queued. Running jobs cannot be cancelled.
    Cancelled,
    /// The daemon died while this job was running; recovery marked it.
    Aborted,
}

impl JobState {
    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Requests a client can send.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum JobRequest {
    /// Submit an experiment. Answers `submitted` (with the assigned id)
    /// or a typed `rejected`.
    Submit {
        /// Tenant identity; quotas, fairness weight and in-flight caps
        /// are all keyed on this.
        tenant: String,
        /// Dataset name (becomes the report's dataset name).
        name: String,
        /// The dataset itself.
        dataset: JobDataset,
        /// Experiment options, identical semantics to the one-shot API.
        #[serde(default)]
        options: ExperimentOptions,
    },
    /// One job's current state.
    Status { id: u64 },
    /// A finished job's full report.
    Result { id: u64 },
    /// Cancel a *queued* job.
    Cancel { id: u64 },
    /// List jobs, optionally for one tenant.
    Jobs {
        #[serde(default)]
        tenant: Option<String>,
    },
    /// Subscribe to one job's lifecycle; streams `watch` lines until
    /// the job is terminal.
    Watch { id: u64 },
    /// Liveness probe.
    Ping,
    /// Drain and stop the daemon.
    Shutdown,
}

/// One job as reported by `status` / `jobs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobView {
    pub id: u64,
    pub tenant: String,
    pub name: String,
    pub state: JobState,
    /// True when admission clamped the requested budget to the tenant's
    /// remaining quota.
    pub clamped: bool,
    /// Present for `failed` jobs.
    #[serde(default)]
    pub error: Option<String>,
}

/// A tenant's quota balance as reported by `jobs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantView {
    pub tenant: String,
    pub remaining_trials: usize,
    pub remaining_secs: f64,
    pub queued: usize,
    pub running: usize,
}

/// What kind of line a `WATCH` subscription pushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WatchKind {
    /// First line: subscription accepted, here is the current state.
    Subscribed,
    /// The job moved to a new lifecycle state.
    Transition,
    /// Periodic heartbeat while the job runs.
    Progress,
}

/// Responses (and streamed `watch` lines).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum JobResponse {
    /// Admission succeeded.
    Submitted { id: u64, clamped: bool },
    /// Admission refused. `reason` is machine-readable and closed-set:
    /// `queue_full`, `tenant_busy`, `quota_exhausted`, `bad_request`,
    /// `shutting_down`.
    Rejected { reason: String, detail: String },
    /// `status` answer.
    Job { job: JobView },
    /// `jobs` answer.
    Jobs { jobs: Vec<JobView>, tenants: Vec<TenantView> },
    /// `result` answer for a `done` job.
    Result { id: u64, report: Box<RunReport> },
    /// `cancel` answer.
    Cancelled { id: u64 },
    /// One streamed `WATCH` line. The subscription ends when
    /// `state.is_terminal()`.
    Watch { id: u64, kind: WatchKind, state: JobState, detail: String },
    /// `ping` answer.
    Pong,
    /// `shutdown` acknowledged; the daemon stops accepting work.
    ShuttingDown,
    /// Anything else that went wrong (unknown id, malformed frame, …).
    Error { message: String },
}

/// Admission rejection reasons (the closed set `Rejected.reason` draws
/// from). Kept as constants so tests and the client match on names, not
/// retyped strings.
pub mod reject {
    pub const QUEUE_FULL: &str = "queue_full";
    pub const TENANT_BUSY: &str = "tenant_busy";
    pub const QUOTA_EXHAUSTED: &str = "quota_exhausted";
    pub const BAD_REQUEST: &str = "bad_request";
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrip() {
        let line = r#"{"op":"submit","tenant":"acme","name":"iris","dataset":{"format":"csv","content":"a,b,y\n1,2,0\n"},"options":{"budget_trials":6,"seed":7}}"#;
        let req: JobRequest = serde_json::from_str(line).expect("parses");
        match &req {
            JobRequest::Submit { tenant, name, dataset, options } => {
                assert_eq!(tenant, "acme");
                assert_eq!(name, "iris");
                assert!(matches!(dataset, JobDataset::Csv { .. }));
                assert_eq!(options.budget_trials, Some(6));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let encoded = serde_json::to_string(&req).expect("encodes");
        assert!(encoded.contains(r#""op":"submit""#));
    }

    #[test]
    fn synth_dataset_defaults() {
        let line =
            r#"{"format":"synth","spec":{"blobs":{"n":120,"d":4,"k":3,"spread":0.5}}}"#;
        let ds: JobDataset = serde_json::from_str(line).expect("parses");
        match ds {
            JobDataset::Synth { spec, seed, rows } => {
                assert_eq!(spec.rows(), 120);
                assert_eq!(seed, 0);
                assert_eq!(rows, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn watch_line_shape() {
        let resp = JobResponse::Watch {
            id: 3,
            kind: WatchKind::Transition,
            state: JobState::Done,
            detail: String::new(),
        };
        let line = serde_json::to_string(&resp).expect("encodes");
        assert!(line.contains(r#""status":"watch""#));
        assert!(line.contains(r#""kind":"transition""#));
        assert!(line.contains(r#""state":"done""#));
        let back: JobResponse = serde_json::from_str(&line).expect("parses");
        match back {
            JobResponse::Watch { state, .. } => assert!(state.is_terminal()),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for s in [JobState::Done, JobState::Failed, JobState::Cancelled, JobState::Aborted] {
            assert!(s.is_terminal());
        }
    }
}
