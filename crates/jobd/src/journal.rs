//! The job journal: a single append-only WAL recording every lifecycle
//! edge, so a `kill -9` loses at most the *work in flight*, never the
//! queue.
//!
//! Framing is shared with the KB WAL — `smartml_kbd`'s
//! [`encode_payload_frame`] / [`scan_payload_frames`] give every record
//! a length + FNV-1a checksum header and one torn-tail discipline: a
//! partial final frame (the crash landed mid-`write`) is detected and
//! truncated away on open; checksummed garbage *before* the tail is
//! corruption and refuses to open.
//!
//! What gets journaled, and when it is fsynced:
//!
//! | record | when | fsync |
//! |--------|------|-------|
//! | `submitted` | after admission, before the `submitted` response | yes — the admit promise must survive |
//! | `started` | a worker claimed the job | no — recovery treats started-without-terminal as aborted either way |
//! | `finished` | the report file is already durable | yes |
//! | `cancelled` | a queued job was cancelled | yes |
//! | `aborted` | recovery found `started` without a terminal record | yes (batched at open) |

use crate::protocol::JobDataset;
use serde::{Deserialize, Serialize};
use smartml::api::ExperimentOptions;
use smartml_kbd::{encode_payload_frame, scan_payload_frames};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside the jobd directory.
pub const JOURNAL_FILE: &str = "jobs.wal";

/// One journaled lifecycle edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JournalRecord {
    /// A job was admitted. Carries everything needed to re-run it.
    Submitted {
        id: u64,
        tenant: String,
        name: String,
        dataset: JobDataset,
        options: ExperimentOptions,
        /// True when admission clamped the budget to remaining quota;
        /// `options` already carries the clamped values.
        clamped: bool,
        /// Scheduler cost units charged to the tenant's fair share.
        cost: u64,
        /// Quota charged at admission (replayed on recovery).
        charged_trials: usize,
        charged_secs: f64,
    },
    /// A worker claimed the job.
    Started { id: u64 },
    /// The job reached `done` (`ok`) or `failed` (with `error`).
    Finished {
        id: u64,
        ok: bool,
        #[serde(default)]
        error: Option<String>,
    },
    /// A queued job was cancelled.
    Cancelled { id: u64 },
    /// Recovery found the job running at crash time.
    Aborted { id: u64 },
}

/// What [`Journal::open`] found on disk.
pub struct JournalRecovery {
    /// Every intact record, in write order.
    pub records: Vec<JournalRecord>,
    /// A torn final frame was truncated away.
    pub truncated_tail: bool,
}

/// Append handle over `jobs.wal`.
pub struct Journal {
    file: File,
    fsync: bool,
}

impl Journal {
    /// Opens (creating if missing) the journal in `dir`, replays every
    /// intact record and truncates a torn tail.
    ///
    /// Returns an error for checksummed-but-unparseable records — that
    /// is corruption *before* the tail, which truncation must not paper
    /// over.
    pub fn open(dir: &Path, fsync: bool) -> io::Result<(Journal, JournalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan_payload_frames(&bytes).map_err(|c| {
            io::Error::other(format!("{}: corrupt at byte {}: {}", path.display(), c.offset, c.detail))
        })?;
        let mut records = Vec::with_capacity(scan.payloads.len());
        for (offset, payload) in &scan.payloads {
            let record: JournalRecord = serde_json::from_str(payload).map_err(|e| {
                io::Error::other(format!(
                    "{}: checksummed frame at byte {offset} is not a job record: {e}",
                    path.display()
                ))
            })?;
            records.push(record);
        }
        let truncated_tail = scan.torn_at.is_some();
        if let Some(keep) = scan.torn_at {
            // Same discipline as the KB WAL: drop the torn tail so the
            // next append starts on a frame boundary.
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(keep)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((Journal { file, fsync }, JournalRecovery { records, truncated_tail }))
    }

    /// Appends one record; `sync` forces it to disk before returning.
    pub fn append(&mut self, record: &JournalRecord, sync: bool) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::other(format!("encode job record: {e}")))?;
        self.file.write_all(&encode_payload_frame(payload.as_bytes()))?;
        if sync && self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Path of a finished job's durable report.
pub fn result_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("result-{id}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "jobd-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn submitted(id: u64) -> JournalRecord {
        JournalRecord::Submitted {
            id,
            tenant: "t".into(),
            name: format!("job{id}"),
            dataset: JobDataset::Csv { content: "a,y\n1,0\n2,1\n".into(), target: None },
            options: ExperimentOptions::default(),
            clamped: false,
            cost: 6,
            charged_trials: 6,
            charged_secs: 0.0,
        }
    }

    #[test]
    fn roundtrip_and_replay() {
        let dir = tmpdir("roundtrip");
        {
            let (mut j, rec) = Journal::open(&dir, true).unwrap();
            assert!(rec.records.is_empty());
            j.append(&submitted(1), true).unwrap();
            j.append(&JournalRecord::Started { id: 1 }, false).unwrap();
            j.append(&JournalRecord::Finished { id: 1, ok: true, error: None }, true).unwrap();
        }
        let (_, rec) = Journal::open(&dir, true).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert!(!rec.truncated_tail);
        assert!(matches!(rec.records[2], JournalRecord::Finished { id: 1, ok: true, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let dir = tmpdir("torn");
        {
            let (mut j, _) = Journal::open(&dir, true).unwrap();
            j.append(&submitted(1), true).unwrap();
            j.append(&JournalRecord::Started { id: 1 }, true).unwrap();
        }
        // Simulate a kill -9 mid-append: chop bytes off the last frame.
        let path = journal_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (mut j, rec) = Journal::open(&dir, true).unwrap();
        assert!(rec.truncated_tail);
        assert_eq!(rec.records.len(), 1, "only the intact submitted frame survives");
        // And the journal is appendable again on a clean boundary.
        j.append(&JournalRecord::Aborted { id: 1 }, true).unwrap();
        let (_, rec) = Journal::open(&dir, true).unwrap();
        assert_eq!(rec.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksummed_garbage_refuses_to_open() {
        let dir = tmpdir("garbage");
        {
            let (mut j, _) = Journal::open(&dir, true).unwrap();
            j.append(&submitted(1), true).unwrap();
        }
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // A valid frame whose payload is not a job record: corruption,
        // not a torn tail.
        bytes.extend_from_slice(&encode_payload_frame(b"{\"kind\":\"nonsense\"}"));
        std::fs::write(&path, &bytes).unwrap();
        assert!(Journal::open(&dir, true).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
