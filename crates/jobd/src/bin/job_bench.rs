//! Job-service throughput and responsiveness benchmark.
//!
//! ```text
//! job_bench [--quick] [--out FILE] [--check FILE]
//!   --quick   fewer jobs per width (CI smoke)
//!   --out     write BENCH_jobs.json-shaped output to FILE
//!   --check   regression gate against a committed file: jobs/hour at
//!             each width within 5x of the committed number, and
//!             submit-to-first-progress latency within 5x
//! ```
//!
//! Spins an in-process [`JobServer`] at pool widths 1 and 8, submits a
//! burst of small synthetic experiments from three tenants, and
//! measures:
//!
//! - `submit_to_running_ms`: median latency from the `submit` call
//!   returning to the `WATCH` stream reporting the job running — the
//!   user-visible "my job started" delay under a full queue;
//! - `jobs_per_hour`: completed-job throughput over the burst.

use smartml::api::ExperimentOptions;
use smartml_data::synth::SynthSpec;
use smartml_jobd::{
    JobClient, JobDataset, JobServer, JobServerOptions, JobState, JobdConfig, Submitted, WatchKind,
};
use std::time::Instant;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

struct WidthResult {
    width: usize,
    jobs: usize,
    secs: f64,
    jobs_per_hour: f64,
    submit_to_running_p50_ms: u128,
    submit_to_running_p99_ms: u128,
}

fn run_width(width: usize, jobs: usize) -> WidthResult {
    let dir = std::env::temp_dir().join(format!(
        "job-bench-w{width}-{}-{}",
        std::process::id(),
        jobs
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = JobServer::bind(JobServerOptions {
        config: JobdConfig {
            dir: dir.clone(),
            workers: width,
            quota_trials: 1_000_000,
            fsync: true,
            ..JobdConfig::default()
        },
        ..JobServerOptions::default()
    })
    .expect("bind job server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let tenants = ["alpha", "beta", "gamma"];
    let spec = SynthSpec::Blobs { n: 60, d: 3, k: 2, spread: 0.5 };
    let options = ExperimentOptions {
        budget_trials: Some(4),
        top_n_algorithms: Some(1),
        seed: Some(11),
        n_threads: Some(1),
        ..ExperimentOptions::default()
    };

    let client = JobClient::connect(addr.clone());
    let started = Instant::now();
    // Submit, then immediately attach a concurrent watcher on its own
    // connection: records when the stream first reports the job past
    // `queued`, then waits for terminal.
    let mut watchers: Vec<std::thread::JoinHandle<u128>> = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let tenant = tenants[i % tenants.len()];
        let dataset = JobDataset::Synth { spec: spec.clone(), seed: i as u64, rows: None };
        let at = Instant::now();
        let id = match client
            .submit(tenant, &format!("bench-{i}"), dataset, options.clone())
            .expect("submit")
        {
            Submitted::Accepted { id, .. } => id,
            Submitted::Rejected { reason, detail } => {
                panic!("bench submission rejected: {reason}: {detail}")
            }
        };
        let addr = addr.clone();
        watchers.push(std::thread::spawn(move || {
            let watcher = JobClient::connect(addr);
            let mut running_at: Option<Instant> = None;
            let state = watcher
                .watch(id, |line| {
                    if running_at.is_none() {
                        if let smartml_jobd::JobResponse::Watch { kind, state, .. } = line {
                            let past_queued = *state != JobState::Queued
                                || matches!(kind, WatchKind::Progress);
                            if past_queued {
                                running_at = Some(Instant::now());
                            }
                        }
                    }
                })
                .expect("watch");
            assert_eq!(state, JobState::Done, "bench job {id} must finish");
            running_at.unwrap_or_else(Instant::now).duration_since(at).as_millis()
        }));
    }
    let mut latencies: Vec<u128> =
        watchers.into_iter().map(|h| h.join().expect("watcher thread")).collect();
    let secs = started.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown");
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_unstable();
    WidthResult {
        width,
        jobs,
        secs,
        jobs_per_hour: jobs as f64 / secs * 3600.0,
        submit_to_running_p50_ms: percentile(&latencies, 0.50),
        submit_to_running_p99_ms: percentile(&latencies, 0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let jobs = if quick { 6 } else { 24 };
    let results: Vec<WidthResult> =
        [1usize, 8].iter().map(|&w| run_width(w, jobs)).collect();

    let widths_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"width\": {},\n      \"jobs\": {},\n      \"secs\": {:.3},\n      \"jobs_per_hour\": {:.1},\n      \"submit_to_running_p50_ms\": {},\n      \"submit_to_running_p99_ms\": {}\n    }}",
                r.width, r.jobs, r.secs, r.jobs_per_hour,
                r.submit_to_running_p50_ms, r.submit_to_running_p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"jobs\",\n  \"command\": \"{}\",\n  \"widths\": [\n{}\n  ]\n}}\n",
        if quick { "job_bench --quick" } else { "job_bench" },
        widths_json.join(",\n")
    );
    for r in &results {
        println!(
            "width {}: {} jobs in {:.2}s = {:.0} jobs/hour, submit→running p50 {}ms p99 {}ms",
            r.width, r.jobs, r.secs, r.jobs_per_hour,
            r.submit_to_running_p50_ms, r.submit_to_running_p99_ms
        );
    }
    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write --out file");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let reference = std::fs::read_to_string(&path).expect("read --check file");
        let reference: serde_json::Value =
            serde_json::from_str(&reference).expect("parse --check file");
        let mut failed = false;
        let empty = Vec::new();
        let ref_widths = reference["widths"].as_array().unwrap_or(&empty);
        for r in &results {
            let Some(committed) = ref_widths
                .iter()
                .find(|w| w["width"].as_u64() == Some(r.width as u64))
            else {
                eprintln!("check: no committed entry for width {} — skipping", r.width);
                continue;
            };
            if let Some(committed_jph) = committed["jobs_per_hour"].as_f64() {
                if r.jobs_per_hour < committed_jph / 5.0 {
                    eprintln!(
                        "check FAILED: width {} throughput {:.0} jobs/hour is >5x below \
                         the committed {:.0}",
                        r.width, r.jobs_per_hour, committed_jph
                    );
                    failed = true;
                }
            }
            if let Some(committed_p50) = committed["submit_to_running_p50_ms"].as_u64() {
                // Floor of 100 ms keeps the gate meaningful when the
                // committed latency is near-zero.
                let bound = (committed_p50 as u128 * 5).max(100);
                if r.submit_to_running_p50_ms > bound {
                    eprintln!(
                        "check FAILED: width {} submit→running p50 {}ms is >5x above \
                         the committed {}ms",
                        r.width, r.submit_to_running_p50_ms, committed_p50
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: {} widths within bounds", results.len());
    }
}
