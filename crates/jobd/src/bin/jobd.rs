//! `jobd` — the SmartML job-service daemon and its operator CLI.
//!
//! ```text
//! jobd serve  --dir DIR [--addr HOST:PORT] [--workers N]
//!             [--max-queued N] [--max-tenant-inflight N]
//!             [--quota-trials N] [--quota-secs F]
//!             [--weight TENANT=W]... [--no-fsync] [--progress-ms N]
//! jobd submit --addr HOST:PORT --tenant T --name NAME
//!             (--file DATA.csv [--target COL] | --synth SPEC_JSON [--seed S] [--rows N])
//!             [--trials N] [--seconds F] [--options OPTIONS_JSON]
//! jobd status --addr HOST:PORT ID
//! jobd result --addr HOST:PORT ID [--render]
//! jobd cancel --addr HOST:PORT ID
//! jobd jobs   --addr HOST:PORT [--tenant T]
//! jobd watch  --addr HOST:PORT ID
//! jobd shutdown --addr HOST:PORT
//! ```
//!
//! `serve` prints `jobd: listening on ADDR` once ready (scraped by
//! scripts); `watch` relays the streamed JSON lines verbatim, one per
//! line, and exits when the job goes terminal.

use smartml::api::ExperimentOptions;
use smartml_jobd::{
    JobClient, JobDataset, JobServer, JobServerOptions, JobdConfig, Submitted,
};
use std::process::ExitCode;
use std::time::Duration;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: jobd <serve|submit|status|result|cancel|jobs|watch|shutdown> [flags]\n\
         run `jobd serve --dir DIR` to start a daemon; client verbs need --addr HOST:PORT"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(verb) = args.first().map(String::as_str) else { return usage() };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let rest = &args[1..];
    let outcome = match verb {
        "serve" => serve(rest),
        "submit" => submit(rest),
        "status" => status(rest),
        "result" => result(rest),
        "cancel" => cancel(rest),
        "jobs" => jobs(rest),
        "watch" => watch(rest),
        "shutdown" => shutdown(rest),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("jobd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let dir = flag_value(args, "--dir").ok_or("--dir DIR is required")?;
    let mut config = JobdConfig { dir: dir.into(), ..JobdConfig::default() };
    if let Some(n) = flag_value(args, "--workers") {
        config.workers = n.parse().map_err(|_| "--workers expects a number")?;
    }
    if let Some(n) = flag_value(args, "--max-queued") {
        config.max_queued = n.parse().map_err(|_| "--max-queued expects a number")?;
    }
    if let Some(n) = flag_value(args, "--max-tenant-inflight") {
        config.max_tenant_inflight =
            n.parse().map_err(|_| "--max-tenant-inflight expects a number")?;
    }
    if let Some(n) = flag_value(args, "--quota-trials") {
        config.quota_trials = n.parse().map_err(|_| "--quota-trials expects a number")?;
    }
    if let Some(n) = flag_value(args, "--quota-secs") {
        config.quota_secs = n.parse().map_err(|_| "--quota-secs expects a number")?;
    }
    if args.iter().any(|a| a == "--no-fsync") {
        config.fsync = false;
    }
    for (i, a) in args.iter().enumerate() {
        if a == "--weight" {
            let spec = args.get(i + 1).ok_or("--weight expects TENANT=W")?;
            let (tenant, w) = spec.split_once('=').ok_or("--weight expects TENANT=W")?;
            let w: u64 = w.parse().map_err(|_| "--weight expects TENANT=W with numeric W")?;
            config.weights.push((tenant.to_string(), w));
        }
    }
    let mut options = JobServerOptions {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        config,
        ..JobServerOptions::default()
    };
    if let Some(ms) = flag_value(args, "--progress-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--progress-ms expects a number")?;
        options.progress_interval = Duration::from_millis(ms.max(50));
    }
    let server = JobServer::bind(options).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let rec = server.recovery();
    println!(
        "jobd: recovered {} journal records ({} aborted, {} re-queued{})",
        rec.replayed,
        rec.aborted.len(),
        rec.requeued.len(),
        if rec.truncated_tail { ", torn tail truncated" } else { "" }
    );
    // Scraped by scripts/verify.sh and tests: keep the format stable.
    println!("jobd: listening on {addr}");
    server.run().map_err(|e| e.to_string())?;
    println!("jobd: shut down cleanly");
    Ok(())
}

fn client(args: &[String]) -> Result<JobClient, String> {
    let addr = flag_value(args, "--addr").ok_or("--addr HOST:PORT is required")?;
    Ok(JobClient::connect(addr))
}

fn id_arg(args: &[String]) -> Result<u64, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|a| a.parse().ok())
        .ok_or_else(|| "a numeric job ID is required".to_string())
}

fn parse_options(args: &[String]) -> Result<ExperimentOptions, String> {
    let mut options: ExperimentOptions = match flag_value(args, "--options") {
        Some(json) => serde_json::from_str(json).map_err(|e| format!("--options: {e}"))?,
        None => ExperimentOptions::default(),
    };
    if let Some(n) = flag_value(args, "--trials") {
        options.budget_trials = Some(n.parse().map_err(|_| "--trials expects a number")?);
    }
    if let Some(s) = flag_value(args, "--seconds") {
        options.budget_seconds = Some(s.parse().map_err(|_| "--seconds expects a number")?);
    }
    if let Some(s) = flag_value(args, "--seed") {
        options.seed = Some(s.parse().map_err(|_| "--seed expects a number")?);
    }
    Ok(options)
}

fn parse_dataset(args: &[String]) -> Result<JobDataset, String> {
    if let Some(path) = flag_value(args, "--file") {
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let target = flag_value(args, "--target").map(str::to_string);
        return Ok(if path.ends_with(".arff") {
            JobDataset::Arff { content }
        } else {
            JobDataset::Csv { content, target }
        });
    }
    if let Some(spec_json) = flag_value(args, "--synth") {
        let spec = serde_json::from_str(spec_json).map_err(|e| format!("--synth: {e}"))?;
        let seed = match flag_value(args, "--seed") {
            Some(s) => s.parse().map_err(|_| "--seed expects a number")?,
            None => 0,
        };
        let rows = match flag_value(args, "--rows") {
            Some(r) => Some(r.parse().map_err(|_| "--rows expects a number")?),
            None => None,
        };
        return Ok(JobDataset::Synth { spec, seed, rows });
    }
    Err("one of --file DATA or --synth SPEC_JSON is required".to_string())
}

fn submit(args: &[String]) -> Result<(), String> {
    let client = client(args)?;
    let tenant = flag_value(args, "--tenant").ok_or("--tenant is required")?;
    let name = flag_value(args, "--name").ok_or("--name is required")?;
    let dataset = parse_dataset(args)?;
    let options = parse_options(args)?;
    match client.submit(tenant, name, dataset, options)? {
        Submitted::Accepted { id, clamped } => {
            // Scraped by scripts: keep the format stable.
            println!("jobd: submitted job {id}{}", if clamped { " (budget clamped)" } else { "" });
            Ok(())
        }
        Submitted::Rejected { reason, detail } => Err(format!("rejected: {reason}: {detail}")),
    }
}

fn status(args: &[String]) -> Result<(), String> {
    let job = client(args)?.status(id_arg(args)?)?;
    println!("{}", serde_json::to_string(&job).map_err(|e| e.to_string())?);
    Ok(())
}

fn result(args: &[String]) -> Result<(), String> {
    let report = client(args)?.result(id_arg(args)?)?;
    if args.iter().any(|a| a == "--render") {
        println!("{}", report.render());
    } else {
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn cancel(args: &[String]) -> Result<(), String> {
    let id = id_arg(args)?;
    client(args)?.cancel(id)?;
    println!("jobd: cancelled job {id}");
    Ok(())
}

fn jobs(args: &[String]) -> Result<(), String> {
    let (jobs, tenants) = client(args)?.jobs(flag_value(args, "--tenant"))?;
    for t in &tenants {
        println!(
            "tenant {}: {} queued, {} running, {} trials / {:.2}s quota left",
            t.tenant, t.queued, t.running, t.remaining_trials, t.remaining_secs
        );
    }
    for j in &jobs {
        println!("{}", serde_json::to_string(j).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn watch(args: &[String]) -> Result<(), String> {
    let state = client(args)?.watch(id_arg(args)?, |line| {
        if let Ok(json) = serde_json::to_string(line) {
            println!("{json}");
        }
    })?;
    println!("jobd: job finished {state:?}");
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), String> {
    client(args)?.shutdown()?;
    println!("jobd: shutdown requested");
    Ok(())
}
