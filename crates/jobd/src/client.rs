//! A blocking JSON-lines client for the job service.
//!
//! One persistent connection per client; requests are strictly
//! request/response except [`JobClient::watch`], which keeps reading
//! streamed `watch` lines off the same connection until the job goes
//! terminal (the server guarantees a terminal transition line ends
//! every subscription).

use crate::protocol::{JobDataset, JobRequest, JobResponse, JobState, JobView, TenantView};
use smartml::api::ExperimentOptions;
use smartml::RunReport;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Submission outcome: accepted with an id, or a typed rejection.
#[derive(Debug, Clone)]
pub enum Submitted {
    Accepted { id: u64, clamped: bool },
    Rejected { reason: String, detail: String },
}

/// Blocking client; `Sync` (one request at a time through the
/// connection mutex).
pub struct JobClient {
    addr: String,
    conn: Mutex<Option<BufReader<TcpStream>>>,
    read_timeout: Duration,
}

impl JobClient {
    pub fn connect(addr: impl Into<String>) -> JobClient {
        JobClient {
            addr: addr.into(),
            conn: Mutex::new(None),
            read_timeout: Duration::from_secs(120),
        }
    }

    fn with_conn<T>(
        &self,
        f: impl FnOnce(&mut BufReader<TcpStream>) -> Result<T, String>,
    ) -> Result<T, String> {
        let mut slot = self.conn.lock().expect("jobd client poisoned");
        if slot.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(self.read_timeout))
                .map_err(|e| format!("set timeout: {e}"))?;
            let _ = stream.set_nodelay(true);
            *slot = Some(BufReader::new(stream));
        }
        let result = f(slot.as_mut().expect("just connected"));
        if result.is_err() {
            // Connection state is unknown after an error; reconnect next
            // time.
            *slot = None;
        }
        result
    }

    fn roundtrip(&self, request: &JobRequest) -> Result<JobResponse, String> {
        let line = serde_json::to_string(request).map_err(|e| format!("encode: {e}"))?;
        self.with_conn(|conn| {
            send_line(conn, &line)?;
            read_response(conn)
        })
    }

    pub fn ping(&self) -> Result<(), String> {
        match self.roundtrip(&JobRequest::Ping)? {
            JobResponse::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    pub fn submit(
        &self,
        tenant: &str,
        name: &str,
        dataset: JobDataset,
        options: ExperimentOptions,
    ) -> Result<Submitted, String> {
        let request = JobRequest::Submit {
            tenant: tenant.to_string(),
            name: name.to_string(),
            dataset,
            options,
        };
        match self.roundtrip(&request)? {
            JobResponse::Submitted { id, clamped } => Ok(Submitted::Accepted { id, clamped }),
            JobResponse::Rejected { reason, detail } => Ok(Submitted::Rejected { reason, detail }),
            other => Err(unexpected("submitted/rejected", &other)),
        }
    }

    pub fn status(&self, id: u64) -> Result<JobView, String> {
        match self.roundtrip(&JobRequest::Status { id })? {
            JobResponse::Job { job } => Ok(job),
            JobResponse::Error { message } => Err(message),
            other => Err(unexpected("job", &other)),
        }
    }

    pub fn result(&self, id: u64) -> Result<RunReport, String> {
        match self.roundtrip(&JobRequest::Result { id })? {
            JobResponse::Result { report, .. } => Ok(*report),
            JobResponse::Error { message } => Err(message),
            other => Err(unexpected("result", &other)),
        }
    }

    pub fn cancel(&self, id: u64) -> Result<(), String> {
        match self.roundtrip(&JobRequest::Cancel { id })? {
            JobResponse::Cancelled { .. } => Ok(()),
            JobResponse::Error { message } => Err(message),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    pub fn jobs(&self, tenant: Option<&str>) -> Result<(Vec<JobView>, Vec<TenantView>), String> {
        let request = JobRequest::Jobs { tenant: tenant.map(str::to_string) };
        match self.roundtrip(&request)? {
            JobResponse::Jobs { jobs, tenants } => Ok((jobs, tenants)),
            JobResponse::Error { message } => Err(message),
            other => Err(unexpected("jobs", &other)),
        }
    }

    /// Subscribes to `id` and blocks until the job is terminal, feeding
    /// every streamed line (subscription ack, transitions, progress
    /// heartbeats) to `on_line`. Returns the terminal state.
    pub fn watch(
        &self,
        id: u64,
        mut on_line: impl FnMut(&JobResponse),
    ) -> Result<JobState, String> {
        let line = serde_json::to_string(&JobRequest::Watch { id })
            .map_err(|e| format!("encode: {e}"))?;
        self.with_conn(|conn| {
            send_line(conn, &line)?;
            loop {
                let response = read_response(conn)?;
                match &response {
                    JobResponse::Watch { state, .. } => {
                        let state = *state;
                        on_line(&response);
                        if state.is_terminal() {
                            return Ok(state);
                        }
                    }
                    JobResponse::Error { message } => return Err(message.clone()),
                    other => return Err(unexpected("watch", other)),
                }
            }
        })
    }

    /// Convenience: watch until terminal, discarding the stream.
    pub fn wait(&self, id: u64) -> Result<JobState, String> {
        self.watch(id, |_| {})
    }

    pub fn shutdown(&self) -> Result<(), String> {
        match self.roundtrip(&JobRequest::Shutdown)? {
            JobResponse::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn send_line(conn: &mut BufReader<TcpStream>, line: &str) -> Result<(), String> {
    let stream = conn.get_mut();
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))
}

fn read_response(conn: &mut BufReader<TcpStream>) -> Result<JobResponse, String> {
    let mut line = String::new();
    let n = conn.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".to_string());
    }
    serde_json::from_str(line.trim_end()).map_err(|e| format!("bad response: {e} in {line:?}"))
}

fn unexpected(wanted: &str, got: &JobResponse) -> String {
    format!("expected {wanted}, got {got:?}")
}
