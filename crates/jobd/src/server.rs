//! The jobd network front end: one epoll event loop on `smartml-netio`.
//!
//! The loop owns the listener, every client connection, a [`Waker`] the
//! worker pool pokes when a job changes state, and a [`TimerWheel`]
//! driving `WATCH` progress heartbeats. Workers never touch sockets;
//! they push [`JobEvent`]s into the state's outbox and wake the loop,
//! which fans each event out to the connections watching that job. One
//! loop is plenty: requests are queue bookkeeping (the heavy lifting
//! happens on worker threads), so the loop's job is demultiplexing, not
//! compute.

use crate::exec;
use crate::protocol::{
    JobDataset, JobRequest, JobResponse, JobState, WatchKind, MAX_FRAME_BYTES,
};
use crate::state::{JobdConfig, JobdState, RecoveryInfo};
use smartml::api::ExperimentOptions;
use smartml_netio::{Events, Interest, Poller, TimerWheel, Token, Waker};
use smartml_obs::Counter;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const WAKER_TOKEN: Token = Token(0);
const LISTENER_TOKEN: Token = Token(1);
/// The recurring progress-heartbeat timer.
const TICK_TOKEN: Token = Token(2);
/// Connection tokens start here.
const FIRST_CONN_TOKEN: u64 = 8;

const READ_CHUNK: usize = 64 * 1024;
/// Stop reading a connection whose peer won't drain responses.
const HIGH_WATER: usize = 256 * 1024;

static REQ_TOTAL: Counter = Counter::new("jobd.req.total");
static REQ_REJECTED: Counter = Counter::new("jobd.req.rejected");
static WATCH_LINES: Counter = Counter::new("jobd.watch.lines");

/// Server configuration.
#[derive(Debug, Clone)]
pub struct JobServerOptions {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Queue/quota/worker configuration.
    pub config: JobdConfig,
    /// `WATCH` progress-heartbeat interval.
    pub progress_interval: Duration,
}

impl Default for JobServerOptions {
    fn default() -> JobServerOptions {
        JobServerOptions {
            addr: "127.0.0.1:0".into(),
            config: JobdConfig::default(),
            progress_interval: Duration::from_millis(500),
        }
    }
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: String,
    wpos: usize,
    interest: Interest,
    /// Job id this connection's `WATCH` subscription follows.
    watching: Option<u64>,
    close_after_flush: bool,
}

impl Conn {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// The bound-but-not-yet-running server.
pub struct JobServer {
    listener: TcpListener,
    state: Arc<JobdState>,
    recovery: RecoveryInfo,
    workers: Vec<JoinHandle<()>>,
    progress_interval: Duration,
}

impl JobServer {
    /// Opens (and recovers) the journal, starts the worker pool, binds
    /// the listener.
    pub fn bind(options: JobServerOptions) -> io::Result<JobServer> {
        let workers_n = options.config.workers;
        let (state, recovery) = JobdState::open(options.config)?;
        let state = Arc::new(state);
        let workers = exec::spawn_workers(&state, workers_n);
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        Ok(JobServer {
            listener,
            state,
            recovery,
            workers,
            progress_interval: options.progress_interval,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    pub fn state(&self) -> Arc<JobdState> {
        Arc::clone(&self.state)
    }

    /// Runs the event loop until a `shutdown` request lands, then joins
    /// the worker pool (workers finish their in-flight jobs first).
    pub fn run(self) -> io::Result<()> {
        let JobServer { listener, state, recovery: _, workers, progress_interval } = self;
        let poller = Poller::new()?;
        poller.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN)?);
        state.set_notifier(Arc::clone(&waker));
        let mut timers = TimerWheel::new(Duration::from_millis(50), 128);
        timers.schedule(Instant::now() + progress_interval, TICK_TOKEN);
        let mut events = Events::with_capacity(128);
        let mut fired: Vec<Token> = Vec::new();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut scratch = vec![0u8; READ_CHUNK];

        loop {
            let timeout = timers
                .next_deadline()
                .map(|dl| dl.saturating_duration_since(Instant::now()));
            if poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for ev in events.iter().collect::<Vec<_>>() {
                if ev.token == WAKER_TOKEN {
                    let _ = waker.drain();
                } else if ev.token == LISTENER_TOKEN {
                    accept_all(&listener, &poller, &mut conns, &mut next_token);
                } else {
                    handle_conn_event(
                        &state,
                        &poller,
                        &mut conns,
                        ev.token,
                        ev.readable,
                        ev.writable,
                        ev.closed,
                        &mut scratch,
                    );
                }
            }

            // Lifecycle edges from the worker pool → watchers.
            deliver_events(&state, &poller, &mut conns);

            // Progress heartbeats.
            fired.clear();
            timers.expire(Instant::now(), &mut fired);
            if fired.iter().any(|&t| t == TICK_TOKEN) {
                deliver_progress(&state, &poller, &mut conns);
                timers.schedule(Instant::now() + progress_interval, TICK_TOKEN);
            }

            if state.is_shutting_down() {
                // Best-effort final flush so the shutting_down line (and
                // any queued watch lines) reach their peers.
                for conn in conns.values_mut() {
                    let _ = flush(conn);
                }
                break;
            }
        }
        drop(conns);
        state.shutdown();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = Token(*next_token);
                *next_token += 1;
                if poller.register(&stream, token, Interest::READABLE).is_err() {
                    continue;
                }
                conns.insert(
                    token.0,
                    Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: String::new(),
                        wpos: 0,
                        interest: Interest::READABLE,
                        watching: None,
                        close_after_flush: false,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_conn_event(
    state: &Arc<JobdState>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
    scratch: &mut [u8],
) {
    let Some(conn) = conns.get_mut(&token.0) else { return };
    let mut dead = false;
    if readable && !conn.close_after_flush {
        dead = read_and_dispatch(state, conn, scratch);
    }
    if writable && !dead {
        dead = flush(conn).is_err();
    }
    if !dead && closed {
        conn.close_after_flush = true;
        let _ = flush(conn);
        dead = true;
    }
    if dead || (conn.close_after_flush && conn.pending() == 0) {
        teardown(poller, conns, token.0);
        return;
    }
    update_interest(poller, conn, token);
}

/// Drains the socket, dispatches every complete line. Returns true when
/// the connection is dead.
fn read_and_dispatch(state: &Arc<JobdState>, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                dispatch_lines(state, conn);
                conn.close_after_flush = true;
                return flush(conn).is_err();
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                dispatch_lines(state, conn);
                if conn.close_after_flush || conn.pending() >= HIGH_WATER {
                    return flush(conn).is_err();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return flush(conn).is_err();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

fn dispatch_lines(state: &Arc<JobdState>, conn: &mut Conn) {
    let mut consumed = 0usize;
    let rbuf = std::mem::take(&mut conn.rbuf);
    loop {
        let Some(rel) = rbuf[consumed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let end = consumed + rel;
        let frame = &rbuf[consumed..end];
        consumed = end + 1;
        if frame.len() > MAX_FRAME_BYTES {
            push_line(
                conn,
                &JobResponse::Error {
                    message: format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                },
            );
            conn.close_after_flush = true;
            break;
        }
        let line = String::from_utf8_lossy(frame);
        if line.trim().is_empty() {
            continue;
        }
        REQ_TOTAL.inc();
        handle_request(state, conn, &line);
        if conn.close_after_flush {
            break;
        }
    }
    let mut rbuf = rbuf;
    if consumed > 0 {
        rbuf.drain(..consumed);
    }
    if rbuf.len() > MAX_FRAME_BYTES {
        push_line(
            conn,
            &JobResponse::Error { message: format!("frame exceeds {MAX_FRAME_BYTES} bytes") },
        );
        conn.close_after_flush = true;
        rbuf.clear();
    }
    conn.rbuf = rbuf;
}

fn handle_request(state: &Arc<JobdState>, conn: &mut Conn, line: &str) {
    let request: JobRequest = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            push_line(conn, &JobResponse::Error { message: format!("bad request: {e}") });
            return;
        }
    };
    let response = match request {
        JobRequest::Submit { tenant, name, dataset, options } => {
            submit_response(state, &tenant, &name, dataset, options)
        }
        JobRequest::Status { id } => match state.job_view(id) {
            Some(job) => JobResponse::Job { job },
            None => JobResponse::Error { message: format!("no such job: {id}") },
        },
        JobRequest::Result { id } => match state.result_json(id) {
            Ok(json) => match serde_json::from_str(&json) {
                Ok(report) => JobResponse::Result { id, report: Box::new(report) },
                Err(e) => JobResponse::Error { message: format!("corrupt result file: {e}") },
            },
            Err(message) => JobResponse::Error { message },
        },
        JobRequest::Cancel { id } => match state.cancel(id) {
            Ok(()) => JobResponse::Cancelled { id },
            Err(message) => JobResponse::Error { message },
        },
        JobRequest::Jobs { tenant } => {
            let (jobs, tenants) = state.list(tenant.as_deref());
            JobResponse::Jobs { jobs, tenants }
        }
        JobRequest::Watch { id } => match state.job_view(id) {
            Some(job) => {
                // Subscribe; terminal jobs complete the subscription in
                // the same breath (the client stops on is_terminal).
                conn.watching = (!job.state.is_terminal()).then_some(id);
                JobResponse::Watch {
                    id,
                    kind: WatchKind::Subscribed,
                    state: job.state,
                    detail: String::new(),
                }
            }
            None => JobResponse::Error { message: format!("no such job: {id}") },
        },
        JobRequest::Ping => JobResponse::Pong,
        JobRequest::Shutdown => {
            state.shutdown();
            JobResponse::ShuttingDown
        }
    };
    if matches!(response, JobResponse::Rejected { .. }) {
        REQ_REJECTED.inc();
    }
    push_line(conn, &response);
}

fn submit_response(
    state: &Arc<JobdState>,
    tenant: &str,
    name: &str,
    dataset: JobDataset,
    options: ExperimentOptions,
) -> JobResponse {
    match state.submit(tenant, name, dataset, options) {
        Ok((id, clamped)) => JobResponse::Submitted { id, clamped },
        Err(r) => JobResponse::Rejected { reason: r.reason.to_string(), detail: r.detail },
    }
}

/// Fans drained job events out to their watchers.
fn deliver_events(state: &Arc<JobdState>, poller: &Poller, conns: &mut HashMap<u64, Conn>) {
    let events = state.drain_events();
    if events.is_empty() {
        return;
    }
    let mut dead: Vec<u64> = Vec::new();
    for (&token, conn) in conns.iter_mut() {
        let Some(watched) = conn.watching else { continue };
        for ev in events.iter().filter(|e| e.id == watched) {
            WATCH_LINES.inc();
            push_line(
                conn,
                &JobResponse::Watch {
                    id: ev.id,
                    kind: WatchKind::Transition,
                    state: ev.state,
                    detail: ev.detail.clone(),
                },
            );
            if ev.state.is_terminal() {
                conn.watching = None;
            }
        }
        if flush(conn).is_err() {
            dead.push(token);
        } else {
            update_interest(poller, conn, Token(token));
        }
    }
    for token in dead {
        teardown(poller, conns, token);
    }
}

/// Heartbeats for running watched jobs.
fn deliver_progress(state: &Arc<JobdState>, poller: &Poller, conns: &mut HashMap<u64, Conn>) {
    if conns.values().all(|c| c.watching.is_none()) {
        return;
    }
    let running = state.running_snapshot();
    if running.is_empty() {
        return;
    }
    let mut dead: Vec<u64> = Vec::new();
    for (&token, conn) in conns.iter_mut() {
        let Some(watched) = conn.watching else { continue };
        let Some(&(id, elapsed_ms)) = running.iter().find(|&&(id, _)| id == watched) else {
            continue;
        };
        WATCH_LINES.inc();
        push_line(
            conn,
            &JobResponse::Watch {
                id,
                kind: WatchKind::Progress,
                state: JobState::Running,
                detail: format!("elapsed_ms={elapsed_ms}"),
            },
        );
        if flush(conn).is_err() {
            dead.push(token);
        } else {
            update_interest(poller, conn, Token(token));
        }
    }
    for token in dead {
        teardown(poller, conns, token);
    }
}

fn push_line(conn: &mut Conn, response: &JobResponse) {
    match serde_json::to_string(response) {
        Ok(json) => {
            conn.wbuf.push_str(&json);
            conn.wbuf.push('\n');
        }
        Err(_) => {
            conn.wbuf.push_str(r#"{"status":"error","message":"encode failed"}"#);
            conn.wbuf.push('\n');
        }
    }
    let _ = flush(conn);
}

fn update_interest(poller: &Poller, conn: &mut Conn, token: Token) {
    let desired = Interest {
        readable: !conn.close_after_flush && conn.pending() < HIGH_WATER,
        writable: conn.pending() > 0,
    };
    if desired != conn.interest && poller.reregister(&conn.stream, token, desired).is_ok() {
        conn.interest = desired;
    }
}

fn teardown(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.deregister(&conn.stream);
    }
}

fn flush(conn: &mut Conn) -> Result<(), ()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf.as_bytes()[conn.wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    Ok(())
}
