//! `smartml-jobd`: the multi-tenant AutoML job service.
//!
//! The paper presents SmartML as a hosted web service: many users
//! submit datasets, the framework runs selection + tuning for each and
//! streams results back. The one-shot API (`smartml::api`) answers a
//! single request synchronously; this crate is the *resident* tier that
//! makes the hosted story real:
//!
//! | concern | mechanism |
//! |---------|-----------|
//! | admission | queue-depth and per-tenant in-flight caps with typed `rejected` responses |
//! | quotas | per-tenant trial/second budgets via `smartml::charge_quota` — full grant, clamped grant, or `quota_exhausted` |
//! | fairness | deterministic weighted-fair scheduling across tenants (integer virtual time), strict FIFO within a tenant |
//! | durability | every lifecycle edge in a checksummed WAL (`jobs.wal`, same frame format as the KB WAL); `kill -9` recovery aborts running jobs, re-queues queued ones, replays quota charges |
//! | isolation | each job runs a fresh engine: per-job breakers, watchdogs and failure ledgers; a panicking job fails alone |
//! | streaming | `WATCH` pushes lifecycle transitions and progress heartbeats over the same JSON-lines connection |
//!
//! Results are byte-identical to the equivalent one-shot CLI run
//! (modulo wall-clock phase timings) at any worker-pool width, because
//! jobs share nothing: same entry point, same fresh knowledge base,
//! same seeded determinism.
//!
//! ```no_run
//! use smartml_jobd::{JobClient, JobDataset, JobServer, JobServerOptions, Submitted};
//!
//! let server = JobServer::bind(JobServerOptions::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let client = JobClient::connect(addr.to_string());
//! let dataset = JobDataset::Csv { content: "a,y\n1,0\n2,1\n".into(), target: None };
//! match client.submit("acme", "tiny", dataset, Default::default()).unwrap() {
//!     Submitted::Accepted { id, .. } => { client.wait(id).unwrap(); }
//!     Submitted::Rejected { reason, .. } => eprintln!("rejected: {reason}"),
//! }
//! ```

mod client;
mod exec;
mod journal;
mod protocol;
mod server;
mod state;

pub use client::{JobClient, Submitted};
pub use exec::{materialize, run_job, spawn_workers};
pub use journal::{result_path, Journal, JournalRecord, JournalRecovery, JOURNAL_FILE};
pub use protocol::{
    reject, JobDataset, JobRequest, JobResponse, JobState, JobView, TenantView, WatchKind,
    MAX_FRAME_BYTES,
};
pub use server::{JobServer, JobServerOptions};
pub use state::{Job, JobEvent, JobdConfig, JobdState, RecoveryInfo, Rejection};
