//! Property-based tests for the linear algebra substrate.

use proptest::prelude::*;
use smartml_linalg::{cholesky, eigh, solve, vecops, Matrix};

/// Strategy: square matrix of the given size with bounded entries.
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a symmetric positive definite matrix built as AᵀA + εI.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |a| {
        let ata = a.transpose().matmul(&a);
        ata.add(&Matrix::identity(n).scale(0.5))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in square_matrix(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in square_matrix(3)) {
        let i = Matrix::identity(3);
        prop_assert!(m.matmul(&i).max_abs_diff(&m) < 1e-12);
        prop_assert!(i.matmul(&m).max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn solve_then_multiply_recovers_rhs(
        a in spd_matrix(4),
        b in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let x = solve(&a, &b).expect("SPD is nonsingular");
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(a in spd_matrix(4)) {
        let l = cholesky(&a).expect("SPD must factor");
        let recon = l.matmul(&l.transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn eigh_reconstructs_symmetric(m in square_matrix(4)) {
        // Symmetrise to get a valid input.
        let s = m.add(&m.transpose()).scale(0.5);
        let (vals, vecs) = eigh(&s);
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 { d[(i, i)] = vals[i]; }
        let recon = vecs.matmul(&d).matmul(&vecs.transpose());
        prop_assert!(recon.max_abs_diff(&s) < 1e-7);
        // Eigenvalues are sorted descending.
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn eigh_vectors_orthonormal(m in square_matrix(5)) {
        let s = m.add(&m.transpose()).scale(0.5);
        let (_, vecs) = eigh(&s);
        let vtv = vecs.transpose().matmul(&vecs);
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(5)) < 1e-7);
    }

    #[test]
    fn variance_nonnegative(xs in prop::collection::vec(-1e6..1e6f64, 0..200)) {
        prop_assert!(vecops::variance(&xs) >= 0.0);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in prop::collection::vec(-100.0..100.0f64, 6),
        b in prop::collection::vec(-100.0..100.0f64, 6),
        c in prop::collection::vec(-100.0..100.0f64, 6),
    ) {
        let ab = vecops::euclidean_distance(&a, &b);
        let bc = vecops::euclidean_distance(&b, &c);
        let ac = vecops::euclidean_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn softmax_is_distribution(mut xs in prop::collection::vec(-50.0..50.0f64, 1..10)) {
        vecops::softmax_inplace(&mut xs);
        let total: f64 = xs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(xs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn entropy_bounded_by_log_support(counts in prop::collection::vec(0usize..1000, 1..12)) {
        let h = vecops::entropy_from_counts(&counts);
        let support = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (support as f64).ln() + 1e-9);
    }
}
