//! Equivalence proofs for the vectorized kernel layer (DESIGN.md
//! § Compute layer):
//!
//! - **Bit-identity** for every order-preserving fast path (blocked matmul,
//!   covariance, the elementwise AXPY family) against its retained scalar
//!   oracle, via `to_bits` comparison under proptest.
//! - **Bounded tolerance** for the lane-reassociated reductions (dot, sum,
//!   distance, Pearson sums) against the serial-order oracles, and for the
//!   opt-in f32 kernels against their f64 counterparts within the
//!   documented `n · M² · F32_EPS_SCALE` envelope.
//! - **Codegen invariance**: hard-coded output bit patterns that must
//!   reproduce under any `-C target-cpu` (verify.sh runs this suite twice,
//!   baseline and `target-cpu=native`).

use proptest::prelude::*;
use smartml_linalg::{covariance_matrix, kernels, stats_oracle, LinalgError, Matrix};

const MAX_ABS: f64 = 10.0;

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-MAX_ABS..MAX_ABS, n..=n),
            prop::collection::vec(-MAX_ABS..MAX_ABS, n..=n),
        )
    })
}

fn matrix(rows: std::ops::RangeInclusive<usize>, cols: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-MAX_ABS..MAX_ABS, r * c..=r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Plants exact zeros so the matmul zero-skip path is exercised.
fn matrix_with_zeros(rows: std::ops::RangeInclusive<usize>, cols: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Matrix> {
    matrix(rows, cols).prop_map(|mut m| {
        let len = m.as_slice().len();
        for i in (0..len).step_by(3) {
            m.as_mut_slice()[i] = 0.0;
        }
        m
    })
}

fn reduction_tol(reference: f64) -> f64 {
    1e-10 * (1.0 + reference.abs())
}

proptest! {
    // Reductions: lane-reassociated fast path vs serial-order oracle,
    // within a tolerance that only covers FP reassociation.
    #[test]
    fn dot_close_to_serial_oracle((a, b) in vec_pair(200)) {
        let slow = kernels::scalar::dot(&a, &b);
        prop_assert!((kernels::dot(&a, &b) - slow).abs() <= reduction_tol(slow));
    }

    #[test]
    fn squared_distance_close_to_serial_oracle((a, b) in vec_pair(200)) {
        let slow = kernels::scalar::squared_distance(&a, &b);
        prop_assert!((kernels::squared_distance(&a, &b) - slow).abs() <= reduction_tol(slow));
    }

    #[test]
    fn sum_and_sq_dev_close_to_serial_oracle((a, _b) in vec_pair(200)) {
        let slow = kernels::scalar::sum(&a);
        prop_assert!((kernels::sum(&a) - slow).abs() <= reduction_tol(slow));
        let m = if a.is_empty() { 0.0 } else { slow / a.len() as f64 };
        let slow_dev = kernels::scalar::sum_sq_dev(&a, m);
        prop_assert!((kernels::sum_sq_dev(&a, m) - slow_dev).abs() <= reduction_tol(slow_dev));
    }

    #[test]
    fn pearson_sums_close_to_serial_oracle((a, b) in vec_pair(200)) {
        let n = a.len().max(1) as f64;
        let ma = kernels::sum(&a) / n;
        let mb = kernels::sum(&b) / n;
        let (fab, faa, fbb) = kernels::pearson_sums(&a, &b, ma, mb);
        let (sab, saa, sbb) = kernels::scalar::pearson_sums(&a, &b, ma, mb);
        prop_assert!((fab - sab).abs() <= reduction_tol(sab));
        prop_assert!((faa - saa).abs() <= reduction_tol(saa));
        prop_assert!((fbb - sbb).abs() <= reduction_tol(sbb));
    }

    // The scalar-kernels knob must restore the serial numerics exactly.
    #[test]
    fn scalar_knob_restores_serial_bits((a, b) in vec_pair(100)) {
        kernels::set_scalar_kernels(true);
        let knob = kernels::dot(&a, &b);
        kernels::set_scalar_kernels(false);
        prop_assert_eq!(knob.to_bits(), kernels::scalar::dot(&a, &b).to_bits());
    }

    // Elementwise family: bit-identical to the scalar statements it fuses.
    #[test]
    fn axpy_family_bit_identical((x, y0) in vec_pair(200)) {
        let mut fast = y0.clone();
        kernels::axpy(&mut fast, 1.75, &x);
        let mut slow = y0.clone();
        for (yv, &xv) in slow.iter_mut().zip(&x) { *yv += 1.75 * xv; }
        prop_assert_eq!(&fast, &slow);

        let mut fast = y0.clone();
        kernels::add_assign(&mut fast, &x);
        let mut slow = y0.clone();
        for (yv, &xv) in slow.iter_mut().zip(&x) { *yv += xv; }
        prop_assert_eq!(&fast, &slow);

        let mut fast = y0.clone();
        kernels::sub_assign(&mut fast, &x);
        let mut slow = y0;
        for (yv, &xv) in slow.iter_mut().zip(&x) { *yv -= xv; }
        prop_assert_eq!(&fast, &slow);
    }

    #[test]
    fn momentum_update_bit_identical((g, w0) in vec_pair(150)) {
        let v0: Vec<f64> = g.iter().map(|&x| x * 0.5 - 0.1).collect();
        let (mut w, mut v) = (w0.clone(), v0.clone());
        kernels::momentum_update(&mut w, &mut v, &g, 0.01, 1e-4, 0.2, 0.9);
        let (mut ws, mut vs) = (w0, v0);
        for i in 0..g.len() {
            let grad = g[i] * 0.01 + 1e-4 * ws[i];
            vs[i] = 0.9 * vs[i] - 0.2 * grad;
            ws[i] += vs[i];
        }
        prop_assert_eq!(&w, &ws);
        prop_assert_eq!(&v, &vs);
    }

    // f32 kernels: inside the documented error envelope, never on by default.
    #[test]
    fn f32_kernels_within_documented_epsilon((a, b) in vec_pair(300)) {
        prop_assert!(!kernels::f32_kernels_enabled(), "f32 knob must default off");
        let (af, bf) = (kernels::to_f32(&a), kernels::to_f32(&b));
        let bound = a.len() as f64 * MAX_ABS * MAX_ABS * kernels::F32_EPS_SCALE;
        let d = (kernels::dot_f32(&af, &bf) - kernels::dot(&a, &b)).abs();
        prop_assert!(d <= bound, "dot err {d} > {bound}");
        let d = (kernels::squared_distance_f32(&af, &bf) - kernels::squared_distance(&a, &b)).abs();
        prop_assert!(d <= bound, "sqdist err {d} > {bound}");
    }

    // Blocked matmul is bit-identical to the retained serial product (the
    // scalar knob selects it, so compare knob-on vs knob-off directly).
    #[test]
    fn matmul_bit_identical_to_serial_oracle(
        a in matrix_with_zeros(1..=13, 1..=9),
        b in matrix(1..=9, 1..=11),
    ) {
        let b = Matrix::from_vec(a.cols(), b.cols(), {
            let need = a.cols() * b.cols();
            let mut d: Vec<f64> = b.as_slice().iter().copied().cycle().take(need).collect();
            d.truncate(need);
            d
        });
        let fast = a.matmul(&b);
        kernels::set_scalar_kernels(true);
        let slow = a.matmul(&b);
        kernels::set_scalar_kernels(false);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // Covariance: AXPY-tiled upper triangle vs the legacy nested loop.
    #[test]
    fn covariance_bit_identical_to_oracle(x in matrix(2..=25, 1..=10)) {
        let fast = covariance_matrix(&x);
        let slow = stats_oracle::covariance_matrix(&x);
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matvec_matches_dot_kernel(a in matrix(1..=12, 1..=24)) {
        let v: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let out = a.matvec(&v);
        for (r, o) in out.iter().enumerate() {
            prop_assert_eq!(o.to_bits(), kernels::dot(a.row(r), &v).to_bits());
        }
    }
}

/// Satellite regression: a shape mismatch surfaces as `Err`, not a panic,
/// through the `try_matmul` pipeline entry point.
#[test]
fn try_matmul_shape_mismatch_is_an_error() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 2);
    match a.try_matmul(&b) {
        Err(LinalgError::ShapeMismatch { lhs: (3, 4), rhs: (5, 2) }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    let msg = LinalgError::ShapeMismatch { lhs: (3, 4), rhs: (5, 2) }.to_string();
    assert!(msg.contains("3x4") && msg.contains("5x2"), "{msg}");
}

/// Cross-codegen determinism: these exact output bits must reproduce under
/// any codegen flags (Rust licenses neither FP reassociation nor
/// contraction, and the kernels' lane order is fixed by input length).
/// verify.sh runs this test twice — default codegen and
/// `-C target-cpu=native` — so a regression here means a kernel's
/// accumulation order became target-dependent.
#[test]
fn codegen_invariant_bit_patterns() {
    fn seq(n: usize, salt: u64) -> Vec<f64> {
        (0..n as u64)
            .map(|i| {
                let mut z = i.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                ((z >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0
            })
            .collect()
    }
    let a = seq(1003, 1);
    let b = seq(1003, 2);
    assert_eq!(kernels::dot(&a, &b).to_bits(), 0xc0850123e8104d4d, "dot bits drifted");
    assert_eq!(
        kernels::squared_distance(&a, &b).to_bits(),
        0x40e5e56e31c1b14a,
        "squared_distance bits drifted"
    );
    assert_eq!(kernels::sum(&a).to_bits(), 0x402ec07bc43a88eb, "sum bits drifted");
    assert_eq!(
        kernels::sum_sq_dev(&a, 0.25).to_bits(),
        0x40d54b1320286b5f,
        "sum_sq_dev bits drifted"
    );
    let (af, bf) = (kernels::to_f32(&a), kernels::to_f32(&b));
    assert_eq!(kernels::dot_f32(&af, &bf).to_bits(), 0xc0850123e7d86000, "dot_f32 bits drifted");
    let m = Matrix::from_vec(16, 8, seq(128, 3));
    let n = Matrix::from_vec(8, 16, seq(128, 4));
    let p = m.matmul(&n);
    assert_eq!(kernels::sum(p.as_slice()).to_bits(), 0x408cf4b49395f590, "matmul bits drifted");
}
