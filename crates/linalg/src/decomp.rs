//! Factorisations: LU with partial pivoting, Cholesky, cyclic Jacobi eigen.

use crate::Matrix;

/// Errors from numerical factorisations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) at the given pivot index.
    Singular(usize),
    /// Cholesky hit a non-positive pivot: the matrix is not positive definite.
    NotPositiveDefinite(usize),
    /// An operation required a square matrix but got `rows x cols`.
    NotSquare(usize, usize),
    /// A binary operation's operand shapes do not compose (e.g. matmul with
    /// `lhs.cols != rhs.rows`).
    ShapeMismatch {
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular(i) => write!(f, "matrix is singular at pivot {i}"),
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i})")
            }
            LinalgError::NotSquare(r, c) => write!(f, "expected square matrix, got {r}x{c}"),
            LinalgError::ShapeMismatch { lhs: (lr, lc), rhs: (rr, rc) } => {
                write!(f, "operand shapes do not compose: {lr}x{lc} vs {rr}x{rc}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// LU decomposition with partial pivoting: `P*A = L*U`.
///
/// Returns `(lu, perm)` where `lu` packs `L` (unit lower triangle, implicit
/// diagonal of ones) and `U` (upper triangle), and `perm[i]` is the source row
/// of output row `i`.
pub fn lu_decompose(a: &Matrix) -> Result<(Matrix, Vec<usize>), LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Partial pivot: largest |value| in column k at or below the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for r in (k + 1)..n {
            let v = lu[(r, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular(k));
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = tmp;
            }
        }
        let diag = lu[(k, k)];
        for r in (k + 1)..n {
            let factor = lu[(r, k)] / diag;
            lu[(r, k)] = factor;
            for c in (k + 1)..n {
                let sub = factor * lu[(k, c)];
                lu[(r, c)] -= sub;
            }
        }
    }
    Ok((lu, perm))
}

/// Solves the linear system `A x = b` via LU with partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let (lu, perm) = lu_decompose(a)?;
    // Forward substitution on permuted b (L has unit diagonal).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[perm[i]];
        for j in 0..i {
            s -= lu[(i, j)] * y[j];
        }
        y[i] = s;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s / lu[(i, i)];
    }
    Ok(x)
}

/// Cholesky factorisation of a symmetric positive definite matrix: `A = L*Lᵀ`.
///
/// Returns the lower-triangular factor `L`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite(i));
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `L x = b` where `L` is lower triangular with nonzero diagonal.
pub fn solve_lower_triangular(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// column `k` of the eigenvector matrix corresponds to `eigenvalues[k]`.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed; only the upper triangle
/// drives the rotations.
pub fn eigh(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "eigh requires a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass; converged when negligible.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[(r, c)] * m[(r, c)];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the Givens rotation to rows/cols p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    (eigenvalues, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert_close(x[0], 0.8, 1e-12);
        assert_close(x[1], 1.4, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(lu_decompose(&a), Err(LinalgError::NotSquare(2, 3))));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ]);
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite(_))));
    }

    #[test]
    fn lower_triangular_solve() {
        let l = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 3.0]]);
        let x = solve_lower_triangular(&l, &[4.0, 11.0]);
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn eigh_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = eigh(&a);
        assert_close(vals[0], 3.0, 1e-10);
        assert_close(vals[1], 1.0, 1e-10);
    }

    #[test]
    fn eigh_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = eigh(&a);
        assert_close(vals[0], 3.0, 1e-10);
        assert_close(vals[1], 1.0, 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = (vecs[(0, 0)], vecs[(1, 0)]);
        assert_close(v0.0.abs(), 1.0 / 2f64.sqrt(), 1e-8);
        assert_close(v0.1.abs(), 1.0 / 2f64.sqrt(), 1e-8);
    }

    #[test]
    fn eigh_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.2],
            vec![0.5, -0.2, 2.0],
        ]);
        let (vals, vecs) = eigh(&a);
        // A = V diag(vals) Vᵀ
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let recon = vecs.matmul(&d).matmul(&vecs.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-8, "recon diff {}", recon.max_abs_diff(&a));
    }

    #[test]
    fn eigh_vectors_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ]);
        let (_, vecs) = eigh(&a);
        let vtv = vecs.transpose().matmul(&vecs);
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }
}
