//! SIMD-friendly compute kernels: the explicitly-vectorizable primitive
//! layer under the classifiers, histograms, and dense linear algebra.
//!
//! Every kernel here is written for *autovectorization*, not intrinsics:
//! flat slices, fixed-width [`LANES`]-chunked loops with scalar remainders,
//! and no data-dependent branches in the hot loop. The compiler maps the
//! independent lane accumulators onto SIMD registers on any target; the
//! code itself stays portable, `unsafe`-free, and zero-dependency (the only
//! dependency is the in-workspace `smartml-obs` counters).
//!
//! # Determinism policy
//!
//! - **Reduction kernels** ([`dot`], [`sum`], [`sum_sq_dev`],
//!   [`squared_distance`]) accumulate into [`LANES`] independent lanes and
//!   combine them with a *fixed pairwise reduction tree* ([`reduce8`]),
//!   followed by the scalar remainder. The operation sequence is fully
//!   determined by the input length — never by codegen, target CPU, or
//!   thread count — so results are bit-identical across builds and
//!   `-C target-cpu` settings (Rust never licenses FP reassociation or
//!   contraction). They are *not* bit-identical to the serial left-to-right
//!   order: that order is retained in [`scalar`] and selectable process-wide
//!   via [`set_scalar_kernels`] (the legacy-numerics knob).
//! - **Elementwise kernels** ([`axpy`], [`add_assign`], [`sub_assign`],
//!   [`momentum_update`]) perform one independent FP expression per element;
//!   vectorizing them cannot change any result, so the fast path and the
//!   scalar oracle are bit-identical by construction.
//! - **f32 kernels** ([`dot_f32`], [`squared_distance_f32`]) are *opt-in*
//!   (off by default, enabled via [`set_f32_kernels`]): inputs are rounded
//!   to f32, products are formed in f32 lanes, and accumulation happens in
//!   f64 so lane order cannot compound the precision loss. Documented error
//!   bound, asserted by the equivalence proptests: for inputs with
//!   `|x| <= M`, `|kernel_f32 - kernel_f64| <= n * M² * 2⁻¹⁹`
//!   ([`F32_EPS_SCALE`]). Consumers that honour the knob (kNN distance
//!   ranking, the SMO kernel matrix) gate on [`use_f32_path`], which also
//!   feeds the `linalg.kernel.f32_path` / `linalg.kernel.f64_path`
//!   counters.
//!
//! # Adding a kernel
//!
//! 1. Write the legacy/serial reference into [`scalar`] first — it is the
//!    oracle the proptests and the `simd_kernels` bench compare against,
//!    and the implementation the [`set_scalar_kernels`] knob falls back to.
//! 2. Write the fast path as a `chunks_exact(LANES)` loop with per-lane
//!    accumulators plus a scalar tail, reducing via [`reduce8`]. Keep the
//!    loop free of branches and of anything the optimizer cannot hoist.
//! 3. Dispatch on [`scalar_kernels`] at the top of the public function.
//! 4. Add cases to `crates/linalg/tests/kernel_equiv.rs`: tolerance
//!    equivalence vs the scalar oracle across remainder lengths
//!    (`n % LANES != 0`), plus a hard-coded bit-pattern in the
//!    codegen-invariance test.
//! 5. Add an old-vs-new timing to `crates/bench/src/bin/simd_kernels.rs`.

use smartml_obs::Counter;
use std::sync::atomic::{AtomicBool, Ordering};

/// Chunk width of every vectorized loop. Eight f64 lanes fill two AVX2
/// registers (or four SSE2 registers) and give the adder enough
/// independent chains to hide FP latency even without wide SIMD.
pub const LANES: usize = 8;

/// Scale factor of the documented f32-kernel error bound:
/// `|f32 - f64| <= n * M² * F32_EPS_SCALE` for inputs bounded by `M`.
pub const F32_EPS_SCALE: f64 = 1.0 / (1u64 << 19) as f64;

static SCALAR_KERNELS: AtomicBool = AtomicBool::new(false);
static F32_KERNELS: AtomicBool = AtomicBool::new(false);

static F64_PATH: Counter = Counter::new("linalg.kernel.f64_path");
static F32_PATH: Counter = Counter::new("linalg.kernel.f32_path");

/// Process-wide fallback to the retained serial-order scalar kernels
/// (`true` restores the exact pre-kernel-layer numerics). Intended for
/// differential testing and benchmarking; off by default.
pub fn set_scalar_kernels(on: bool) {
    SCALAR_KERNELS.store(on, Ordering::Release);
}

/// Whether the scalar-oracle fallback is active.
#[inline(always)]
pub fn scalar_kernels() -> bool {
    SCALAR_KERNELS.load(Ordering::Relaxed)
}

/// Opt into the reduced-precision f32 kernels for the consumers that
/// support them (kNN distances, the SMO kernel matrix). Off by default;
/// results move within the documented [`F32_EPS_SCALE`] bound.
pub fn set_f32_kernels(on: bool) {
    F32_KERNELS.store(on, Ordering::Release);
}

/// Whether the f32 kernels are enabled.
#[inline(always)]
pub fn f32_kernels_enabled() -> bool {
    F32_KERNELS.load(Ordering::Relaxed)
}

/// Path decision for a consumer that supports both precisions: returns
/// whether to take the f32 path and bumps the corresponding
/// `linalg.kernel.{f32,f64}_path` counter. Call once per model-level
/// decision (a fit, a kernel-matrix build), not per element.
pub fn use_f32_path() -> bool {
    if f32_kernels_enabled() {
        F32_PATH.inc();
        true
    } else {
        F64_PATH.inc();
        false
    }
}

/// Fixed pairwise reduction of the eight lane accumulators. The tree shape
/// is part of the determinism contract — do not "simplify" it into a fold.
#[inline(always)]
fn reduce8(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Dot product with lane-chunked accumulation.
///
/// Slices must be equal length (`debug_assert`ed; release builds compute
/// over the common prefix).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    if scalar_kernels() {
        return scalar::dot(a, b);
    }
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let (ca, cb) = (a.chunks_exact(LANES), b.chunks_exact(LANES));
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    reduce8(acc) + tail
}

/// Squared Euclidean distance with lane-chunked accumulation.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    if scalar_kernels() {
        return scalar::squared_distance(a, b);
    }
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let (ca, cb) = (a.chunks_exact(LANES), b.chunks_exact(LANES));
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        tail += d * d;
    }
    reduce8(acc) + tail
}

/// Sum with lane-chunked accumulation.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    if scalar_kernels() {
        return scalar::sum(xs);
    }
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let rem = chunks.remainder();
    for c in chunks {
        for l in 0..LANES {
            acc[l] += c[l];
        }
    }
    let mut tail = 0.0;
    for &x in rem {
        tail += x;
    }
    reduce8(acc) + tail
}

/// Sum of squared deviations `Σ (x - m)²` with lane-chunked accumulation
/// (the second pass of a two-pass variance).
#[inline]
pub fn sum_sq_dev(xs: &[f64], m: f64) -> f64 {
    if scalar_kernels() {
        return scalar::sum_sq_dev(xs, m);
    }
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let rem = chunks.remainder();
    for c in chunks {
        for l in 0..LANES {
            let d = c[l] - m;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for &x in rem {
        let d = x - m;
        tail += d * d;
    }
    reduce8(acc) + tail
}

/// Fused Pearson accumulator: `(Σ dx·dy, Σ dx², Σ dy²)` for
/// `dx = a[i] - ma`, `dy = b[i] - mb`, with lane-chunked accumulation.
#[inline]
pub fn pearson_sums(a: &[f64], b: &[f64], ma: f64, mb: f64) -> (f64, f64, f64) {
    debug_assert_eq!(a.len(), b.len(), "pearson_sums length mismatch");
    if scalar_kernels() {
        return scalar::pearson_sums(a, b, ma, mb);
    }
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut sab = [0.0f64; LANES];
    let mut saa = [0.0f64; LANES];
    let mut sbb = [0.0f64; LANES];
    let (ca, cb) = (a.chunks_exact(LANES), b.chunks_exact(LANES));
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            let dx = xa[l] - ma;
            let dy = xb[l] - mb;
            sab[l] += dx * dy;
            saa[l] += dx * dx;
            sbb[l] += dy * dy;
        }
    }
    let (mut tab, mut taa, mut tbb) = (0.0, 0.0, 0.0);
    for (x, y) in ra.iter().zip(rb) {
        let dx = x - ma;
        let dy = y - mb;
        tab += dx * dy;
        taa += dx * dx;
        tbb += dy * dy;
    }
    (reduce8(sab) + tab, reduce8(saa) + taa, reduce8(sbb) + tbb)
}

/// `y[i] += a * x[i]` — elementwise, so vectorized and scalar forms are
/// bit-identical; no mode dispatch needed.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// `y[i] += x[i]` — elementwise.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

/// `y[i] -= x[i]` — elementwise.
#[inline]
pub fn sub_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "sub_assign length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv -= xv;
    }
}

/// Fused SGD-with-momentum step over one weight row:
/// `g' = g*scale + decay*w; v = momentum*v - lr*g'; w += v` — elementwise,
/// bit-identical to the separate scalar statements it replaces.
#[inline]
pub fn momentum_update(
    w: &mut [f64],
    v: &mut [f64],
    g: &[f64],
    scale: f64,
    decay: f64,
    lr: f64,
    momentum: f64,
) {
    debug_assert!(w.len() == v.len() && v.len() == g.len(), "momentum_update length mismatch");
    for ((wv, vv), &gv) in w.iter_mut().zip(v.iter_mut()).zip(g) {
        let grad = gv * scale + decay * *wv;
        *vv = momentum * *vv - lr * grad;
        *wv += *vv;
    }
}

/// Rounds an f64 slice to f32 storage for the opt-in reduced-precision
/// paths.
pub fn to_f32(xs: &[f64]) -> Vec<f32> {
    xs.iter().map(|&x| x as f32).collect()
}

/// f32-lane dot product with f64 accumulators. See the module docs for the
/// error bound relative to [`dot`].
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let (ca, cb) = (a.chunks_exact(LANES), b.chunks_exact(LANES));
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            acc[l] += (xa[l] * xb[l]) as f64;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        tail += (x * y) as f64;
    }
    reduce8(acc) + tail
}

/// f32-lane squared Euclidean distance with f64 accumulators. See the
/// module docs for the error bound relative to [`squared_distance`].
#[inline]
pub fn squared_distance_f32(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance_f32 length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let (ca, cb) = (a.chunks_exact(LANES), b.chunks_exact(LANES));
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += (d * d) as f64;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        tail += (d * d) as f64;
    }
    reduce8(acc) + tail
}

/// The retained serial-order scalar kernels: the exact pre-kernel-layer
/// numerics (single accumulator, strict left-to-right order). These are
/// the oracles the equivalence proptests and the `simd_kernels` benchmark
/// compare against, and what the whole pipeline computes with when
/// [`set_scalar_kernels`]`(true)` is set. The serial loop carries a
/// loop-borne FP dependency, so the compiler cannot vectorize it — which
/// is precisely what makes it an honest baseline.
pub mod scalar {
    /// Serial-order dot product.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Serial-order squared Euclidean distance.
    pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Serial-order sum.
    pub fn sum(xs: &[f64]) -> f64 {
        xs.iter().sum()
    }

    /// Serial-order sum of squared deviations.
    pub fn sum_sq_dev(xs: &[f64], m: f64) -> f64 {
        xs.iter().map(|x| (x - m) * (x - m)).sum()
    }

    /// Serial-order interleaved Pearson sums.
    pub fn pearson_sums(a: &[f64], b: &[f64], ma: f64, mb: f64) -> (f64, f64, f64) {
        let (mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b) {
            let dx = x - ma;
            let dy = y - mb;
            sab += dx * dy;
            saa += dx * dx;
            sbb += dy * dy;
        }
        (sab, saa, sbb)
    }

    /// Elementwise `y += a*x` (bit-identical to [`super::axpy`]; retained
    /// for the benchmark's old-vs-new symmetry).
    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        for (yv, &xv) in y.iter_mut().zip(x) {
            *yv += a * xv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: u64) -> Vec<f64> {
        // SplitMix-ish deterministic values in [-8, 8).
        (0..n as u64)
            .map(|i| {
                let mut z = i.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                ((z >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_scalar_within_reassociation_tolerance() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let a = seq(n, 1);
            let b = seq(n, 2);
            let fast = dot(&a, &b);
            let slow = scalar::dot(&a, &b);
            assert!((fast - slow).abs() <= 1e-10 * (1.0 + slow.abs()), "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn squared_distance_nonnegative_and_close_to_scalar() {
        for n in [3, 8, 17, 256] {
            let a = seq(n, 3);
            let b = seq(n, 4);
            let fast = squared_distance(&a, &b);
            assert!(fast >= 0.0);
            let slow = scalar::squared_distance(&a, &b);
            assert!((fast - slow).abs() <= 1e-10 * (1.0 + slow.abs()));
        }
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(squared_distance(&[], &[]), 0.0);
        assert_eq!(sum_sq_dev(&[], 1.0), 0.0);
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(squared_distance_f32(&[], &[]), 0.0);
    }

    #[test]
    fn scalar_knob_switches_numerics() {
        let a = seq(100, 5);
        let b = seq(100, 6);
        set_scalar_kernels(true);
        let via_knob = dot(&a, &b);
        set_scalar_kernels(false);
        assert_eq!(via_knob.to_bits(), scalar::dot(&a, &b).to_bits());
    }

    #[test]
    fn f32_kernels_within_documented_bound() {
        for n in [1, 9, 64, 300] {
            let a = seq(n, 7);
            let b = seq(n, 8);
            let (af, bf) = (to_f32(&a), to_f32(&b));
            let bound = n as f64 * 64.0 * F32_EPS_SCALE; // M = 8
            assert!((dot_f32(&af, &bf) - dot(&a, &b)).abs() <= bound, "dot n={n}");
            assert!(
                (squared_distance_f32(&af, &bf) - squared_distance(&a, &b)).abs() <= bound,
                "sqdist n={n}"
            );
        }
    }

    #[test]
    fn elementwise_kernels_match_reference() {
        let x = seq(37, 9);
        let mut y = seq(37, 10);
        let mut y2 = y.clone();
        axpy(&mut y, 1.5, &x);
        for (v, &xv) in y2.iter_mut().zip(&x) {
            *v += 1.5 * xv;
        }
        assert_eq!(y, y2);
        let mut w = seq(21, 11);
        let mut v = seq(21, 12);
        let g = seq(21, 13);
        let (mut w2, mut v2) = (w.clone(), v.clone());
        momentum_update(&mut w, &mut v, &g, 0.1, 1e-4, 0.2, 0.9);
        for i in 0..21 {
            let grad = g[i] * 0.1 + 1e-4 * w2[i];
            v2[i] = 0.9 * v2[i] - 0.2 * grad;
            w2[i] += v2[i];
        }
        assert_eq!(w, w2);
        assert_eq!(v, v2);
    }

    #[test]
    fn f32_path_decision_honours_knob() {
        set_f32_kernels(false);
        assert!(!use_f32_path());
        set_f32_kernels(true);
        assert!(use_f32_path());
        set_f32_kernels(false);
    }
}
