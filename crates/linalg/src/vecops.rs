//! Scalar-vector helpers used across the workspace: moments, norms,
//! numerically careful summaries over possibly-empty or NaN-bearing slices.
//!
//! The reduction-shaped entry points (`sum`, `mean`, `variance`, `dot`,
//! `euclidean_distance`, `norm`) delegate to the vectorized
//! [`crate::kernels`] layer and inherit its determinism policy: fixed
//! lane-order accumulation, with the legacy serial numerics available
//! process-wide via [`crate::kernels::set_scalar_kernels`].

use crate::kernels;

/// Sum of a slice.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    kernels::sum(xs)
}

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        sum(xs) / xs.len() as f64
    }
}

/// Sample variance (denominator `n - 1`); 0.0 when `n < 2`.
pub fn variance(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    kernels::sum_sq_dev(xs, m) / (n - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (Fisher-Pearson, bias-uncorrected); 0.0 for degenerate input.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 3.0 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 <= 1e-300 {
        return 0.0;
    }
    m3 / m2.powf(1.5)
}

/// Excess kurtosis (normal distribution → 0); 0.0 for degenerate input.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 4.0 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    if m2 <= 1e-300 {
        return 0.0;
    }
    m4 / (m2 * m2) - 3.0
}

/// Minimum, ignoring NaNs; +inf for empty/all-NaN input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(f64::INFINITY, f64::min)
}

/// Maximum, ignoring NaNs; -inf for empty/all-NaN input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(f64::NEG_INFINITY, f64::max)
}

/// Euclidean (L2) distance between equal-length slices.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    kernels::squared_distance(a, b).sqrt()
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

/// L2 norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Index of the maximum element (first on ties); `None` for empty input.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if best.is_none_or(|(_, b)| x > b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

/// In-place softmax, numerically stabilised by max subtraction.
pub fn softmax_inplace(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let m = max(xs);
    let mut z = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        z += *x;
    }
    if z > 0.0 {
        for x in xs.iter_mut() {
            *x /= z;
        }
    }
}

/// Median of a sample (average of the middle two for even lengths);
/// 0.0 for empty input. NaNs are ignored.
pub fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Shannon entropy (nats) of a discrete distribution given as counts.
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_moments() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(kurtosis(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(skewness(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed sample has positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right) > 0.5);
        let left = [10.0, 10.0, 10.0, 9.0, 1.0];
        assert!(skewness(&left) < -0.5);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(kurtosis(&xs) < 0.0); // uniform excess kurtosis is -1.2
    }

    #[test]
    fn minmax_ignores_nan() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 3.0);
    }

    #[test]
    fn distance_and_dot() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_ties_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = [1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_large_values_stable() {
        let mut xs = [1000.0, 1001.0];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn empty_slices_are_defined() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(euclidean_distance(&[], &[]), 0.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn remainder_lengths_cover_every_lane_count() {
        // n % LANES in {0 .. LANES-1} for each chunked kernel, checked
        // against a serial reference within reassociation tolerance.
        for n in 1..=2 * crate::kernels::LANES + 1 {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin() * 3.0).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos() * 3.0).collect();
            let serial_sum: f64 = xs.iter().sum();
            assert!((sum(&xs) - serial_sum).abs() <= 1e-12 * (1.0 + serial_sum.abs()), "sum n={n}");
            let serial_dot: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
            assert!((dot(&xs, &ys) - serial_dot).abs() <= 1e-12 * (1.0 + serial_dot.abs()), "dot n={n}");
            let serial_d2: f64 = xs.iter().zip(&ys).map(|(a, b)| (a - b) * (a - b)).sum();
            let d = euclidean_distance(&xs, &ys);
            assert!((d * d - serial_d2).abs() <= 1e-10 * (1.0 + serial_d2), "dist n={n}");
            if n >= 2 {
                let m = serial_sum / n as f64;
                let serial_var: f64 =
                    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
                assert!((variance(&xs) - serial_var).abs() <= 1e-12 * (1.0 + serial_var), "var n={n}");
            }
        }
    }

    #[test]
    fn non_finite_inputs_propagate() {
        assert!(sum(&[1.0, f64::NAN, 2.0]).is_nan());
        assert!(dot(&[f64::INFINITY, 1.0], &[1.0, 1.0]).is_infinite());
        assert!(dot(&[f64::INFINITY, 1.0], &[0.0, 1.0]).is_nan());
        assert!(mean(&[f64::NEG_INFINITY; 9]).is_infinite());
        assert!(variance(&[1.0, f64::NAN, 3.0]).is_nan());
        assert!(euclidean_distance(&[f64::INFINITY], &[0.0]).is_infinite());
        // min/max intentionally filter NaN rather than propagate it.
        assert_eq!(min(&[f64::NAN, 4.0]), 4.0);
        assert_eq!(max(&[f64::NAN, 4.0]), 4.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn length_mismatch_asserts_in_debug() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        assert!(catch_unwind(AssertUnwindSafe(|| dot(&[1.0, 2.0], &[1.0]))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| euclidean_distance(&[1.0], &[]))).is_err());
    }

    #[test]
    fn entropy_known() {
        // Uniform over 2 symbols = ln 2 nats.
        assert!((entropy_from_counts(&[5, 5]) - 2f64.ln().abs()).abs() < 1e-12);
        assert_eq!(entropy_from_counts(&[10, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }
}
