//! Dense linear algebra substrate for SmartML.
//!
//! The original SmartML delegates numerical work to R/LAPACK; this crate provides
//! the minimal, well-tested dense kernel set the rest of the workspace needs:
//! a row-major [`Matrix`], LU and Cholesky factorisations, a cyclic Jacobi
//! symmetric eigendecomposition, and statistical helpers (covariance,
//! column means). Datasets in this domain are small-to-medium, so the
//! implementations favour clarity and numerical robustness over peak FLOPs —
//! but the hot inner loops (dot/distance/sum reductions, AXPY updates, the
//! matmul micro-kernel) now live in the autovectorization-friendly
//! [`kernels`] module, with retained scalar oracles behind a process-wide
//! knob and a documented determinism policy (see `kernels`' module docs and
//! DESIGN.md § Compute layer).

mod decomp;
pub mod kernels;
mod matrix;
mod stats;
pub mod vecops;

pub use decomp::{cholesky, eigh, lu_decompose, solve, solve_lower_triangular, LinalgError};
pub use matrix::Matrix;
pub use stats::{column_means, covariance_matrix, pearson_correlation};
#[doc(hidden)]
pub use stats::oracle as stats_oracle;
