//! Dense linear algebra substrate for SmartML.
//!
//! The original SmartML delegates numerical work to R/LAPACK; this crate provides
//! the minimal, well-tested dense kernel set the rest of the workspace needs:
//! a row-major [`Matrix`], LU and Cholesky factorisations, a cyclic Jacobi
//! symmetric eigendecomposition, and statistical helpers (covariance,
//! column means). Datasets in this domain are small-to-medium, so the
//! implementations favour clarity and numerical robustness over peak FLOPs.

mod decomp;
mod matrix;
mod stats;
pub mod vecops;

pub use decomp::{cholesky, eigh, lu_decompose, solve, solve_lower_triangular, LinalgError};
pub use matrix::Matrix;
pub use stats::{column_means, covariance_matrix, pearson_correlation};
