//! Row-major dense matrix over `f64`.

use crate::decomp::LinalgError;
use crate::kernels;
use smartml_obs::Counter;
use std::fmt;
use std::ops::{Index, IndexMut};

static GEMM_CALLS: Counter = Counter::new("linalg.gemm.calls");

/// A dense, row-major matrix of `f64` values.
///
/// Indexing is `(row, col)`. All dimensions are checked at construction and on
/// every binary operation; dimension mismatches panic, since they are
/// programming errors rather than data errors.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} != {rows}x{cols}", data.len());
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.col_into(c, &mut out);
        out
    }

    /// Copy column `c` into `out`, reusing its allocation.
    pub fn col_into(&self, c: usize, out: &mut Vec<f64>) {
        assert!(c < self.cols, "column {c} out of range for {:?}", self.shape());
        out.clear();
        out.extend((0..self.rows).map(|r| self.data[r * self.cols + c]));
    }

    /// Matrix transpose, blocked so both source and destination are walked
    /// in cache-line-sized tiles rather than one side striding the full
    /// matrix width per element.
    pub fn transpose(&self) -> Matrix {
        const B: usize = 32;
        let (n, m) = (self.rows, self.cols);
        let mut t = vec![0.0; n * m];
        for rb in (0..n).step_by(B) {
            for cb in (0..m).step_by(B) {
                for r in rb..(rb + B).min(n) {
                    let row = &self.data[r * m..r * m + m];
                    for c in cb..(cb + B).min(m) {
                        t[c * n + r] = row[c];
                    }
                }
            }
        }
        Matrix { rows: m, cols: n, data: t }
    }

    /// Matrix product `self * rhs`, with the dimension check routed through
    /// `Result` so pipeline code (surrogate refits, PLS-DA projections) can
    /// surface a bad shape as a trial error instead of a panic.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        GEMM_CALLS.inc();
        if kernels::scalar_kernels() {
            Ok(self.matmul_serial(rhs))
        } else {
            Ok(self.matmul_blocked(rhs))
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`; infallible callers keep this
    /// entry point, pipeline callers use [`Matrix::try_matmul`].
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        match self.try_matmul(rhs) {
            Ok(out) => out,
            Err(e) => panic!("matmul shape mismatch: {e}"),
        }
    }

    /// The retained pre-kernel-layer product: i-k-j loop order, one output
    /// row live at a time. Serves as the scalar oracle for the blocked path
    /// (results are bit-identical) and as the `simd_kernels` bench baseline.
    fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Register-blocked product: a 4-row micro-kernel reuses each `rhs` row
    /// across four output rows, quartering the dominant memory traffic while
    /// keeping every `(i, j)` accumulation in ascending-`k` order — so the
    /// result is bit-identical to [`Matrix::matmul_serial`].
    fn matmul_blocked(&self, rhs: &Matrix) -> Matrix {
        const MR: usize = 4;
        let (n, kd, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        let blocks = n / MR;
        for (bi, block) in out.data[..blocks * MR * m].chunks_exact_mut(MR * m).enumerate() {
            let i0 = bi * MR;
            let (r0, rest) = block.split_at_mut(m);
            let (r1, rest) = rest.split_at_mut(m);
            let (r2, r3) = rest.split_at_mut(m);
            for k in 0..kd {
                let a0 = self.data[i0 * kd + k];
                let a1 = self.data[(i0 + 1) * kd + k];
                let a2 = self.data[(i0 + 2) * kd + k];
                let a3 = self.data[(i0 + 3) * kd + k];
                let brow = &rhs.data[k * m..k * m + m];
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    for j in 0..m {
                        let b = brow[j];
                        r0[j] += a0 * b;
                        r1[j] += a1 * b;
                        r2[j] += a2 * b;
                        r3[j] += a3 * b;
                    }
                } else {
                    // The zero-skip is semantic, not just a shortcut
                    // (0.0 * inf is NaN; -0.0 + 0.0 is +0.0), so a block
                    // with any zero multiplier falls back to per-row AXPYs
                    // that skip exactly the rows the serial path skips.
                    if a0 != 0.0 {
                        kernels::axpy(r0, a0, brow);
                    }
                    if a1 != 0.0 {
                        kernels::axpy(r1, a1, brow);
                    }
                    if a2 != 0.0 {
                        kernels::axpy(r2, a2, brow);
                    }
                    if a3 != 0.0 {
                        kernels::axpy(r3, a3, brow);
                    }
                }
            }
        }
        for i in blocks * MR..n {
            for k in 0..kd {
                let a = self.data[i * kd + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * m..k * m + m];
                kernels::axpy(&mut out.data[i * m..i * m + m], a, brow);
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows).map(|r| kernels::dot(self.row(r), v)).collect()
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {:?}", self.shape());
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {:?}", self.shape());
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 3.5], vec![0.0, 4.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn blocked_transpose_matches_naive_on_odd_shapes() {
        // Shapes straddling the 32-wide tile: 1 tile, partial tiles, tall/wide.
        for &(r, c) in &[(1, 1), (3, 70), (70, 3), (33, 33), (64, 32), (37, 95)] {
            let a = Matrix::from_vec(r, c, (0..r * c).map(|i| i as f64 * 0.5 - 7.0).collect());
            let t = a.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[(j, i)], a[(i, j)], "({i},{j}) in {r}x{c}");
                }
            }
        }
    }

    #[test]
    fn col_into_reuses_buffer() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut buf = vec![9.0; 17];
        a.col_into(1, &mut buf);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
        a.col_into(0, &mut buf);
        assert_eq!(buf, vec![1.0, 3.0, 5.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn try_matmul_reports_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        match a.try_matmul(&b) {
            Err(LinalgError::ShapeMismatch { lhs, rhs }) => {
                assert_eq!(lhs, (2, 3));
                assert_eq!(rhs, (2, 3));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert!(Matrix::zeros(2, 3).try_matmul(&Matrix::zeros(3, 4)).is_ok());
    }

    #[test]
    fn blocked_matmul_bit_identical_to_serial() {
        // Shapes straddling the 4-row micro-kernel, with planted zeros and
        // non-finite values to exercise the zero-skip fallback.
        for &(n, k, m) in &[(1, 1, 1), (4, 4, 4), (5, 3, 7), (8, 16, 2), (13, 7, 9), (3, 5, 4)] {
            let mut a = Matrix::from_vec(
                n,
                k,
                (0..n * k).map(|i| (i as f64 * 0.37).sin() * 4.0).collect(),
            );
            let b = Matrix::from_vec(
                k,
                m,
                (0..k * m).map(|i| (i as f64 * 0.73).cos() * 4.0).collect(),
            );
            a[(0, 0)] = 0.0;
            if n * k > 6 {
                a.as_mut_slice()[5] = 0.0;
            }
            let fast = a.matmul_blocked(&b);
            let slow = a.matmul_serial(&b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{n}x{k} * {k}x{m}");
            }
        }
        // Zero times infinity must keep the serial path's skip semantics.
        let mut a = Matrix::zeros(4, 2);
        a[(1, 0)] = 1.0;
        let mut b = Matrix::zeros(2, 3);
        b[(0, 1)] = f64::INFINITY;
        let fast = a.matmul_blocked(&b);
        let slow = a.matmul_serial(&b);
        assert_eq!(fast, slow);
        assert_eq!(fast[(0, 1)], 0.0);
        assert_eq!(fast[(1, 1)], f64::INFINITY);
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
