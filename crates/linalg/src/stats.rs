//! Statistical matrix helpers: column means, covariance, correlation.
//!
//! The hot loops (column accumulation, the covariance upper triangle, the
//! Pearson sums) run on the vectorized [`crate::kernels`] layer. The
//! covariance and mean rewrites are *elementwise order-preserving* — each
//! output cell accumulates the same values in the same order as the legacy
//! nested loops — so they are bit-identical to the retained [`oracle`]
//! implementations, which exist for differential tests and benchmarks.

use crate::kernels;
use crate::Matrix;

/// Per-column means of a data matrix (rows = observations).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut means = vec![0.0; x.cols()];
    for r in 0..x.rows() {
        kernels::add_assign(&mut means, x.row(r));
    }
    if n > 0.0 {
        for m in &mut means {
            *m /= n;
        }
    }
    means
}

/// Sample covariance matrix (denominator `n - 1`) of a data matrix
/// with rows as observations and columns as variables.
///
/// Returns the zero matrix when there are fewer than two observations.
///
/// Each observation is centered once into a scratch row and rank-1-updates
/// the upper triangle via AXPYs over contiguous `cov` row tails — the same
/// multiplies and adds, in the same order, as the legacy scalar triple loop
/// (bit-identical to [`oracle::covariance_matrix`]).
pub fn covariance_matrix(x: &Matrix) -> Matrix {
    let (n, p) = x.shape();
    let mut cov = Matrix::zeros(p, p);
    if n < 2 {
        return cov;
    }
    let means = column_means(x);
    let mut centered = vec![0.0; p];
    for r in 0..n {
        let row = x.row(r);
        for j in 0..p {
            centered[j] = row[j] - means[j];
        }
        for i in 0..p {
            let di = centered[i];
            kernels::axpy(&mut cov.row_mut(i)[i..], di, &centered[i..]);
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..p {
        for j in i..p {
            let v = cov[(i, j)] / denom;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Pearson correlation of two equal-length samples.
///
/// Returns 0.0 when either sample has (numerically) zero variance — the
/// convention used throughout the meta-feature extractor, where a constant
/// feature carries no correlation signal.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation length mismatch");
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = kernels::sum(a) / n;
    let mb = kernels::sum(b) / n;
    let (sab, saa, sbb) = kernels::pearson_sums(a, b, ma, mb);
    if saa <= 1e-300 || sbb <= 1e-300 {
        return 0.0;
    }
    sab / (saa.sqrt() * sbb.sqrt())
}

/// Retained pre-kernel-layer implementations: the scalar oracles the
/// equivalence tests and the `simd_kernels` benchmark compare against.
#[doc(hidden)]
pub mod oracle {
    use super::Matrix;

    /// Legacy nested-loop covariance (single accumulator per cell, scalar
    /// triple loop).
    pub fn covariance_matrix(x: &Matrix) -> Matrix {
        let (n, p) = x.shape();
        let mut cov = Matrix::zeros(p, p);
        if n < 2 {
            return cov;
        }
        let means = super::column_means(x);
        for r in 0..n {
            let row = x.row(r);
            for i in 0..p {
                let di = row[i] - means[i];
                for j in i..p {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = (n - 1) as f64;
        for i in 0..p {
            for j in i..p {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }

    /// Legacy interleaved three-sum Pearson correlation.
    pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "correlation length mismatch");
        let n = a.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut sab = 0.0;
        let mut saa = 0.0;
        let mut sbb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            let dx = x - ma;
            let dy = y - mb;
            sab += dx * dy;
            saa += dx * dx;
            sbb += dy * dy;
        }
        if saa <= 1e-300 || sbb <= 1e-300 {
            return 0.0;
        }
        sab / (saa.sqrt() * sbb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_simple() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(column_means(&x), vec![2.0, 15.0]);
    }

    #[test]
    fn means_empty() {
        assert_eq!(column_means(&Matrix::zeros(0, 3)), vec![0.0; 3]);
    }

    #[test]
    fn covariance_known() {
        // Two perfectly correlated columns.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let c = covariance_matrix(&x);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn covariance_single_row_is_zero() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(covariance_matrix(&x), Matrix::zeros(2, 2));
    }

    #[test]
    fn covariance_bit_identical_to_oracle() {
        for &(n, p) in &[(2, 1), (5, 3), (17, 9), (40, 12)] {
            let x = Matrix::from_vec(
                n,
                p,
                (0..n * p).map(|i| (i as f64 * 0.29).sin() * 5.0).collect(),
            );
            let fast = covariance_matrix(&x);
            let slow = oracle::covariance_matrix(&x);
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{n}x{p}");
            }
        }
    }

    #[test]
    fn correlation_perfect() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson_correlation(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 4.0, 6.0];
        assert_eq!(pearson_correlation(&a, &b), 0.0);
    }

    #[test]
    fn correlation_close_to_oracle() {
        let a: Vec<f64> = (0..101).map(|i| (i as f64 * 0.13).sin() * 2.0).collect();
        let b: Vec<f64> = (0..101).map(|i| (i as f64 * 0.07).cos() + 0.3 * (i as f64 * 0.13).sin()).collect();
        let fast = pearson_correlation(&a, &b);
        let slow = oracle::pearson_correlation(&a, &b);
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }
}
