//! Statistical matrix helpers: column means, covariance, correlation.

use crate::Matrix;

/// Per-column means of a data matrix (rows = observations).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut means = vec![0.0; x.cols()];
    for r in 0..x.rows() {
        for (m, &v) in means.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    if n > 0.0 {
        for m in &mut means {
            *m /= n;
        }
    }
    means
}

/// Sample covariance matrix (denominator `n - 1`) of a data matrix
/// with rows as observations and columns as variables.
///
/// Returns the zero matrix when there are fewer than two observations.
pub fn covariance_matrix(x: &Matrix) -> Matrix {
    let (n, p) = x.shape();
    let mut cov = Matrix::zeros(p, p);
    if n < 2 {
        return cov;
    }
    let means = column_means(x);
    for r in 0..n {
        let row = x.row(r);
        for i in 0..p {
            let di = row[i] - means[i];
            for j in i..p {
                cov[(i, j)] += di * (row[j] - means[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..p {
        for j in i..p {
            let v = cov[(i, j)] / denom;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Pearson correlation of two equal-length samples.
///
/// Returns 0.0 when either sample has (numerically) zero variance — the
/// convention used throughout the meta-feature extractor, where a constant
/// feature carries no correlation signal.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation length mismatch");
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        sab += dx * dy;
        saa += dx * dx;
        sbb += dy * dy;
    }
    if saa <= 1e-300 || sbb <= 1e-300 {
        return 0.0;
    }
    sab / (saa.sqrt() * sbb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_simple() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(column_means(&x), vec![2.0, 15.0]);
    }

    #[test]
    fn means_empty() {
        assert_eq!(column_means(&Matrix::zeros(0, 3)), vec![0.0; 3]);
    }

    #[test]
    fn covariance_known() {
        // Two perfectly correlated columns.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let c = covariance_matrix(&x);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn covariance_single_row_is_zero() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(covariance_matrix(&x), Matrix::zeros(2, 2));
    }

    #[test]
    fn correlation_perfect() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson_correlation(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 4.0, 6.0];
        assert_eq!(pearson_correlation(&a, &b), 0.0);
    }
}
