//! Ablation C: budget division — the paper divides the tuning budget among
//! nominated algorithms "according to the number of hyper-parameters to
//! tune in each algorithm". This ablation compares that proportional rule
//! against a uniform split, holding everything else fixed.

use smartml::{divide_budget, Budget};
use smartml::{Algorithm, ParamConfig};
use smartml_bench::{render_table, shared_bootstrapped_kb, Scale};
use smartml_data::synth::benchmark_suite;
use smartml_data::{accuracy, train_valid_split, Dataset};
use smartml_kb::QueryOptions;
use smartml_smac::{ClassifierObjective, OptOptions, Optimizer, Smac};

/// Tunes one algorithm with the given trial budget and returns its
/// validation accuracy after refit.
fn tune_one(
    data: &Dataset,
    train: &[usize],
    valid: &[usize],
    algorithm: Algorithm,
    warm: &[ParamConfig],
    trials: usize,
) -> f64 {
    let objective = ClassifierObjective::new(algorithm, data, train, 3, 7);
    let result = Smac::default().optimize(
        &algorithm.param_space(),
        &objective,
        &OptOptions {
            max_trials: trials,
            seed: 7 ^ (algorithm as u64) << 8,
            initial_configs: warm.to_vec(),
            ..Default::default()
        },
    );
    match algorithm.build(&result.best_config).fit(data, train) {
        Ok(model) => accuracy(&data.labels_for(valid), &model.predict(data, valid)),
        Err(_) => 0.0,
    }
}

fn main() {
    let scale = Scale::from_env();
    let kb = shared_bootstrapped_kb(scale);
    let total = match scale {
        Scale::Quick => 18,
        Scale::Full => 60,
    };
    let suite = benchmark_suite();
    let picks = ["gisette", "madelon", "semeion", "kin8nm"];
    let mut rows = Vec::new();
    for name in picks {
        let bench = suite.iter().find(|b| b.paper_name == name).expect("known benchmark");
        let data = bench.generate(2019);
        let (train, valid) = train_valid_split(&data, 0.3, 7);
        let meta = smartml_metafeatures::extract(&data, &train);
        let rec = kb.recommend(&meta, &QueryOptions { top_n: 3, ..Default::default() });
        let nominated: Vec<(Algorithm, Vec<ParamConfig>)> = rec
            .algorithms
            .iter()
            .map(|a| (a.algorithm, a.warm_starts.clone()))
            .collect();
        let algorithms: Vec<Algorithm> = nominated.iter().map(|(a, _)| *a).collect();

        // Proportional (paper rule).
        let shares = divide_budget(Budget::Trials(total), &algorithms);
        let prop_best = nominated
            .iter()
            .zip(&shares)
            .map(|((alg, warm), (_, share))| {
                let trials = match share {
                    Budget::Trials(t) => *t,
                    _ => unreachable!(),
                };
                tune_one(&data, &train, &valid, *alg, warm, trials)
            })
            .fold(0.0f64, f64::max);

        // Uniform.
        let per = (total / algorithms.len().max(1)).max(3);
        let uniform_best = nominated
            .iter()
            .map(|(alg, warm)| tune_one(&data, &train, &valid, *alg, warm, per))
            .fold(0.0f64, f64::max);

        let share_str = shares
            .iter()
            .map(|(a, b)| match b {
                Budget::Trials(t) => format!("{}:{t}", a.paper_name()),
                _ => unreachable!(),
            })
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", prop_best * 100.0),
            format!("{:.2}", uniform_best * 100.0),
            share_str,
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!("Ablation C: budget division rule ({total} total trials, top-3 algorithms)"),
            &["dataset", "proportional %", "uniform %", "proportional shares"],
            &rows,
        )
    );
    println!(
        "Expected shape: the two rules are close; proportional pays off when a\n\
         many-parameter algorithm (SVM, Bagging, c50, DeepBoost) is nominated,\n\
         which is the case the paper's rule is designed for."
    );
}
