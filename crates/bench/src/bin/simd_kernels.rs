//! Wall-clock benchmark for the vectorized compute layer
//! (`crates/linalg/src/kernels.rs` and the blocked `Matrix::matmul`),
//! versus the retained scalar oracles (`kernels::scalar`, the serial
//! matmul behind `set_scalar_kernels`, and `fill_histogram_scalar`).
//!
//! Every old-vs-new pair is *asserted equivalent* in-process before
//! timing — bit-identical where the contract promises it (matmul,
//! axpy, histograms), within a tight relative tolerance where lane
//! reassociation is licensed (dot, squared_distance, sum_sq_dev) — so a
//! drift in the equivalence contract fails the bench, not just the test
//! suite.
//!
//! Usage: `simd_kernels [--quick] [--out FILE] [--check FILE]`
//!   --quick   fewer inner iterations / reps (CI smoke)
//!   --out     write the results JSON to FILE
//!   --check   compare against a previously committed JSON; exit non-zero
//!             if any kernel-path timing regressed by more than 5x

use std::hint::black_box;
use std::time::Instant;

use serde_json::{json, Value};
use smartml_classifiers::common::split::{fill_histogram, fill_histogram_scalar, MAX_BINS, NAN_BIN};
use smartml_linalg::{kernels, Matrix};

/// Minimum wall-clock over `reps` runs of `f` (seconds).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.unwrap())
}

/// Deterministic pseudo-random f64s in ±8 (splitmix64 bit mix).
fn seq(n: usize, salt: u64) -> Vec<f64> {
    (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            ((z >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0
        })
        .collect()
}

fn assert_close(fast: f64, slow: f64, what: &str) {
    let tol = 1e-10 * (1.0 + slow.abs());
    assert!((fast - slow).abs() <= tol, "{what}: {fast} vs {slow}");
}

struct BenchResult {
    name: &'static str,
    old_secs: f64,
    new_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let (reps, iters) = if quick { (3, 300) } else { (7, 3000) };
    let n = 4096usize;
    let a = seq(n, 1);
    let b = seq(n, 2);
    let mut results: Vec<BenchResult> = Vec::new();

    // Reduction kernels: 8-lane chunked loops vs the serial oracles.
    {
        assert_close(kernels::dot(&a, &b), kernels::scalar::dot(&a, &b), "dot");
        let (old_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::scalar::dot(black_box(&a), black_box(&b));
            }
            black_box(acc)
        });
        let (new_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::dot(black_box(&a), black_box(&b));
            }
            black_box(acc)
        });
        eprintln!("dot_4096        old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "dot_4096", old_secs, new_secs });
    }
    {
        assert_close(
            kernels::squared_distance(&a, &b),
            kernels::scalar::squared_distance(&a, &b),
            "squared_distance",
        );
        let (old_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::scalar::squared_distance(black_box(&a), black_box(&b));
            }
            black_box(acc)
        });
        let (new_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::squared_distance(black_box(&a), black_box(&b));
            }
            black_box(acc)
        });
        eprintln!("sqdist_4096     old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "sqdist_4096", old_secs, new_secs });
    }
    {
        assert_close(kernels::sum_sq_dev(&a, 0.25), kernels::scalar::sum_sq_dev(&a, 0.25), "sum_sq_dev");
        let (old_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::scalar::sum_sq_dev(black_box(&a), 0.25);
            }
            black_box(acc)
        });
        let (new_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::sum_sq_dev(black_box(&a), 0.25);
            }
            black_box(acc)
        });
        eprintln!("sum_sq_dev_4096 old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "sum_sq_dev_4096", old_secs, new_secs });
    }

    // The opt-in f32 distance path against the f64 serial oracle — the
    // speedup a caller buys with `set_f32_kernels(true)`.
    {
        let (af, bf) = (kernels::to_f32(&a), kernels::to_f32(&b));
        let fast = kernels::dot_f32(&af, &bf);
        let slow = kernels::scalar::dot(&a, &b);
        let bound = n as f64 * 64.0 * 64.0 * kernels::F32_EPS_SCALE;
        assert!((fast - slow).abs() <= bound, "dot_f32: {fast} vs {slow} (bound {bound})");
        let (old_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::scalar::dot(black_box(&a), black_box(&b));
            }
            black_box(acc)
        });
        let (new_secs, _) = time_min(reps, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                acc += kernels::dot_f32(black_box(&af), black_box(&bf));
            }
            black_box(acc)
        });
        eprintln!("dot_f32_4096    old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "dot_f32_4096", old_secs, new_secs });
    }

    // Blocked matmul vs the retained serial path (behind the scalar knob);
    // the contract here is bit-identity.
    {
        let dim = if quick { 128 } else { 256 };
        let m1 = Matrix::from_vec(dim, dim, seq(dim * dim, 3));
        let m2 = Matrix::from_vec(dim, dim, seq(dim * dim, 4));
        let fast = m1.matmul(&m2);
        kernels::set_scalar_kernels(true);
        let slow = m1.matmul(&m2);
        kernels::set_scalar_kernels(false);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "matmul inequivalence");
        }
        let mm_reps = if quick { 3 } else { 5 };
        let (old_secs, _) = time_min(mm_reps, || {
            kernels::set_scalar_kernels(true);
            let p = black_box(&m1).matmul(black_box(&m2));
            kernels::set_scalar_kernels(false);
            p
        });
        let (new_secs, _) = time_min(mm_reps, || black_box(&m1).matmul(black_box(&m2)));
        eprintln!("matmul_{dim}      old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "matmul_256", old_secs, new_secs });
    }

    // Histogram build: trash-bin scatter vs the branch-per-row oracle,
    // bit-identical on every real lane.
    {
        let n_slots = if quick { 2000 } else { 8000 };
        let k = 6usize;
        // Missingness is irregular in real columns — use a hash-based mask
        // (~3%, the typical incomplete-dataset regime) so the oracle's
        // per-row branch cannot be statically predicted.
        let slot_codes: Vec<u8> = (0..n_slots)
            .map(|s| {
                let h = (s as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
                if h % 32 == 0 {
                    NAN_BIN
                } else {
                    ((s * 31) % 64) as u8
                }
            })
            .collect();
        let slot_labels: Vec<u32> = (0..n_slots).map(|s| ((s * 13) % k) as u32).collect();
        let slot_weights: Vec<f64> = (0..n_slots).map(|s| 0.5 + ((s * 29) % 17) as f64 / 16.0).collect();
        let rows: Vec<u32> = (0..n_slots as u32).collect();
        let (mut hist_f, mut tot_f) = (Vec::new(), Vec::new());
        let (mut hist_s, mut tot_s) = (Vec::new(), Vec::new());
        let np_f = fill_histogram(&rows, &slot_codes, &slot_labels, &slot_weights, k, &mut hist_f, &mut tot_f);
        let np_s =
            fill_histogram_scalar(&rows, &slot_codes, &slot_labels, &slot_weights, k, &mut hist_s, &mut tot_s);
        assert_eq!(np_f, np_s, "histogram n_present inequivalence");
        for bin in 0..MAX_BINS {
            for c in 0..k {
                assert_eq!(
                    hist_f[bin * k + c].to_bits(),
                    hist_s[bin * k + c].to_bits(),
                    "histogram inequivalence at bin {bin} class {c}"
                );
            }
        }
        let hist_iters = iters / 3;
        let (old_secs, _) = time_min(reps, || {
            let mut acc = 0usize;
            for _ in 0..hist_iters {
                acc += fill_histogram_scalar(
                    black_box(&rows),
                    &slot_codes,
                    &slot_labels,
                    &slot_weights,
                    k,
                    &mut hist_s,
                    &mut tot_s,
                );
            }
            black_box(acc)
        });
        let (new_secs, _) = time_min(reps, || {
            let mut acc = 0usize;
            for _ in 0..hist_iters {
                acc += fill_histogram(
                    black_box(&rows),
                    &slot_codes,
                    &slot_labels,
                    &slot_weights,
                    k,
                    &mut hist_f,
                    &mut tot_f,
                );
            }
            black_box(acc)
        });
        eprintln!("hist_{n_slots}x{k}     old {old_secs:.4}s  new {new_secs:.4}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "hist_8000x6", old_secs, new_secs });
    }

    let results_json = Value::Object(
        results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    Value::Object(
                        vec![
                            ("old_secs".to_string(), json!(r.old_secs)),
                            ("new_secs".to_string(), json!(r.new_secs)),
                            ("speedup".to_string(), json!(r.old_secs / r.new_secs)),
                        ]
                        .into_iter()
                        .collect(),
                    ),
                )
            })
            .collect(),
    );
    let report = json!({
        "description": "Vectorized compute-layer benchmark: 8-lane chunked kernels, blocked matmul and trash-bin histograms (new) vs retained scalar oracles (old). Min wall-clock over repetitions; equivalence asserted in-process before timing.",
        "command": if quick { "simd_kernels --quick" } else { "simd_kernels" },
        "scales": {
            "vectors": "n=4096 f64 (dot/sqdist/sum_sq_dev; dot_f32 on the f32 copy)",
            "matmul": if quick { "128x128 x 128x128 (quick)" } else { "256x256 x 256x256" },
            "histogram": if quick { "2000 slots x 6 classes, 64 bins (quick)" } else { "8000 slots x 6 classes, 64 bins" }
        },
        "results": results_json,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    // Regression gate: each vectorized path must stay within 5x of the
    // committed reference. Absolute wall-clock is host-dependent, so the
    // gate only catches order-of-magnitude regressions (e.g. a kernel
    // silently falling back to the scalar oracle).
    if let Some(path) = check_path {
        let reference: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read --check file"))
                .expect("parse --check file");
        let mut failed = false;
        for r in &results {
            let Some(ref_new) = reference
                .get("results")
                .and_then(|v| v.get(r.name))
                .and_then(|v| v.get("new_secs"))
                .and_then(|v| v.as_f64())
            else {
                eprintln!("check: no reference entry for {} — skipping", r.name);
                continue;
            };
            // The committed reference is full-scale; --quick runs less
            // work, so the 5x margin holds for both.
            if r.new_secs > 5.0 * ref_new {
                eprintln!(
                    "check FAILED: {} took {:.4}s > 5x reference {:.4}s",
                    r.name, r.new_secs, ref_new
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check passed: all kernel timings within 5x of {path}");
    }
}
