//! Ablation D: ensembling and nomination count — the paper offers "a
//! weighted ensembling output of the top performing algorithms … based on
//! [the user's] choice" and nominates a configurable top-n. This ablation
//! sweeps top-n ∈ {1, 3, 5} with ensembling off/on.

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_bench::{render_table, shared_bootstrapped_kb, Scale};
use smartml_data::synth::benchmark_suite;

fn main() {
    let scale = Scale::from_env();
    let kb = shared_bootstrapped_kb(scale);
    let budget = scale.tuning_trials();
    let suite = benchmark_suite();
    let picks = ["cifar10small", "yeast", "Occupancy"];
    let mut rows = Vec::new();
    for name in picks {
        let bench = suite.iter().find(|b| b.paper_name == name).expect("known benchmark");
        let data = bench.generate(2019);
        let mut cells = vec![name.to_string()];
        for top_n in [1usize, 3, 5] {
            let options = SmartMlOptions {
                budget: Budget::Trials(budget),
                top_n_algorithms: top_n,
                ensembling: true,
                cv_folds: 3,
                seed: 7,
                update_kb: false,
                ..Default::default()
            };
            match SmartML::with_kb(kb.clone(), options).run(&data) {
                Ok(outcome) => {
                    let single = outcome.report.best.validation_accuracy;
                    let ens = outcome
                        .report
                        .ensemble
                        .map(|e| e.validation_accuracy)
                        .unwrap_or(single);
                    cells.push(format!("{:.2}/{:.2}", single * 100.0, ens * 100.0));
                }
                Err(_) => cells.push("-".into()),
            }
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Ablation D: top-n nomination and weighted ensembling ({budget}-trial budget)\ncells: best-single % / weighted-ensemble %"
            ),
            &["dataset", "top-1", "top-3", "top-5"],
            &rows,
        )
    );
    println!(
        "Expected shape: top-3 matches or beats top-1 (more budget spread but better\n\
         coverage); the ensemble column is >= the single column on noisy datasets."
    );
}
