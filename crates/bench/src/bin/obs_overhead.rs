//! Overhead benchmark for the observability layer (`crates/obs`).
//!
//! The contract the rest of the workspace relies on: instrumentation left
//! in hot paths (pool dispatch, SMAC trials, classifier fits) costs a
//! single relaxed atomic load while metrics/tracing are disabled. This
//! bench measures that disabled path directly and *fails* (non-zero exit)
//! if a disabled counter increment exceeds the 5 ns/op budget, so a stray
//! allocation or lock sneaking into the fast path breaks the build, not
//! just a number in a JSON file.
//!
//! Enabled-path numbers are reported for context and gated only loosely
//! (5x against the committed reference, same policy as `tree_kernels`).
//!
//! Usage: `obs_overhead [--quick] [--out FILE] [--check FILE]`
//!   --quick   fewer iterations (CI smoke)
//!   --out     write the results JSON to FILE
//!   --check   compare against a previously committed JSON; exit non-zero
//!             if any path regressed by more than 5x

use std::hint::black_box;
use std::time::Instant;

use serde_json::{json, Value};
use smartml_obs::{
    disable_metrics, disable_tracing, drain_trace, enable_metrics, enable_tracing, span, Counter,
    Histogram,
};

static BENCH_COUNTER: Counter = Counter::new("bench.obs.counter");
static BENCH_HISTOGRAM: Histogram = Histogram::new("bench.obs.histogram");

/// Disabled-path budget from the issue: a counter increment with metrics
/// off must stay under this, or the "near-zero overhead" claim is void.
const DISABLED_BUDGET_NS: f64 = 5.0;

/// Minimum ns/op over `reps` timed runs of `iters` calls to `f`.
fn ns_per_op(reps: usize, iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for i in 0..iters {
            f(i);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e9 / iters as f64
}

struct BenchResult {
    name: &'static str,
    ns_per_op: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let reps = if quick { 3 } else { 7 };
    let cheap_iters: u64 = if quick { 5_000_000 } else { 50_000_000 };
    let span_iters: u64 = if quick { 200_000 } else { 1_000_000 };

    let mut results: Vec<BenchResult> = Vec::new();
    let mut run = |name: &'static str, iters: u64, f: &mut dyn FnMut(u64)| {
        let ns = ns_per_op(reps, iters, f);
        eprintln!("{name:<28} {ns:>8.3} ns/op");
        results.push(BenchResult { name, ns_per_op: ns });
    };

    // Disabled paths: the numbers the whole design hangs on.
    disable_metrics();
    disable_tracing();
    run("counter_inc_disabled", cheap_iters, &mut |_| {
        black_box(&BENCH_COUNTER).inc();
    });
    run("histogram_record_disabled", cheap_iters, &mut |i| {
        black_box(&BENCH_HISTOGRAM).record(i & 0xFFFF);
    });
    run("span_disabled", span_iters, &mut |i| {
        let _g = span!("bench.obs.span", i = i);
        black_box(&_g);
    });

    // Enabled paths: live counters shard across padded atomics, spans take
    // the ring-buffer mutex and format their args.
    enable_metrics();
    run("counter_inc_enabled", cheap_iters, &mut |_| {
        black_box(&BENCH_COUNTER).inc();
    });
    run("histogram_record_enabled", cheap_iters, &mut |i| {
        black_box(&BENCH_HISTOGRAM).record(i & 0xFFFF);
    });
    disable_metrics();

    enable_tracing(None);
    run("span_enabled", span_iters, &mut |i| {
        let _g = span!("bench.obs.span", i = i);
        black_box(&_g);
    });
    disable_tracing();
    let trace = drain_trace();
    assert!(!trace.spans.is_empty(), "enabled spans must land in the ring");

    let results_json = Value::Object(
        results
            .iter()
            .map(|r| (r.name.to_string(), json!({ "ns_per_op": r.ns_per_op })))
            .collect(),
    );
    let report = json!({
        "description": "Observability overhead: ns per operation for counter/histogram/span instrumentation with metrics and tracing disabled (the always-on cost paid by every run) and enabled. Min over repetitions. The disabled counter path is hard-gated at 5 ns/op.",
        "command": if quick { "obs_overhead --quick" } else { "obs_overhead" },
        "budget": { "counter_inc_disabled_max_ns": DISABLED_BUDGET_NS },
        "results": results_json,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    let mut failed = false;

    // Hard gate, independent of any reference file: the disabled counter
    // increment is the cost every instrumented hot path pays per call.
    let disabled =
        results.iter().find(|r| r.name == "counter_inc_disabled").map(|r| r.ns_per_op).unwrap();
    if disabled > DISABLED_BUDGET_NS {
        eprintln!(
            "check FAILED: disabled counter increment {disabled:.3} ns/op exceeds the \
             {DISABLED_BUDGET_NS} ns/op budget — the disabled path is no longer near-zero"
        );
        failed = true;
    } else {
        eprintln!("disabled-path budget ok: {disabled:.3} ns/op <= {DISABLED_BUDGET_NS} ns/op");
    }

    // Soft gate against the committed reference: catches order-of-magnitude
    // regressions on any path without being host-sensitive.
    if let Some(path) = check_path {
        let reference: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read --check file"))
                .expect("parse --check file");
        for r in &results {
            let Some(ref_ns) = reference
                .get("results")
                .and_then(|v| v.get(r.name))
                .and_then(|v| v.get("ns_per_op"))
                .and_then(|v| v.as_f64())
            else {
                eprintln!("check: no reference entry for {} — skipping", r.name);
                continue;
            };
            if r.ns_per_op > 5.0 * ref_ns {
                eprintln!(
                    "check FAILED: {} took {:.3} ns/op > 5x reference {:.3} ns/op",
                    r.name, r.ns_per_op, ref_ns
                );
                failed = true;
            }
        }
        if !failed {
            eprintln!("check passed: all paths within 5x of {path}");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
