//! Paper Table 1: feature comparison between state-of-the-art automated
//! machine-learning frameworks — regenerated from *this workspace's* actual
//! capabilities rather than hard-coded prose: each SmartML row is asserted
//! against the code before printing.

use smartml::bootstrap::BootstrapProfile;
use smartml::{Algorithm, SmartMlOptions};
use smartml_bench::render_table;

fn main() {
    // Verify the claims the SmartML column makes.
    assert_eq!(Algorithm::ALL.len(), 15, "15 classifiers (Table 3)");
    let default_opts = SmartMlOptions::default();
    assert!(default_opts.update_kb, "KB is incrementally updated by default");
    // Ensembling, interpretability and preprocessing are real options.
    let _ = SmartMlOptions::default()
        .with_ensembling(true)
        .with_interpretability(true);
    let _ = BootstrapProfile::default();

    let rows = vec![
        vec![
            "Language".to_string(),
            "Rust (R in paper)".into(),
            "Java".into(),
            "Python".into(),
            "Python".into(),
        ],
        vec!["API".into(), "Yes (JSON, smartml::api)".into(), "No".into(), "No".into(), "Yes".into()],
        vec![
            "Optimization".into(),
            "Bayesian Opt. (SMAC)".into(),
            "Bayesian Opt. (SMAC+TPE)".into(),
            "Bayesian Opt. (SMAC)".into(),
            "Genetic Programming".into(),
        ],
        vec![
            "Algorithms".into(),
            "15 classifiers".into(),
            "27 classifiers".into(),
            "15 classifiers".into(),
            "15 classifiers".into(),
        ],
        vec!["Ensembling".into(), "Yes".into(), "Yes".into(), "Yes".into(), "No".into()],
        vec![
            "Meta-Learning".into(),
            "Yes (incremental KB)".into(),
            "No".into(),
            "Yes (static)".into(),
            "No".into(),
        ],
        vec!["Preprocessing".into(), "Yes".into(), "Yes".into(), "Yes".into(), "No".into()],
        vec![
            "Interpretability".into(),
            "Yes (permutation imp.)".into(),
            "No".into(),
            "No".into(),
            "No".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 1: Comparison between Automated Machine Learning Frameworks",
            &["Feature", "SmartML (this repo)", "Auto-Weka (sim)", "AutoSklearn", "TPOT (lite)"],
            &rows,
        )
    );
    println!(
        "In-repo comparators: baselines::AutoWekaSim (joint SMAC/TPE, no meta-learning),\n\
         baselines::RandomSearchAutoML (Vizier), baselines::TpotLite (GP). AutoSklearn's\n\
         static-KB behaviour is SmartML with options.update_kb = false."
    );
}
