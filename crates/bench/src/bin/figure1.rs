//! Paper Figure 1: the SmartML framework architecture — regenerated as a
//! phase-by-phase execution trace of one real run, showing each box of the
//! figure (input definition → preprocessing → algorithm selection →
//! parameter tuning → output & KB update) doing its work.

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_bench::{shared_bootstrapped_kb, Scale};
use smartml_data::synth::SynthSpec;
use smartml_preprocess::Op;

fn main() {
    let scale = Scale::from_env();
    let kb = shared_bootstrapped_kb(scale);
    let kb_before = (kb.len(), kb.n_runs());
    let data =
        SynthSpec::Blobs { n: 300, d: 5, k: 3, spread: 1.2 }.generate("figure1-walkthrough", 3);

    println!("Figure 1: SmartML framework architecture — live trace");
    println!("=====================================================\n");
    println!("[Input Definition]");
    println!(
        "  dataset '{}': {} rows x {} features, {} classes; budget = {} trials; \n  options: preprocessing=[zv,scale], ensembling=on, interpretability=on\n",
        data.name,
        data.n_rows(),
        data.n_features(),
        data.n_classes(),
        scale.tuning_trials()
    );

    let options = SmartMlOptions {
        preprocessing: vec![Op::Zv, Op::Scale],
        budget: Budget::Trials(scale.tuning_trials()),
        ensembling: true,
        interpretability: true,
        ..Default::default()
    };
    let mut engine = SmartML::with_kb(kb, options);
    let outcome = engine.run(&data).expect("walkthrough run succeeds");
    let report = &outcome.report;

    for phase in &report.phases {
        println!("[{}]  ({:.3}s)", phase.phase, phase.secs);
        println!("  {}\n", phase.detail);
        if phase.phase == "Algorithm Selection" {
            println!("  nearest KB datasets (Retrieve arrow):");
            for (id, dist) in report.kb_neighbors.iter().take(5) {
                println!("    {id:<16} distance {dist:.3}");
            }
            println!();
        }
    }
    println!("[Computing Output]");
    print!("{}", report.render());
    let kb_after = (engine.kb().len(), engine.kb().n_runs());
    println!(
        "\n[Update arrow] knowledge base: {} datasets/{} runs -> {} datasets/{} runs",
        kb_before.0, kb_before.1, kb_after.0, kb_after.1
    );
    assert!(kb_after.1 > kb_before.1, "the Update arrow must add runs");
}
