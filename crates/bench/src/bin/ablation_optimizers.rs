//! Ablation F (extension): optimiser shootout — SMAC (the paper's choice)
//! vs TPE, successive halving, grid search, and random search, tuning the
//! same algorithm on the same dataset with the same budget.
//!
//! The paper asserts SMAC's robustness as the reason for choosing it; this
//! ablation measures that choice against the alternatives on two contrasting
//! landscapes: SVM on a gisette-like task (wide space, strong signal) and
//! RandomForest on a madelon-like task (narrower space, noisy signal).

use smartml::Algorithm;
use smartml_bench::{render_table, Scale};
use smartml_data::synth::benchmark_suite;
use smartml_data::{accuracy, train_valid_split, Dataset};
use smartml_smac::{
    ClassifierObjective, GridSearch, OptOptions, Optimizer, RandomSearch, Smac,
    SuccessiveHalving, Tpe,
};

fn tune(
    optimizer: &dyn Optimizer,
    algorithm: Algorithm,
    data: &Dataset,
    train: &[usize],
    valid: &[usize],
    trials: usize,
) -> f64 {
    let objective = ClassifierObjective::new(algorithm, data, train, 3, 7);
    let result = optimizer.optimize(
        &algorithm.param_space(),
        &objective,
        &OptOptions { max_trials: trials, seed: 13, ..Default::default() },
    );
    match algorithm.build(&result.best_config).fit(data, train) {
        Ok(model) => accuracy(&data.labels_for(valid), &model.predict(data, valid)),
        Err(_) => 0.0,
    }
}

fn main() {
    let scale = Scale::from_env();
    let trials = scale.tuning_trials();
    let suite = benchmark_suite();
    let tasks: Vec<(&str, Algorithm)> =
        vec![("gisette", Algorithm::Svm), ("madelon", Algorithm::RandomForest)];
    let optimizers: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("SMAC (paper)", Box::new(Smac::default())),
        ("TPE", Box::new(Tpe::default())),
        ("SuccessiveHalving", Box::new(SuccessiveHalving::default())),
        ("GridSearch", Box::new(GridSearch)),
        ("RandomSearch", Box::new(RandomSearch)),
    ];
    let mut rows = Vec::new();
    for (dataset_name, algorithm) in &tasks {
        let bench = suite
            .iter()
            .find(|b| b.paper_name == *dataset_name)
            .expect("known benchmark");
        let data = bench.generate(2019);
        let (train, valid) = train_valid_split(&data, 0.3, 7);
        let mut cells = vec![format!("{} / {}", dataset_name, algorithm.paper_name())];
        for (_, opt) in &optimizers {
            let acc = tune(opt.as_ref(), *algorithm, &data, &train, &valid, trials);
            cells.push(format!("{:.2}", acc * 100.0));
        }
        rows.push(cells);
    }
    let mut header: Vec<&str> = vec!["task"];
    for (name, _) in &optimizers {
        header.push(name);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Ablation F (extension): optimiser shootout, {trials} trials each, 3-fold CV objective"
            ),
            &header,
            &rows,
        )
    );
    println!(
        "Reading: at small budgets the optimisers are statistically interchangeable —\n\
         a model-based searcher needs more observations than the budget allows before\n\
         its surrogate pays off. This is exactly why SmartML's small-budget edge comes\n\
         from the KB's warm starts (Ablation A), not from the optimiser choice."
    );
}
