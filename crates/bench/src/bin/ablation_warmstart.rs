//! Ablation A: meta-learning warm start vs cold start — the paper's central
//! claim: "SmartML can outperform other tools especially at small running
//! time budgets by reaching better parameter configurations faster."
//!
//! For a sweep of budgets, compares (a) SmartML with the bootstrapped KB,
//! (b) SmartML with an empty KB (cold portfolio, no warm starts), and
//! (c) the Auto-Weka joint optimiser — anytime accuracy at each budget.

use smartml::{Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_baselines::AutoWekaSim;
use smartml_bench::{render_table, shared_bootstrapped_kb, threads_from_env, Scale};
use smartml_data::synth::benchmark_suite;
use smartml_data::train_valid_split;

fn main() {
    let scale = Scale::from_env();
    let kb = shared_bootstrapped_kb(scale);
    let budgets: &[usize] = match scale {
        Scale::Quick => &[6, 12, 24],
        Scale::Full => &[6, 12, 24, 48, 96],
    };
    // Three representative benchmark rows with distinct KB regions.
    let suite = benchmark_suite();
    let picks = ["madelon", "yeast", "kin8nm"];
    let mut rows = Vec::new();
    for name in picks {
        let bench = suite.iter().find(|b| b.paper_name == name).expect("known benchmark");
        let data = bench.generate(2019);
        let (train, valid) = train_valid_split(&data, 0.3, 7);
        for &budget in budgets {
            let make_options = || SmartMlOptions {
                budget: Budget::Trials(budget),
                top_n_algorithms: 3,
                cv_folds: 3,
                valid_fraction: 0.3,
                seed: 7,
                update_kb: false,
                n_threads: threads_from_env(),
                ..Default::default()
            };
            let warm_acc = SmartML::with_kb(kb.clone(), make_options())
                .run(&data)
                .map(|o| o.report.best.validation_accuracy)
                .unwrap_or(0.0);
            let cold_acc = SmartML::with_kb(KnowledgeBase::new(), make_options())
                .run(&data)
                .map(|o| o.report.best.validation_accuracy)
                .unwrap_or(0.0);
            let aw = AutoWekaSim {
                cv_folds: 3,
                seed: 11,
                n_threads: threads_from_env(),
                ..Default::default()
            }
            .run(&data, &train, &valid, budget, None);
            rows.push(vec![
                name.to_string(),
                budget.to_string(),
                format!("{:.2}", warm_acc * 100.0),
                format!("{:.2}", cold_acc * 100.0),
                format!("{:.2}", aw.validation_accuracy * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation A: warm start (KB) vs cold start vs Auto-Weka joint search,\nanytime accuracy by trial budget",
            &["dataset", "budget", "SmartML+KB %", "SmartML cold %", "Auto-Weka %"],
            &rows,
        )
    );
    println!(
        "Expected shape: the +KB column dominates at the smallest budgets and the\n\
         gap narrows as the budget grows (all optimisers converge eventually)."
    );
}
