//! Paper Table 3: the integrated classifier algorithms with their
//! categorical/numeric hyperparameter counts — printed from the live
//! registry and asserted against the paper's numbers.

use smartml::Algorithm;
use smartml_bench::render_table;

/// `(categorical, numeric)` counts exactly as printed in paper Table 3.
const PAPER_COUNTS: [(&str, usize, usize, &str); 15] = [
    ("SVM", 1, 4, "e1071"),
    ("NaiveBayes", 0, 2, "klaR"),
    ("KNN", 0, 1, "FNN"),
    ("Bagging", 0, 5, "ipred"),
    ("part", 1, 2, "RWeka"),
    ("J48", 1, 2, "RWeka"),
    ("RandomForest", 0, 3, "randomForest"),
    ("c50", 3, 2, "C50"),
    ("rpart", 0, 4, "rpart"),
    ("LDA", 1, 1, "MASS"),
    ("PLSDA", 1, 1, "caret"),
    ("LMT", 0, 1, "RWeka"),
    ("RDA", 0, 2, "klaR"),
    ("NeuralNet", 0, 1, "nnet"),
    ("DeepBoost", 1, 4, "deepboost"),
];

fn main() {
    let mut rows = Vec::new();
    for (alg, &(name, cat, num, pkg)) in Algorithm::ALL.iter().zip(&PAPER_COUNTS) {
        let spec = alg.spec();
        assert_eq!(alg.paper_name(), name, "registry order matches the paper");
        assert_eq!(spec.n_categorical, cat, "{name}: categorical count matches Table 3");
        assert_eq!(spec.n_numeric, num, "{name}: numeric count matches Table 3");
        assert_eq!(alg.paper_package(), pkg, "{name}: package column matches Table 3");
        let params: Vec<String> = spec
            .space
            .params
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        rows.push(vec![
            name.to_string(),
            cat.to_string(),
            num.to_string(),
            pkg.to_string(),
            params.join(","),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 3: Integrated Classifier Algorithms (counts verified against the registry)",
            &["Algorithm", "categorical", "numerical", "paper package", "tuned parameters (this repo)"],
            &rows,
        )
    );
    println!("All 15 rows verified: registry parameter-space shapes match paper Table 3.");
}
