//! Wall-clock benchmark for the shared tree-training kernel layer
//! (`crates/classifiers/src/common/split.rs`): presorted exact split
//! finding and the opt-in histogram path, versus the retained naive
//! per-node-sorting oracles.
//!
//! Every old-vs-new pair is also *asserted equivalent* in-process before
//! timing, so a regression in the bit-exactness contract fails the bench,
//! not just the test suite.
//!
//! Usage: `tree_kernels [--quick] [--out FILE] [--check FILE]`
//!   --quick   smaller scales / fewer reps (CI smoke)
//!   --out     write the results JSON to FILE
//!   --check   compare against a previously committed JSON; exit non-zero
//!             if any kernel-path timing regressed by more than 5x

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use smartml_classifiers::common::split::{BinnedColumns, RankedBase};
use smartml_classifiers::common::tree::{
    oracle, DecisionTree, Pruning, SplitCriterion, TreeConfig,
};
use smartml_data::synth::gaussian_blobs;
use smartml_data::Dataset;
use smartml_smac::RandomForestSurrogate;

/// Minimum wall-clock over `reps` runs of `f` (seconds).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.unwrap())
}

/// Bootstrap picks for tree `t` of a forest, shared by both kernel paths
/// so old and new time the exact same work.
fn bootstrap_picks(n: usize, t: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0xB007 ^ t);
    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
}

fn rf_config(mtry: usize, t: u64) -> TreeConfig {
    TreeConfig {
        criterion: SplitCriterion::Gini,
        max_depth: 40,
        min_split: 2.0,
        min_leaf: 1.0,
        cp: 0.0,
        mtry: Some(mtry),
        seed: 0x5EED ^ t,
        pruning: Pruning::None,
        max_bins: 0,
    }
}

fn forest_new(data: &Dataset, rows: &[usize], ntree: usize, mtry: usize) -> Vec<DecisionTree> {
    // Mirrors fit_ensemble: value ranks built once, each tree's rank-radix
    // kernel gathers its resample's ranks from the shared base.
    let weights = vec![1.0; data.n_rows()];
    let base = RankedBase::build(data, rows);
    (0..ntree)
        .map(|t| {
            let picks = bootstrap_picks(rows.len(), t as u64);
            let sample: Vec<usize> = picks.iter().map(|&p| rows[p as usize]).collect();
            DecisionTree::fit_weighted_ranked(
                data,
                &sample,
                &weights,
                &rf_config(mtry, t as u64),
                &base,
                &picks,
            )
        })
        .collect()
}

fn forest_oracle(data: &Dataset, rows: &[usize], ntree: usize, mtry: usize) -> Vec<DecisionTree> {
    let weights = vec![1.0; data.n_rows()];
    (0..ntree)
        .map(|t| {
            let picks = bootstrap_picks(rows.len(), t as u64);
            let sample: Vec<usize> = picks.iter().map(|&p| rows[p as usize]).collect();
            oracle::fit_weighted(data, &sample, &weights, &rf_config(mtry, t as u64))
        })
        .collect()
}

fn forest_binned(
    data: &Dataset,
    rows: &[usize],
    ntree: usize,
    mtry: usize,
    max_bins: usize,
) -> Vec<DecisionTree> {
    let weights = vec![1.0; data.n_rows()];
    let bins = BinnedColumns::fit(data, rows, max_bins);
    (0..ntree)
        .map(|t| {
            let picks = bootstrap_picks(rows.len(), t as u64);
            let sample: Vec<usize> = picks.iter().map(|&p| rows[p as usize]).collect();
            let mut config = rf_config(mtry, t as u64);
            config.max_bins = max_bins;
            DecisionTree::fit_weighted_binned(data, &sample, &weights, &config, &bins)
        })
        .collect()
}

fn assert_forests_equal(data: &Dataset, rows: &[usize], a: &[DecisionTree], b: &[DecisionTree]) {
    for (ta, tb) in a.iter().zip(b) {
        assert_eq!(ta.n_leaves(), tb.n_leaves(), "kernel inequivalence: leaf count");
        assert_eq!(
            ta.predict_proba(data, rows),
            tb.predict_proba(data, rows),
            "kernel inequivalence: probas"
        );
    }
}

fn c45_config() -> TreeConfig {
    TreeConfig {
        criterion: SplitCriterion::GainRatio,
        max_depth: 30,
        min_split: 4.0,
        min_leaf: 2.0,
        cp: 0.0,
        mtry: None,
        seed: 7,
        pruning: Pruning::Pessimistic { cf: 0.25 },
        max_bins: 0,
    }
}

fn surrogate_data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(42);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| (rng.gen_range(0..32u32) as f64) / 31.0).collect())
        .collect();
    let ys: Vec<f64> =
        xs.iter().map(|x| x.iter().enumerate().map(|(j, v)| (v - 0.3).abs() * (j + 1) as f64).sum())
            .collect();
    (xs, ys)
}

struct BenchResult {
    name: &'static str,
    old_secs: Option<f64>,
    new_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let (reps, ntree_small, ntree_medium) = if quick { (2, 4, 3) } else { (5, 12, 12) };
    let small = gaussian_blobs("small", 400, 8, 3, 1.1, 11);
    let medium_n = if quick { 800 } else { 2000 };
    let medium = gaussian_blobs("medium", medium_n, 50, 5, 1.4, 12);
    let mut results: Vec<BenchResult> = Vec::new();

    // Random forest, small scale: old vs new, equivalence asserted.
    {
        let rows = small.all_rows();
        let new_f = forest_new(&small, &rows, ntree_small, 3);
        let old_f = forest_oracle(&small, &rows, ntree_small, 3);
        assert_forests_equal(&small, &rows, &new_f, &old_f);
        let (old_secs, _) = time_min(reps, || forest_oracle(&small, &rows, ntree_small, 3));
        let (new_secs, _) = time_min(reps, || forest_new(&small, &rows, ntree_small, 3));
        eprintln!("rf_small        old {old_secs:.3}s  new {new_secs:.3}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "rf_small", old_secs: Some(old_secs), new_secs });
    }

    // Random forest, medium scale (n=2000, F=50): the headline number.
    {
        let rows = medium.all_rows();
        let mtry = 7; // ~sqrt(50)
        let new_f = forest_new(&medium, &rows, ntree_medium, mtry);
        let old_f = forest_oracle(&medium, &rows, ntree_medium, mtry);
        assert_forests_equal(&medium, &rows, &new_f, &old_f);
        let (old_secs, _) = time_min(reps, || forest_oracle(&medium, &rows, ntree_medium, mtry));
        let (new_secs, _) = time_min(reps, || forest_new(&medium, &rows, ntree_medium, mtry));
        eprintln!("rf_medium       old {old_secs:.3}s  new {new_secs:.3}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "rf_medium", old_secs: Some(old_secs), new_secs });
    }

    // Binned path at medium scale (opt-in, deterministic, not bit-equal to
    // exact): determinism spot check, then timing against the same naive
    // oracle baseline — this is the RF-training speedup a caller buys by
    // setting `max_bins`.
    {
        let rows = medium.all_rows();
        let a = forest_binned(&medium, &rows, ntree_medium, 7, 32);
        let b = forest_binned(&medium, &rows, ntree_medium, 7, 32);
        assert_forests_equal(&medium, &rows, &a, &b);
        let (old_secs, _) = time_min(reps, || forest_oracle(&medium, &rows, ntree_medium, 7));
        let (new_secs, _) = time_min(reps, || forest_binned(&medium, &rows, ntree_medium, 7, 32));
        eprintln!("rf_medium_b32   old {old_secs:.3}s  new {new_secs:.3}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "rf_medium_binned32", old_secs: Some(old_secs), new_secs });
    }

    // Single C4.5 tree (gain ratio + pessimistic pruning) at medium scale.
    {
        let rows = medium.all_rows();
        let config = c45_config();
        let new_t = DecisionTree::fit(&medium, &rows, &config);
        let old_t = oracle::fit(&medium, &rows, &config);
        assert_eq!(new_t.predict_proba(&medium, &rows), old_t.predict_proba(&medium, &rows));
        let (old_secs, _) = time_min(reps, || oracle::fit(&medium, &rows, &config));
        let (new_secs, _) = time_min(reps, || DecisionTree::fit(&medium, &rows, &config));
        eprintln!("c45_medium      old {old_secs:.3}s  new {new_secs:.3}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "c45_medium", old_secs: Some(old_secs), new_secs });
    }

    // SMAC surrogate forest (regression trees over configuration vectors).
    {
        let (xs, ys) = surrogate_data(if quick { 200 } else { 500 }, 12);
        let n_trees = if quick { 8 } else { 20 };
        let new_s = RandomForestSurrogate::fit(&xs, &ys, n_trees, 3);
        let old_s = RandomForestSurrogate::fit_oracle(&xs, &ys, n_trees, 3);
        for probe in xs.iter().step_by(17) {
            assert_eq!(new_s.predict(probe), old_s.predict(probe), "surrogate inequivalence");
        }
        let (old_secs, _) = time_min(reps, || RandomForestSurrogate::fit_oracle(&xs, &ys, n_trees, 3));
        let (new_secs, _) = time_min(reps, || RandomForestSurrogate::fit(&xs, &ys, n_trees, 3));
        eprintln!("surrogate       old {old_secs:.3}s  new {new_secs:.3}s  ({:.2}x)", old_secs / new_secs);
        results.push(BenchResult { name: "surrogate", old_secs: Some(old_secs), new_secs });
    }

    let results_json = Value::Object(
        results
            .iter()
            .map(|r| {
                let mut fields = vec![("new_secs".to_string(), json!(r.new_secs))];
                if let Some(old) = r.old_secs {
                    fields.insert(0, ("old_secs".to_string(), json!(old)));
                    fields.push(("speedup".to_string(), json!(old / r.new_secs)));
                }
                (r.name.to_string(), Value::Object(fields))
            })
            .collect(),
    );
    let report = json!({
        "description": "Tree-training kernel benchmark: presorted/binned split finding (new) vs retained naive per-node-sort oracles (old). Min wall-clock over repetitions; equivalence of old/new asserted in-process before timing.",
        "command": if quick { "tree_kernels --quick" } else { "tree_kernels" },
        "scales": {
            "small": "n=400, F=8, k=3",
            "medium": if quick { "n=800, F=50, k=5 (quick)" } else { "n=2000, F=50, k=5" }
        },
        "results": results_json,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    // Regression gate: each timed kernel path must stay within 5x of the
    // committed reference. Absolute wall-clock is host-dependent, so the
    // gate only catches order-of-magnitude regressions (e.g. the naive
    // path sneaking back in).
    if let Some(path) = check_path {
        let reference: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read --check file"))
                .expect("parse --check file");
        let mut failed = false;
        for r in &results {
            let Some(ref_new) = reference
                .get("results")
                .and_then(|v| v.get(r.name))
                .and_then(|v| v.get("new_secs"))
                .and_then(|v| v.as_f64())
            else {
                eprintln!("check: no reference entry for {} — skipping", r.name);
                continue;
            };
            // The committed reference is full-scale; --quick runs less work,
            // so the 5x margin holds for both.
            if r.new_secs > 5.0 * ref_new {
                eprintln!(
                    "check FAILED: {} took {:.3}s > 5x reference {:.3}s",
                    r.name, r.new_secs, ref_new
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check passed: all kernel timings within 5x of {path}");
    }
}
