//! Wall-clock benchmark for asynchronous successive halving (ASHA)
//! versus the synchronous rung-barrier race (`SuccessiveHalving`) on
//! heterogeneous trial costs at pool width 8.
//!
//! The objective sleeps per fold, and one in `hmod` (config, fold)
//! pairs is a straggler taking `heavy` ms instead of `light` ms.
//! Stragglers are hashed per (config, fold) — not per config — so the
//! expected cost of any fold-budget allocation is identical across
//! optimisers and the comparison isolates *scheduling*: the synchronous
//! race drains its pool at every rung barrier waiting for stragglers,
//! while ASHA backfills with rung-0 injections and speculative
//! prefetch. Both optimisers burn the same fold-evaluation budget, and
//! wall-clock is summed over several seeds so that which configs happen
//! to hit stragglers averages out.
//!
//! Before timing, the determinism contract is asserted in-process: both
//! optimisers must produce byte-identical histories at pool widths 1
//! and 8 (the width-1 ASHA run doubles as the serial reference timing).
//!
//! Usage: `asha_bench [--quick] [--out FILE] [--check FILE]`
//!   --quick   smaller budget / fewer seeds and reps (CI smoke)
//!   --trials  override the trial budget (default 24, quick 12)
//!   --window  override ASHA's async window (default 64)
//!   --light   light fold cost in ms (default 2, quick 1)
//!   --heavy   straggler fold cost in ms (default 600, quick 60)
//!   --hmod    1-in-hmod (config, fold) pairs are stragglers (default 32)
//!   --eta     rung reduction factor for both optimisers (default 2)
//!   --folds   cross-validation folds = top fidelity (default 8)
//!   --out     write the results JSON to FILE
//!   --check   compare against a previously committed JSON; exit
//!             non-zero if the ASHA timing regressed by more than 5x,
//!             or if the measured ASHA-vs-sync speedup fell below 1.2x
//!             (the committed full-scale run shows >= 1.5x)

use std::time::{Duration, Instant};

use serde_json::{json, Value};
use smartml_classifiers::{ParamConfig, ParamSpec, ParamSpace};
use smartml_runtime::Pool;
use smartml_smac::{Asha, OptOptions, OptResult, Optimizer, StaticObjective, SuccessiveHalving};

/// Minimum wall-clock over `reps` runs of `f` (seconds).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.unwrap())
}

/// Deterministic cost class for one fold evaluation: one in `hmod`
/// (config, fold) pairs is a straggler, via a fixed-point hash of `x`
/// mixed with the fold index. Hashing per (config, fold) rather than
/// per config keeps the *expected* cost of any fold-budget allocation
/// identical across optimisers — the comparison then measures how each
/// schedules around stragglers, not which configs it happened to draw.
fn is_heavy(config: &ParamConfig, fold: usize, hmod: u64) -> bool {
    let h = (((config.f64_or("x", 0.0) * 1e6) as u64) ^ (fold as u64).wrapping_mul(0x9E37_79B9))
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    h % hmod == 0
}

fn space_1d() -> ParamSpace {
    ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
}

/// A fold evaluation that sleeps its cost. Score peaks at x = 0.6
/// independently of cost, so stragglers are promoted at the usual rate.
fn sleepy_objective(
    folds: usize,
    light_ms: u64,
    heavy_ms: u64,
    hmod: u64,
) -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
    StaticObjective {
        folds,
        f: move |config: &ParamConfig, fold| {
            let ms = if is_heavy(config, fold, hmod) { heavy_ms } else { light_ms };
            std::thread::sleep(Duration::from_millis(ms));
            1.0 - (config.f64_or("x", 0.0) - 0.6).powi(2) + fold as f64 * 1e-3
        },
    }
}

/// The width-independent shape of a run: per-trial config, bit-exact
/// score, and fidelity, in ledger order.
fn fingerprint(r: &OptResult) -> Vec<(String, u64, usize)> {
    r.history
        .iter()
        .map(|t| (t.config.summary(), t.score.to_bits(), t.folds_evaluated))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");

    let (reps, seeds, default_trials, default_light, default_heavy): (_, &[u64], _, _, _) =
        if quick { (1, &[17, 18], 12, 1, 60) } else { (2, &[17, 18, 19], 24, 2, 600) };
    let light_ms = flag_value("--light")
        .map(|v| v.parse().expect("--light takes ms"))
        .unwrap_or(default_light);
    let heavy_ms = flag_value("--heavy")
        .map(|v| v.parse().expect("--heavy takes ms"))
        .unwrap_or(default_heavy);
    let max_trials = flag_value("--trials")
        .map(|v| v.parse().expect("--trials takes a number"))
        .unwrap_or(default_trials);
    let window = flag_value("--window")
        .map(|v| v.parse().expect("--window takes a number"))
        .unwrap_or(64);
    let hmod = flag_value("--hmod")
        .map(|v| v.parse().expect("--hmod takes a number"))
        .unwrap_or(32);
    let eta = flag_value("--eta")
        .map(|v| v.parse().expect("--eta takes a number"))
        .unwrap_or(2);
    let folds = flag_value("--folds")
        .map(|v| v.parse().expect("--folds takes a number"))
        .unwrap_or(8);
    let space = space_1d();
    let objective = sleepy_objective(folds, light_ms, heavy_ms, hmod);
    let options = |width: usize, seed: u64| OptOptions {
        max_trials,
        seed,
        pool: Pool::new(width),
        ..Default::default()
    };
    let sync = SuccessiveHalving::new(eta);
    let asha = Asha { eta, async_window: window };

    // Determinism contract before any timing: widths 1 and 8 must agree
    // byte-for-byte for both optimisers. The width-1 ASHA run doubles as
    // the serial reference timing below.
    let (asha_w1_secs, asha_serial) =
        time_min(1, || asha.optimize(&space, &objective, &options(1, seeds[0])));
    let asha_wide = asha.optimize(&space, &objective, &options(8, seeds[0]));
    assert_eq!(
        fingerprint(&asha_serial),
        fingerprint(&asha_wide),
        "ASHA diverged between widths 1 and 8"
    );
    let sync_serial = sync.optimize(&space, &objective, &options(1, seeds[0]));
    let sync_wide = sync.optimize(&space, &objective, &options(8, seeds[0]));
    assert_eq!(
        fingerprint(&sync_serial),
        fingerprint(&sync_wide),
        "synchronous halving diverged between widths 1 and 8"
    );

    // The headline: same budget, same width, barrier vs barrier-free.
    // Wall-clock is summed across seeds (min over reps per seed) so the
    // heavy-fold luck of any single config stream averages out.
    let mut sync_secs = 0.0;
    let mut asha_secs = 0.0;
    let mut sync_best: f64 = 0.0;
    let mut asha_best: f64 = 0.0;
    for &seed in seeds {
        let (s, sr) = time_min(reps, || sync.optimize(&space, &objective, &options(8, seed)));
        let (a, ar) = time_min(reps, || asha.optimize(&space, &objective, &options(8, seed)));
        sync_secs += s;
        asha_secs += a;
        sync_best = sync_best.max(sr.best_score);
        asha_best = asha_best.max(ar.best_score);
        eprintln!("seed {seed}: sync {s:.3}s  asha {a:.3}s  ({:.2}x)", s / a);
    }
    let speedup = sync_secs / asha_secs;
    eprintln!(
        "asha_vs_sync_w8   sync {sync_secs:.3}s  asha {asha_secs:.3}s  ({speedup:.2}x over \
         {} seeds)  [sync best {sync_best:.4} / asha best {asha_best:.4}]",
        seeds.len()
    );
    eprintln!(
        "asha_w1           {asha_w1_secs:.3}s  (w8 scales {:.2}x)",
        asha_w1_secs / (asha_secs / seeds.len() as f64)
    );

    let report = json!({
        "description": "ASHA vs synchronous successive halving at pool width 8 on heterogeneous trial costs (1-in-hmod (config, fold) evaluations are stragglers). Same fold-evaluation budget; wall-clock summed over seeds, min over repetitions; width-1/8 byte-identity of both optimisers asserted in-process before timing.",
        "command": if quick { "asha_bench --quick" } else { "asha_bench" },
        "scales": {
            "budget": format!("max_trials={max_trials} x {folds} folds x {} seeds", seeds.len()),
            "fold_cost": format!("light {light_ms}ms / heavy {heavy_ms}ms (1 in {hmod}) per fold"),
            "asha_window": window,
        },
        "results": {
            "asha_vs_sync_w8": {
                "old_secs": sync_secs,
                "new_secs": asha_secs,
                "speedup": speedup,
            },
            "asha_w1": { "new_secs": asha_w1_secs },
        },
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    // Regression gate: the measured speedup must clear the 1.2x floor
    // (the committed full-scale run shows >= 1.5x; --quick runs smaller
    // budgets where the barrier tail is a thinner slice, hence the lower
    // floor), and the ASHA timing must stay within 5x of the committed
    // reference. Absolute wall-clock is host-dependent, so the watchdog
    // only catches order-of-magnitude regressions (e.g. the stream
    // degenerating to a barrier per job); timings are normalised to
    // per-seed averages since --quick runs fewer seeds than the
    // committed full-scale reference.
    if let Some(path) = check_path {
        let reference: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read --check file"))
                .expect("parse --check file");
        let mut failed = false;
        if speedup < 1.2 {
            eprintln!("check FAILED: ASHA speedup {speedup:.2}x below the 1.2x floor");
            failed = true;
        }
        if let Some(ref_new) = reference
            .get("results")
            .and_then(|v| v.get("asha_vs_sync_w8"))
            .and_then(|v| v.get("new_secs"))
            .and_then(|v| v.as_f64())
        {
            let per_seed = asha_secs / seeds.len() as f64;
            // The committed reference sums three seeds at full scale.
            if per_seed > 5.0 * (ref_new / 3.0) {
                eprintln!(
                    "check FAILED: asha_vs_sync_w8 took {per_seed:.3}s/seed > 5x reference \
                     {:.3}s/seed",
                    ref_new / 3.0
                );
                failed = true;
            }
        } else {
            eprintln!("check: no reference entry for asha_vs_sync_w8 — skipping watchdog");
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check passed: speedup {speedup:.2}x >= 1.2x and timing within 5x of {path}");
    }
}
