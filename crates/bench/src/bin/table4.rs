//! Paper Table 4: the headline experiment — SmartML vs Auto-Weka on the 10
//! benchmark datasets with a shared per-dataset budget and SmartML's KB
//! bootstrapped from 50 datasets.
//!
//! Substitutions (DESIGN.md): the datasets are shape/difficulty-matched
//! synthetic analogues; the 10-minute wall-clock budget becomes an equal
//! trial budget for both systems. The *shape* of the result — SmartML
//! matching or beating the joint-space optimiser at a small budget on most
//! rows, with the biggest gaps where the KB has close neighbours — is the
//! reproduction target, not the absolute accuracies.

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_baselines::AutoWekaSim;
use smartml_bench::{render_table, shared_bootstrapped_kb, threads_from_env, Scale};
use smartml_data::synth::benchmark_suite;
use smartml_data::train_valid_split;

fn main() {
    let scale = Scale::from_env();
    let trials = scale.tuning_trials();
    // SMARTML_BENCH_SEEDS > 1 averages each cell over several split/tuner
    // seeds (slower, lower variance).
    let n_seeds: u64 = std::env::var("SMARTML_BENCH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, 10);
    let kb = shared_bootstrapped_kb(scale);
    let mut rows = Vec::new();
    let mut smartml_wins = 0usize;
    let mut ties = 0usize;
    let suite = benchmark_suite();
    for bench in &suite {
        let data = bench.generate(2019);
        let mut aw_total = 0.0;
        let mut sm_total = 0.0;
        let mut last_winners = (String::new(), String::new());
        for seed_idx in 0..n_seeds {
            let split_seed = 7 + seed_idx;
            let (train, valid) = train_valid_split(&data, 0.3, split_seed);

            // Auto-Weka sim: joint-space SMAC, no meta-learning, same budget.
            let aw = AutoWekaSim {
                cv_folds: 3,
                seed: 11 + seed_idx,
                n_threads: threads_from_env(),
                ..Default::default()
            }
            .run(&data, &train, &valid, trials, None);

            // SmartML: KB-nominated algorithms + warm-started SMAC, same budget.
            let options = SmartMlOptions {
                budget: Budget::Trials(trials),
                top_n_algorithms: 3,
                cv_folds: 3,
                valid_fraction: 0.3,
                seed: split_seed,
                update_kb: false, // frozen KB: identical conditions across rows
                n_threads: threads_from_env(),
                ..Default::default()
            };
            let mut engine = SmartML::with_kb(kb.clone(), options);
            let run = engine.run(&data).expect("benchmark dataset runs");
            aw_total += aw.validation_accuracy;
            sm_total += run.report.best.validation_accuracy;
            last_winners = (
                run.report.best.algorithm.paper_name().to_string(),
                aw.algorithm.paper_name().to_string(),
            );
        }
        let aw_acc = aw_total / n_seeds as f64;
        let sm_acc = sm_total / n_seeds as f64;

        if sm_acc > aw_acc + 1e-9 {
            smartml_wins += 1;
        } else if (sm_acc - aw_acc).abs() <= 1e-9 {
            ties += 1;
        }
        rows.push(vec![
            bench.paper_name.to_string(),
            format!("{}", data.n_features()),
            format!("{}", data.n_classes()),
            format!("{}", data.n_rows()),
            format!("{:.2}", aw_acc * 100.0),
            format!("{:.2}", sm_acc * 100.0),
            format!("{:.2}", bench.paper_autoweka_acc),
            format!("{:.2}", bench.paper_smartml_acc),
            format!("{} ({})", last_winners.0, last_winners.1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 4: Performance Comparison — SmartML vs Auto-Weka (sim), {trials} trials each,\nKB bootstrapped with 50 synthetic datasets (scale: {scale:?}, {n_seeds} seed(s))"
            ),
            &[
                "Dataset",
                "#Att",
                "#Cls",
                "#Inst",
                "Auto-Weka %",
                "SmartML %",
                "paper AW %",
                "paper SM %",
                "winner alg (AW alg)",
            ],
            &rows,
        )
    );
    println!(
        "SmartML wins {smartml_wins}/{} (ties {ties}). Paper reports 10/10 wins on the real\n\
         datasets; the reproduced shape holds when SmartML wins or ties the majority of rows.",
        suite.len()
    );
}
