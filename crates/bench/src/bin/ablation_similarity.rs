//! Ablation E (extension): meta-feature-only similarity vs
//! landmarker-extended similarity.
//!
//! The paper's 25 meta-features are *descriptive* (counts, moments,
//! correlations); landmarkers are *behavioural* (how well a decision stump
//! and a nearest-centroid model actually do). This ablation measures
//! selection quality under both metrics: does the KB's top-3 nomination
//! contain the dataset's true best algorithm family (established by
//! exhaustively evaluating all 15 default configurations)?

use smartml::bootstrap::bootstrap_dataset;
use smartml::{Algorithm, KnowledgeBase, ParamConfig};
use smartml_bench::{render_table, Scale};
use smartml_data::synth::{benchmark_suite, kb_bootstrap_corpus};
use smartml_data::{accuracy, train_valid_split};
use smartml_kb::QueryOptions;
use smartml_metafeatures::{extract, landmarkers};

fn main() {
    let scale = Scale::from_env();
    // Build a KB with landmarkers (bootstrap_dataset records them).
    let profile = scale.bootstrap_profile();
    let mut kb = KnowledgeBase::new();
    for (i, (name, spec)) in kb_bootstrap_corpus().iter().enumerate() {
        let data = spec.generate(name, profile.seed ^ i as u64);
        bootstrap_dataset(&mut kb, &data, &profile);
    }

    let mut rows = Vec::new();
    let mut plain_hits = 0usize;
    let mut extended_hits = 0usize;
    let suite = benchmark_suite();
    for bench in &suite {
        let data = bench.generate(2019);
        let (train, valid) = train_valid_split(&data, 0.3, 7);
        // Ground truth: best default-config algorithm on this dataset.
        let mut best: Option<(Algorithm, f64)> = None;
        for alg in Algorithm::ALL {
            let Ok(model) = alg.build(&ParamConfig::default()).fit(&data, &train) else {
                continue;
            };
            let acc = accuracy(&data.labels_for(&valid), &model.predict(&data, &valid));
            if best.is_none_or(|(_, b)| acc > b) {
                best = Some((alg, acc));
            }
        }
        let (truth, truth_acc) = best.expect("at least one algorithm fits");

        let meta = extract(&data, &train);
        let marks = landmarkers(&data, &train);
        let plain = kb.recommend(&meta, &QueryOptions { top_n: 3, ..Default::default() });
        let extended = kb.recommend_extended(
            &meta,
            Some(marks),
            &QueryOptions { top_n: 3, use_landmarkers: true, ..Default::default() },
        );
        let contains = |rec: &smartml_kb::Recommendation| {
            rec.algorithms.iter().any(|a| a.algorithm == truth)
        };
        let plain_hit = contains(&plain);
        let ext_hit = contains(&extended);
        plain_hits += usize::from(plain_hit);
        extended_hits += usize::from(ext_hit);
        rows.push(vec![
            bench.paper_name.to_string(),
            format!("{} ({:.0}%)", truth.paper_name(), truth_acc * 100.0),
            plain
                .algorithms
                .iter()
                .map(|a| a.algorithm.paper_name())
                .collect::<Vec<_>>()
                .join(","),
            if plain_hit { "hit" } else { "miss" }.into(),
            if ext_hit { "hit" } else { "miss" }.into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation E (extension): top-3 nomination quality, meta-features vs\nmeta-features + landmarkers",
            &["dataset", "true best (default cfg)", "plain top-3", "plain", "+landmarkers"],
            &rows,
        )
    );
    println!(
        "hit rate: plain {plain_hits}/{}, +landmarkers {extended_hits}/{}",
        suite.len(),
        suite.len()
    );
    println!(
        "Landmarkers add behavioural signal the descriptive meta-features miss, but\n\
         they also perturb good plain matches — expect shifted hits, not a free win."
    );
}
