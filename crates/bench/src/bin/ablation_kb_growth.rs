//! Ablation B: accuracy vs knowledge-base size — the paper: "SmartML has
//! the advantage that its performance can be continuously improved over
//! time by running more tasks which makes SmartML smarter … based on the
//! growing knowledge base."
//!
//! Rebuilds the KB from prefixes of the 50-dataset corpus (0, 10, 25, 50
//! datasets) and measures SmartML's small-budget accuracy on the benchmark
//! suite under each.

use smartml::bootstrap::bootstrap_dataset;
use smartml::{Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_bench::{render_table, Scale};
use smartml_data::synth::{benchmark_suite, kb_bootstrap_corpus};

fn main() {
    let scale = Scale::from_env();
    let profile = scale.bootstrap_profile();
    let corpus = kb_bootstrap_corpus();
    let sizes: &[usize] = &[0, 10, 25, 50];
    // Pre-bootstrap incrementally so each size reuses the previous work.
    let mut kbs: Vec<KnowledgeBase> = Vec::new();
    let mut kb = KnowledgeBase::new();
    let mut built = 0usize;
    for &size in sizes {
        while built < size {
            let (name, spec) = &corpus[built];
            let data = spec.generate(name, profile.seed ^ built as u64);
            bootstrap_dataset(&mut kb, &data, &profile);
            built += 1;
        }
        kbs.push(kb.clone());
    }

    let suite = benchmark_suite();
    let picks = ["madelon", "mnist Basic", "yeast", "Occupancy"];
    let budget = match scale {
        Scale::Quick => 10,
        Scale::Full => 30,
    };
    let mut rows = Vec::new();
    for name in picks {
        let bench = suite.iter().find(|b| b.paper_name == name).expect("known benchmark");
        let data = bench.generate(2019);
        let mut cells = vec![name.to_string()];
        for kb_at_size in &kbs {
            let options = SmartMlOptions {
                budget: Budget::Trials(budget),
                top_n_algorithms: 3,
                cv_folds: 3,
                seed: 7,
                update_kb: false,
                ..Default::default()
            };
            let acc = SmartML::with_kb(kb_at_size.clone(), options)
                .run(&data)
                .map(|o| o.report.best.validation_accuracy)
                .unwrap_or(0.0);
            cells.push(format!("{:.2}", acc * 100.0));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Ablation B: SmartML accuracy (%) vs knowledge-base size ({budget}-trial budget)"
            ),
            &["dataset", "KB=0", "KB=10", "KB=25", "KB=50"],
            &rows,
        )
    );
    println!(
        "Expected shape: accuracy is flat-or-rising left to right — a larger KB\n\
         nominates better algorithm families and supplies better warm starts."
    );
}
