//! Paper Figure 2: the experiment-configuration screen — regenerated as the
//! JSON request the API accepts plus its text rendering (the Shiny UI is
//! substituted by the JSON API; DESIGN.md, substitution 4).

use smartml::api::{DatasetPayload, ExperimentOptions, Request};

fn main() {
    let request = Request::RunExperiment {
        name: "user-dataset".into(),
        dataset: DatasetPayload::Csv {
            content: "<uploaded file or URL content>".into(),
            target: Some("class".into()),
        },
        options: ExperimentOptions {
            preprocessing: vec!["zv".into(), "scale".into(), "pca".into()],
            feature_selection: Some(20),
            budget_trials: Some(60),
            budget_seconds: None,
            top_n_algorithms: Some(3),
            ensembling: true,
            interpretability: true,
            seed: Some(42),
            n_threads: Some(0),
            trial_timeout_seconds: None,
            breaker_threshold: None,
            optimizer: None,
            halving_eta: None,
            trace_ring_capacity: None,
        },
    };
    println!("Figure 2: Configuring an experiment for a dataset");
    println!("==================================================\n");
    println!("Form fields of the paper's configuration screen and their API equivalents:\n");
    println!("  Upload dataset file / URL  -> dataset.csv.content (csv or arff payload)");
    println!("  Select target column       -> dataset.csv.target");
    println!("  Feature preprocessing      -> options.preprocessing (Table 2 names)");
    println!("  Feature selection          -> options.feature_selection (top-k)");
    println!("  Selection + tuning or      -> action: run_experiment | select_algorithms");
    println!("    selection only (meta-features upload)");
    println!("  Model interpretability     -> options.interpretability");
    println!("  Ensembling                 -> options.ensembling");
    println!("  Time budget                -> options.budget_trials | budget_seconds");
    println!("  Worker threads             -> options.n_threads (0 = all cores; same");
    println!("    result for any count at a fixed seed)\n");
    println!("The equivalent REST request body:\n");
    println!("{}", serde_json::to_string_pretty(&request).expect("serialises"));
}
