//! Shared harness utilities for the table/figure binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation (see
//! `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for recorded
//! results). The knowledge base bootstrapped over the 50-dataset corpus is
//! cached on disk so the Table-4 run and the ablations share it.

use smartml::bootstrap::{bootstrap_kb_with, BootstrapProfile};
use smartml::KnowledgeBase;
use smartml_runtime::Pool;
use std::path::PathBuf;

/// Harness scale, set by `SMARTML_BENCH_SCALE` (`quick` | `full`, default
/// `quick`). `quick` shrinks budgets so the whole suite replays in minutes;
/// `full` uses the paper-faithful budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized budgets.
    Quick,
    /// Paper-faithful budgets.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("SMARTML_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Tuning trials granted to each system per dataset.
    pub fn tuning_trials(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Full => 60,
        }
    }

    /// Bootstrap profile for the shared KB.
    pub fn bootstrap_profile(self) -> BootstrapProfile {
        match self {
            Scale::Quick => BootstrapProfile {
                configs_per_algorithm: 2,
                ..BootstrapProfile::default()
            },
            Scale::Full => BootstrapProfile::default(),
        }
    }

    /// Cache file name for the bootstrapped KB.
    fn kb_cache_path(self) -> PathBuf {
        let dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
        PathBuf::from(dir).join(match self {
            Scale::Quick => "smartml-kb-quick.json",
            Scale::Full => "smartml-kb-full.json",
        })
    }
}

/// Worker threads for the harness, set by `SMARTML_THREADS` (`0` or unset =
/// all cores, `1` = serial). Results are identical for any value — the knob
/// only trades wall-clock time.
pub fn threads_from_env() -> usize {
    std::env::var("SMARTML_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Loads the corpus-bootstrapped KB from cache, building it on first use.
pub fn shared_bootstrapped_kb(scale: Scale) -> KnowledgeBase {
    let path = scale.kb_cache_path();
    if let Ok(kb) = KnowledgeBase::load(&path) {
        if !kb.is_empty() {
            eprintln!(
                "[harness] using cached KB ({} datasets / {} runs) from {}",
                kb.len(),
                kb.n_runs(),
                path.display()
            );
            return kb;
        }
    }
    eprintln!("[harness] bootstrapping KB over the 50-dataset corpus (first run; cached after)…");
    let kb = bootstrap_kb_with(&scale.bootstrap_profile(), Pool::new(threads_from_env()));
    if let Err(e) = kb.save(&path) {
        eprintln!("[harness] warning: could not cache KB: {e}");
    }
    eprintln!("[harness] bootstrapped {} datasets / {} runs", kb.len(), kb.n_runs());
    kb
}

/// Renders a fixed-width text table: `header` then rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("{title}\n");
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // Not setting the env var in tests; default must be quick.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert!(Scale::Quick.tuning_trials() < Scale::Full.tuning_trials());
    }

    #[test]
    fn table_renderer_aligns() {
        let table = render_table(
            "T",
            &["a", "bb"],
            &[vec!["x".into(), "y".into()], vec!["long".into(), "z".into()]],
        );
        assert!(table.contains("long  z"));
        assert!(table.starts_with("T\n"));
    }
}
