//! Criterion micro-benchmarks for SmartML's hot paths: meta-feature
//! extraction, KB similarity queries, SMAC iterations on a synthetic
//! objective, and representative classifier fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::KnowledgeBase;
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::{gaussian_blobs, SynthSpec};
use smartml_kb::QueryOptions;
use smartml_metafeatures::extract;
use smartml_smac::{OptOptions, Optimizer, RandomSearch, Smac, StaticObjective, Tpe};

fn bench_metafeatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("metafeatures");
    for &(n, d) in &[(200usize, 8usize), (500, 16), (500, 48)] {
        let data = gaussian_blobs("mf", n, d, 4, 1.0, 1);
        let rows = data.all_rows();
        group.bench_with_input(BenchmarkId::new("extract", format!("{n}x{d}")), &(), |b, _| {
            b.iter(|| extract(&data, &rows))
        });
    }
    group.finish();
}

fn bench_kb_query(c: &mut Criterion) {
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile::fast();
    for i in 0..50u64 {
        let data = SynthSpec::Blobs { n: 80, d: 4, k: 2, spread: 1.0 }
            .generate(&format!("kb{i}"), i);
        bootstrap_dataset(&mut kb, &data, &profile);
    }
    let query = extract(
        &gaussian_blobs("q", 100, 4, 2, 1.0, 99),
        &(0..100).collect::<Vec<_>>(),
    );
    c.bench_function("kb/recommend_50_datasets", |b| {
        b.iter(|| kb.recommend(&query, &QueryOptions::default()))
    });
}

fn bench_optimizers(c: &mut Criterion) {
    let space = Algorithm::Svm.param_space();
    let objective = StaticObjective {
        folds: 3,
        f: |cfg: &ParamConfig, fold| {
            // Cheap smooth surrogate of a tuning landscape.
            let cost = cfg.f64_or("cost", 1.0).ln();
            let gamma = cfg.f64_or("gamma", 0.1).ln();
            1.0 / (1.0 + (cost - 1.5).powi(2) * 0.1 + (gamma + 2.0).powi(2) * 0.1)
                + fold as f64 * 1e-3
        },
    };
    let options = OptOptions { max_trials: 30, ..Default::default() };
    let mut group = c.benchmark_group("optimizer/30_trials_svm_space");
    group.bench_function("smac", |b| {
        b.iter(|| Smac::default().optimize(&space, &objective, &options))
    });
    group.bench_function("tpe", |b| {
        b.iter(|| Tpe::default().optimize(&space, &objective, &options))
    });
    group.bench_function("random", |b| {
        b.iter(|| RandomSearch.optimize(&space, &objective, &options))
    });
    group.finish();
}

fn bench_classifier_fits(c: &mut Criterion) {
    let data = gaussian_blobs("fit", 300, 8, 3, 1.0, 5);
    let rows = data.all_rows();
    let mut group = c.benchmark_group("classifier/fit_300x8");
    for alg in [
        Algorithm::Knn,
        Algorithm::NaiveBayes,
        Algorithm::Rpart,
        Algorithm::J48,
        Algorithm::RandomForest,
        Algorithm::Lda,
        Algorithm::Svm,
    ] {
        let config = alg.param_space().default_config();
        group.bench_function(alg.paper_name(), |b| {
            b.iter(|| alg.build(&config).fit(&data, &rows).unwrap())
        });
    }
    group.finish();
}

fn bench_predictions(c: &mut Criterion) {
    let data = gaussian_blobs("pred", 400, 8, 3, 1.0, 6);
    let (train, test): (Vec<usize>, Vec<usize>) = (0..400).partition(|i| i % 2 == 0);
    let model = Algorithm::RandomForest
        .build(&Algorithm::RandomForest.param_space().default_config())
        .fit(&data, &train)
        .unwrap();
    c.bench_function("classifier/predict_forest_200rows", |b| {
        b.iter(|| model.predict(&data, &test))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_metafeatures, bench_kb_query, bench_optimizers,
              bench_classifier_fits, bench_predictions
}
criterion_main!(benches);
