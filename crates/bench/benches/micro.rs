//! Criterion micro-benchmarks for SmartML's hot paths: meta-feature
//! extraction, KB similarity queries, SMAC iterations on a synthetic
//! objective, and representative classifier fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::KnowledgeBase;
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::{gaussian_blobs, SynthSpec};
use smartml_kb::QueryOptions;
use smartml_metafeatures::extract;
use smartml_runtime::Pool;
use smartml_smac::{
    ClassifierObjective, Objective, OptOptions, Optimizer, RandomForestSurrogate, RandomSearch,
    Smac, StaticObjective, Tpe,
};

fn bench_metafeatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("metafeatures");
    for &(n, d) in &[(200usize, 8usize), (500, 16), (500, 48)] {
        let data = gaussian_blobs("mf", n, d, 4, 1.0, 1);
        let rows = data.all_rows();
        group.bench_with_input(BenchmarkId::new("extract", format!("{n}x{d}")), &(), |b, _| {
            b.iter(|| extract(&data, &rows))
        });
    }
    group.finish();
}

fn bench_kb_query(c: &mut Criterion) {
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile::fast();
    for i in 0..50u64 {
        let data = SynthSpec::Blobs { n: 80, d: 4, k: 2, spread: 1.0 }
            .generate(&format!("kb{i}"), i);
        bootstrap_dataset(&mut kb, &data, &profile);
    }
    let query = extract(
        &gaussian_blobs("q", 100, 4, 2, 1.0, 99),
        &(0..100).collect::<Vec<_>>(),
    );
    c.bench_function("kb/recommend_50_datasets", |b| {
        b.iter(|| kb.recommend(&query, &QueryOptions::default()))
    });
}

fn bench_optimizers(c: &mut Criterion) {
    let space = Algorithm::Svm.param_space();
    let objective = StaticObjective {
        folds: 3,
        f: |cfg: &ParamConfig, fold| {
            // Cheap smooth surrogate of a tuning landscape.
            let cost = cfg.f64_or("cost", 1.0).ln();
            let gamma = cfg.f64_or("gamma", 0.1).ln();
            1.0 / (1.0 + (cost - 1.5).powi(2) * 0.1 + (gamma + 2.0).powi(2) * 0.1)
                + fold as f64 * 1e-3
        },
    };
    let options = OptOptions { max_trials: 30, ..Default::default() };
    let mut group = c.benchmark_group("optimizer/30_trials_svm_space");
    group.bench_function("smac", |b| {
        b.iter(|| Smac::default().optimize(&space, &objective, &options))
    });
    group.bench_function("tpe", |b| {
        b.iter(|| Tpe::default().optimize(&space, &objective, &options))
    });
    group.bench_function("random", |b| {
        b.iter(|| RandomSearch.optimize(&space, &objective, &options))
    });
    group.finish();
}

fn bench_classifier_fits(c: &mut Criterion) {
    let data = gaussian_blobs("fit", 300, 8, 3, 1.0, 5);
    let rows = data.all_rows();
    let mut group = c.benchmark_group("classifier/fit_300x8");
    for alg in [
        Algorithm::Knn,
        Algorithm::NaiveBayes,
        Algorithm::Rpart,
        Algorithm::J48,
        Algorithm::RandomForest,
        Algorithm::Lda,
        Algorithm::Svm,
    ] {
        let config = alg.param_space().default_config();
        group.bench_function(alg.paper_name(), |b| {
            b.iter(|| alg.build(&config).fit(&data, &rows).unwrap())
        });
    }
    group.finish();
}

fn bench_predictions(c: &mut Criterion) {
    let data = gaussian_blobs("pred", 400, 8, 3, 1.0, 6);
    let (train, test): (Vec<usize>, Vec<usize>) = (0..400).partition(|i| i % 2 == 0);
    let model = Algorithm::RandomForest
        .build(&Algorithm::RandomForest.param_space().default_config())
        .fit(&data, &train)
        .unwrap();
    c.bench_function("classifier/predict_forest_200rows", |b| {
        b.iter(|| model.predict(&data, &test))
    });
}

fn bench_pool_overhead(c: &mut Criterion) {
    // Dispatch cost of the scoped pool on trivially small tasks — the
    // fixed price every parallel path pays per map call.
    let items: Vec<u64> = (0..64).collect();
    let mut group = c.benchmark_group("runtime/map_64_trivial_tasks");
    for (name, pool) in [("serial", Pool::serial()), ("4_threads", Pool::new(4))] {
        group.bench_function(name, |b| {
            b.iter(|| pool.map_indexed(items.clone(), |_, x| x.wrapping_mul(0x9e37_79b9)))
        });
    }
    group.finish();
}

fn bench_surrogate_fit(c: &mut Criterion) {
    // RF surrogate growth: per-tree work is independent, so this is the
    // cleanest parallel speedup in the tuner.
    let xs: Vec<Vec<f64>> = (0..120)
        .map(|i| (0..6).map(|j| ((i * 7 + j * 13) % 100) as f64 / 100.0).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / 6.0).collect();
    let mut group = c.benchmark_group("surrogate/fit_120x6_40_trees");
    for (name, pool) in [("serial", Pool::serial()), ("4_threads", Pool::new(4))] {
        group.bench_function(name, |b| {
            b.iter(|| RandomForestSurrogate::fit_with(&xs, &ys, 40, 5, pool))
        });
    }
    group.finish();
}

fn bench_parallel_folds(c: &mut Criterion) {
    // Full 4-fold CV evaluation of one configuration: the unit of work the
    // intensification race speculates on. A fresh objective per iteration
    // keeps the fold memo cache cold.
    let data = gaussian_blobs("folds", 400, 8, 3, 1.0, 4);
    let rows = data.all_rows();
    let config = Algorithm::RandomForest.param_space().default_config();
    let mut group = c.benchmark_group("objective/4_fold_forest_eval");
    for (name, pool) in [("serial", Pool::serial()), ("4_threads", Pool::new(4))] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let obj = ClassifierObjective::new(Algorithm::RandomForest, &data, &rows, 4, 7);
                obj.evaluate_full_with(&config, pool)
            })
        });
    }
    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    // Instrumentation cost with observability off — the price every hot
    // path pays unconditionally. The standalone `obs_overhead` bin gates
    // the disabled counter path at 5 ns/op; this group tracks the same
    // paths under criterion. Batches of 1000 ops per iteration keep the
    // per-op cost above timer resolution.
    use smartml_obs::{span, Counter, Histogram};
    static C_OFF: Counter = Counter::new("bench.micro.counter");
    static H_OFF: Histogram = Histogram::new("bench.micro.histogram");
    smartml_obs::disable_metrics();
    smartml_obs::disable_tracing();
    let mut group = c.benchmark_group("obs/disabled_1000_ops");
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                std::hint::black_box(&C_OFF).inc();
            }
        })
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                std::hint::black_box(&H_OFF).record(i);
            }
        })
    });
    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                let g = span!("bench.micro.span", i = i);
                std::hint::black_box(&g);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_metafeatures, bench_kb_query, bench_optimizers,
              bench_classifier_fits, bench_predictions, bench_pool_overhead,
              bench_surrogate_fit, bench_parallel_folds, bench_obs_overhead
}
criterion_main!(benches);
