//! Optimisation objectives: what a configuration's score means.

use crate::outcome::TrialOutcome;
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::{accuracy, stratified_kfold, Dataset};
use smartml_obs::Counter;
use smartml_runtime::faults::{fail, run_trial, TrialToken};
use smartml_runtime::{task_seed, Pool};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

static FOLD_CACHE_HITS: Counter = Counter::new("smac.fold.cache_hits");
static FOLD_COMPUTED: Counter = Counter::new("smac.fold.computed");

/// A maximisation objective evaluable fold-by-fold (for racing).
///
/// `Send + Sync` so a worker pool can evaluate independent folds of the
/// same objective concurrently.
///
/// Implementors provide the raw [`evaluate_fold`](Objective::evaluate_fold);
/// optimisers call the guarded wrappers, which contain panics, classify
/// timeouts via the trial's [`TrialToken`], and quarantine non-finite
/// scores into the [`TrialOutcome`] taxonomy.
pub trait Objective: Send + Sync {
    /// Number of independent folds a full evaluation consists of.
    fn n_folds(&self) -> usize;

    /// Scores `config` on one fold; higher is better. `Err` marks an
    /// infeasible configuration (treated as the worst possible score).
    /// May panic or overrun — callers go through the guarded wrappers.
    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String>;

    /// Fault-contained fold evaluation: runs
    /// [`evaluate_fold`](Objective::evaluate_fold) under the guard and
    /// classifies the result. Panics are caught here — they never unwind
    /// into the optimiser loop or a pool worker.
    fn evaluate_fold_guarded(
        &self,
        config: &ParamConfig,
        fold: usize,
        token: &TrialToken,
    ) -> TrialOutcome {
        TrialOutcome::from_guard(run_trial(token, || self.evaluate_fold(config, fold)))
    }

    /// Mean score over all folds (convenience for non-racing callers).
    fn evaluate_full(&self, config: &ParamConfig) -> Result<f64, String> {
        self.evaluate_full_with(config, Pool::serial())
    }

    /// [`evaluate_full`](Objective::evaluate_full) with folds evaluated on
    /// `pool`. Fold scores are independent, so the mean — and the error
    /// reported (first failing fold in fold order) — is identical for any
    /// pool width. Folds run guarded: a panicking fit surfaces as an
    /// `Err` describing the panic, never as an unwind.
    fn evaluate_full_with(&self, config: &ParamConfig, pool: Pool) -> Result<f64, String> {
        match self.evaluate_full_outcome(config, pool, &TrialToken::unbounded()) {
            TrialOutcome::Ok(score) => Ok(score),
            other => Err(other.failure_reason()),
        }
    }

    /// Full guarded evaluation under a trial token, classified into the
    /// taxonomy: the mean score on success, otherwise the first non-ok
    /// fold outcome in fold order (identical for any pool width).
    fn evaluate_full_outcome(
        &self,
        config: &ParamConfig,
        pool: Pool,
        token: &TrialToken,
    ) -> TrialOutcome {
        let n = self.n_folds();
        let results = pool.map_range(n, |fold| self.evaluate_fold_guarded(config, fold, token));
        let mut total = 0.0;
        for outcome in results {
            match outcome {
                TrialOutcome::Ok(score) => total += score,
                other => return other,
            }
        }
        TrialOutcome::Ok(total / n as f64)
    }
}

/// One entry of the fold memo table: either a finished result or a marker
/// that another thread is computing it right now.
enum Slot {
    /// Computation in flight; wait on the flag+condvar, then re-read.
    InFlight(Arc<(Mutex<bool>, Condvar)>),
    /// Finished result.
    Done(Result<f64, String>),
}

/// The production objective: cross-validated accuracy of one algorithm on a
/// dataset's training rows.
///
/// The k folds are stratified and fixed at construction so every
/// configuration is compared on identical splits. Fold evaluations are
/// memoised — intensification re-visits incumbent folds frequently — with a
/// per-key in-flight guard so concurrent callers compute each
/// `(config, fold)` pair exactly once: the first caller inserts an
/// [`Slot::InFlight`] marker and computes, later callers block on its
/// condvar until the result lands.
pub struct ClassifierObjective {
    algorithm: Algorithm,
    data: Arc<Dataset>,
    folds: Vec<(Vec<usize>, Vec<usize>)>,
    cache: Mutex<HashMap<(String, usize), Slot>>,
    #[cfg(test)]
    computed: std::sync::atomic::AtomicUsize,
}

impl ClassifierObjective {
    /// Builds a k-fold objective over `rows` of `data`.
    pub fn new(algorithm: Algorithm, data: &Dataset, rows: &[usize], k: usize, seed: u64) -> Self {
        Self::new_shared(algorithm, Arc::new(data.clone()), rows, k, seed)
    }

    /// [`new`](ClassifierObjective::new) without the dataset copy: several
    /// objectives tuned concurrently (one per nominated algorithm) share
    /// one `Arc<Dataset>`.
    pub fn new_shared(
        algorithm: Algorithm,
        data: Arc<Dataset>,
        rows: &[usize],
        k: usize,
        seed: u64,
    ) -> Self {
        let fold_sets = stratified_kfold(&data, rows, k.max(2), seed);
        let folds = fold_sets
            .into_iter()
            .map(|valid| {
                let valid_set: std::collections::HashSet<usize> = valid.iter().copied().collect();
                let train: Vec<usize> =
                    rows.iter().copied().filter(|r| !valid_set.contains(r)).collect();
                (train, valid)
            })
            .collect();
        ClassifierObjective {
            algorithm,
            data,
            folds,
            cache: Mutex::new(HashMap::new()),
            #[cfg(test)]
            computed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The algorithm being tuned.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Number of memoised `(config, fold)` entries.
    #[cfg(test)]
    fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

/// Unwinding-safe completion for a single-flight cache entry: constructed
/// after the `InFlight` marker is inserted; on drop — **including a drop
/// during a panic unwind** — it fills the slot and wakes every waiter.
/// Without it, a panicking fit would leave the marker in place and every
/// thread waiting on that `(config, fold)` pair would block forever.
struct SlotCompletion<'a> {
    cache: &'a Mutex<HashMap<(String, usize), Slot>>,
    key: (String, usize),
    result: Option<Result<f64, String>>,
}

impl Drop for SlotCompletion<'_> {
    fn drop(&mut self) {
        let result = self.result.take().unwrap_or_else(|| {
            Err(format!("fold evaluation panicked (config {})", self.key.0))
        });
        // `lock()` may see a poisoned mutex if another panic hit inside
        // the critical section; waking waiters still matters more, so
        // recover the guard rather than double-panicking during unwind.
        let mut cache = match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let prev = cache.insert(self.key.clone(), Slot::Done(result));
        drop(cache);
        if let Some(Slot::InFlight(w)) = prev {
            let (flag, cvar) = &*w;
            if let Ok(mut done) = flag.lock() {
                *done = true;
            }
            cvar.notify_all();
        }
    }
}

/// FNV-1a over a config summary: the stable per-configuration seed the
/// `smac::fold` fail-point draws from.
fn config_seed(summary: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in summary.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Objective for ClassifierObjective {
    fn n_folds(&self) -> usize {
        self.folds.len()
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        let key = (config.summary(), fold);
        loop {
            let waiter = {
                let mut cache = self.cache.lock().unwrap();
                match cache.get(&key) {
                    Some(Slot::Done(hit)) => {
                        FOLD_CACHE_HITS.inc();
                        return hit.clone();
                    }
                    Some(Slot::InFlight(w)) => Arc::clone(w),
                    None => {
                        cache.insert(
                            key.clone(),
                            Slot::InFlight(Arc::new((Mutex::new(false), Condvar::new()))),
                        );
                        break;
                    }
                }
            };
            let (flag, cvar) = &*waiter;
            let mut done = flag.lock().unwrap();
            while !*done {
                done = cvar.wait(done).unwrap();
            }
            // Re-read the table: the slot is `Done` now.
        }
        // From here on the completion guard owns the slot: whatever
        // happens — normal return, error, or a panic in the fit — it
        // publishes a `Done` result and wakes the waiters.
        let mut completion = SlotCompletion { cache: &self.cache, key, result: None };
        FOLD_COMPUTED.inc();
        let (train, valid) = &self.folds[fold];
        #[cfg(test)]
        self.computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        fail::trigger("smac::fold", task_seed(config_seed(&completion.key.0), fold as u64));
        let result = (|| {
            let clf = self.algorithm.build(config);
            let model = clf.fit(&self.data, train).map_err(|e| e.to_string())?;
            let pred = model.predict(&self.data, valid);
            Ok(accuracy(&self.data.labels_for(valid), &pred))
        })();
        completion.result = Some(result.clone());
        drop(completion);
        result
    }
}

/// A synthetic objective over an explicit function — used by the optimiser
/// test-suites and the micro-benchmarks, where classifier training would
/// drown the signal.
pub struct StaticObjective<F: Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
    /// Number of folds reported.
    pub folds: usize,
    /// The scoring function `(config, fold) -> score`.
    pub f: F,
}

impl<F: Fn(&ParamConfig, usize) -> f64 + Send + Sync> Objective for StaticObjective<F> {
    fn n_folds(&self) -> usize {
        self.folds
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        Ok((self.f)(config, fold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn classifier_objective_scores_real_configs() {
        let d = gaussian_blobs("b", 150, 3, 2, 0.8, 1);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 3, 7);
        assert_eq!(obj.n_folds(), 3);
        let config = Algorithm::Knn.param_space().default_config();
        let s0 = obj.evaluate_fold(&config, 0).unwrap();
        assert!((0.0..=1.0).contains(&s0));
        let full = obj.evaluate_full(&config).unwrap();
        assert!(full > 0.8, "knn on separable blobs scored {full}");
    }

    #[test]
    fn fold_results_are_memoised() {
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 2);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Rpart, &d, &rows, 2, 3);
        let config = Algorithm::Rpart.param_space().default_config();
        let a = obj.evaluate_fold(&config, 0).unwrap();
        let b = obj.evaluate_fold(&config, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(obj.cache_len(), 1);
    }

    #[test]
    fn parallel_full_evaluation_matches_serial() {
        let d = gaussian_blobs("b", 160, 3, 3, 1.0, 4);
        let rows = d.all_rows();
        let config = Algorithm::Knn.param_space().default_config();
        let serial = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 4, 7)
            .evaluate_full_with(&config, Pool::serial())
            .unwrap();
        for threads in [2, 8] {
            let obj = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 4, 7);
            let par = obj.evaluate_full_with(&config, Pool::new(threads)).unwrap();
            assert_eq!(serial, par, "pool width {threads} changed the score");
            assert_eq!(obj.cache_len(), 4);
        }
    }

    #[test]
    fn concurrent_callers_compute_each_fold_once() {
        use std::sync::atomic::Ordering;
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 5);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Rpart, &d, &rows, 2, 3);
        let config = Algorithm::Rpart.param_space().default_config();
        let mut scores = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| obj.evaluate_fold(&config, 0).unwrap()))
                .collect();
            scores.extend(handles.into_iter().map(|h| h.join().unwrap()));
        });
        scores.dedup();
        assert_eq!(scores.len(), 1, "all callers saw one memoised value");
        // The check-then-compute race is closed: the in-flight guard made
        // exactly one thread run the fold, everyone else waited on it.
        assert_eq!(obj.computed.load(Ordering::Relaxed), 1);
        assert_eq!(obj.cache_len(), 1);
    }

    #[test]
    fn guarded_fold_contains_panics() {
        let obj = StaticObjective {
            folds: 2,
            f: |_: &ParamConfig, _| -> f64 { panic!("fit exploded") },
        };
        let token = TrialToken::unbounded();
        let outcome = obj.evaluate_fold_guarded(&ParamConfig::default(), 0, &token);
        match outcome {
            TrialOutcome::Panicked { site } => assert!(site.contains("fit exploded")),
            other => panic!("unexpected {other:?}"),
        }
        // And through the full-evaluation path it degrades to an Err.
        let err = obj.evaluate_full(&ParamConfig::default()).unwrap_err();
        assert!(err.contains("panicked"), "got: {err}");
    }

    #[test]
    fn guarded_fold_quarantines_non_finite_scores() {
        let obj = StaticObjective { folds: 1, f: |_: &ParamConfig, _| f64::NAN };
        let token = TrialToken::unbounded();
        assert_eq!(
            obj.evaluate_fold_guarded(&ParamConfig::default(), 0, &token),
            TrialOutcome::NonFinite
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn panicked_fold_does_not_deadlock_waiters() {
        use std::time::Duration;
        // Arm the `smac::fold` fail point so the computing thread panics
        // between the InFlight insert and the Done insert — the exact
        // window that used to strand every waiter forever. All eight
        // concurrent callers must return (with a failure), not hang.
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 5);
        let rows = d.all_rows();
        let obj = std::sync::Arc::new(ClassifierObjective::new(
            Algorithm::Rpart, &d, &rows, 2, 3,
        ));
        let config = Algorithm::Rpart.param_space().default_config();
        fail::arm(fail::FaultPlan {
            seed: 0,
            rules: vec![fail::SiteRule::always_panic("smac::fold")],
        });
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..8 {
            let obj = std::sync::Arc::clone(&obj);
            let config = config.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let token = TrialToken::unbounded();
                let out = obj.evaluate_fold_guarded(&config, 0, &token);
                tx.send(out).unwrap();
            });
        }
        drop(tx);
        let mut outcomes = Vec::new();
        for _ in 0..8 {
            // A deadlocked cache shows up as a recv timeout, not a hang.
            outcomes.push(
                rx.recv_timeout(Duration::from_secs(30))
                    .expect("a waiter deadlocked on the poisoned fold cache"),
            );
        }
        fail::disarm();
        for out in outcomes {
            assert!(
                matches!(out, TrialOutcome::Panicked { .. } | TrialOutcome::Failed(_)),
                "unexpected outcome {out:?}"
            );
        }
    }

    #[test]
    fn static_objective_wraps_function() {
        let obj = StaticObjective { folds: 2, f: |c: &ParamConfig, fold| c.f64_or("x", 0.0) + fold as f64 };
        let config = ParamConfig::default().with("x", smartml_classifiers::ParamValue::Real(1.0));
        assert_eq!(obj.evaluate_fold(&config, 1).unwrap(), 2.0);
        assert_eq!(obj.evaluate_full(&config).unwrap(), 1.5);
    }
}
