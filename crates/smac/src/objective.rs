//! Optimisation objectives: what a configuration's score means.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::{accuracy, stratified_kfold, Dataset};
use smartml_runtime::Pool;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A maximisation objective evaluable fold-by-fold (for racing).
///
/// `Send + Sync` so a worker pool can evaluate independent folds of the
/// same objective concurrently.
pub trait Objective: Send + Sync {
    /// Number of independent folds a full evaluation consists of.
    fn n_folds(&self) -> usize;

    /// Scores `config` on one fold; higher is better. `Err` marks an
    /// infeasible configuration (treated as the worst possible score).
    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String>;

    /// Mean score over all folds (convenience for non-racing callers).
    fn evaluate_full(&self, config: &ParamConfig) -> Result<f64, String> {
        self.evaluate_full_with(config, Pool::serial())
    }

    /// [`evaluate_full`](Objective::evaluate_full) with folds evaluated on
    /// `pool`. Fold scores are independent, so the mean — and the error
    /// reported (first failing fold in fold order) — is identical for any
    /// pool width.
    fn evaluate_full_with(&self, config: &ParamConfig, pool: Pool) -> Result<f64, String> {
        let n = self.n_folds();
        let results = pool.map_range(n, |fold| self.evaluate_fold(config, fold));
        let mut total = 0.0;
        for r in results {
            total += r?;
        }
        Ok(total / n as f64)
    }
}

/// One entry of the fold memo table: either a finished result or a marker
/// that another thread is computing it right now.
enum Slot {
    /// Computation in flight; wait on the flag+condvar, then re-read.
    InFlight(Arc<(Mutex<bool>, Condvar)>),
    /// Finished result.
    Done(Result<f64, String>),
}

/// The production objective: cross-validated accuracy of one algorithm on a
/// dataset's training rows.
///
/// The k folds are stratified and fixed at construction so every
/// configuration is compared on identical splits. Fold evaluations are
/// memoised — intensification re-visits incumbent folds frequently — with a
/// per-key in-flight guard so concurrent callers compute each
/// `(config, fold)` pair exactly once: the first caller inserts an
/// [`Slot::InFlight`] marker and computes, later callers block on its
/// condvar until the result lands.
pub struct ClassifierObjective {
    algorithm: Algorithm,
    data: Arc<Dataset>,
    folds: Vec<(Vec<usize>, Vec<usize>)>,
    cache: Mutex<HashMap<(String, usize), Slot>>,
    #[cfg(test)]
    computed: std::sync::atomic::AtomicUsize,
}

impl ClassifierObjective {
    /// Builds a k-fold objective over `rows` of `data`.
    pub fn new(algorithm: Algorithm, data: &Dataset, rows: &[usize], k: usize, seed: u64) -> Self {
        Self::new_shared(algorithm, Arc::new(data.clone()), rows, k, seed)
    }

    /// [`new`](ClassifierObjective::new) without the dataset copy: several
    /// objectives tuned concurrently (one per nominated algorithm) share
    /// one `Arc<Dataset>`.
    pub fn new_shared(
        algorithm: Algorithm,
        data: Arc<Dataset>,
        rows: &[usize],
        k: usize,
        seed: u64,
    ) -> Self {
        let fold_sets = stratified_kfold(&data, rows, k.max(2), seed);
        let folds = fold_sets
            .into_iter()
            .map(|valid| {
                let valid_set: std::collections::HashSet<usize> = valid.iter().copied().collect();
                let train: Vec<usize> =
                    rows.iter().copied().filter(|r| !valid_set.contains(r)).collect();
                (train, valid)
            })
            .collect();
        ClassifierObjective {
            algorithm,
            data,
            folds,
            cache: Mutex::new(HashMap::new()),
            #[cfg(test)]
            computed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The algorithm being tuned.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Number of memoised `(config, fold)` entries.
    #[cfg(test)]
    fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

impl Objective for ClassifierObjective {
    fn n_folds(&self) -> usize {
        self.folds.len()
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        let key = (config.summary(), fold);
        loop {
            let waiter = {
                let mut cache = self.cache.lock().unwrap();
                match cache.get(&key) {
                    Some(Slot::Done(hit)) => return hit.clone(),
                    Some(Slot::InFlight(w)) => Arc::clone(w),
                    None => {
                        cache.insert(
                            key.clone(),
                            Slot::InFlight(Arc::new((Mutex::new(false), Condvar::new()))),
                        );
                        break;
                    }
                }
            };
            let (flag, cvar) = &*waiter;
            let mut done = flag.lock().unwrap();
            while !*done {
                done = cvar.wait(done).unwrap();
            }
            // Re-read the table: the slot is `Done` now.
        }
        let (train, valid) = &self.folds[fold];
        #[cfg(test)]
        self.computed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let result = (|| {
            let clf = self.algorithm.build(config);
            let model = clf.fit(&self.data, train).map_err(|e| e.to_string())?;
            let pred = model.predict(&self.data, valid);
            Ok(accuracy(&self.data.labels_for(valid), &pred))
        })();
        let prev = self.cache.lock().unwrap().insert(key, Slot::Done(result.clone()));
        if let Some(Slot::InFlight(w)) = prev {
            let (flag, cvar) = &*w;
            *flag.lock().unwrap() = true;
            cvar.notify_all();
        }
        result
    }
}

/// A synthetic objective over an explicit function — used by the optimiser
/// test-suites and the micro-benchmarks, where classifier training would
/// drown the signal.
pub struct StaticObjective<F: Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
    /// Number of folds reported.
    pub folds: usize,
    /// The scoring function `(config, fold) -> score`.
    pub f: F,
}

impl<F: Fn(&ParamConfig, usize) -> f64 + Send + Sync> Objective for StaticObjective<F> {
    fn n_folds(&self) -> usize {
        self.folds
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        Ok((self.f)(config, fold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn classifier_objective_scores_real_configs() {
        let d = gaussian_blobs("b", 150, 3, 2, 0.8, 1);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 3, 7);
        assert_eq!(obj.n_folds(), 3);
        let config = Algorithm::Knn.param_space().default_config();
        let s0 = obj.evaluate_fold(&config, 0).unwrap();
        assert!((0.0..=1.0).contains(&s0));
        let full = obj.evaluate_full(&config).unwrap();
        assert!(full > 0.8, "knn on separable blobs scored {full}");
    }

    #[test]
    fn fold_results_are_memoised() {
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 2);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Rpart, &d, &rows, 2, 3);
        let config = Algorithm::Rpart.param_space().default_config();
        let a = obj.evaluate_fold(&config, 0).unwrap();
        let b = obj.evaluate_fold(&config, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(obj.cache_len(), 1);
    }

    #[test]
    fn parallel_full_evaluation_matches_serial() {
        let d = gaussian_blobs("b", 160, 3, 3, 1.0, 4);
        let rows = d.all_rows();
        let config = Algorithm::Knn.param_space().default_config();
        let serial = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 4, 7)
            .evaluate_full_with(&config, Pool::serial())
            .unwrap();
        for threads in [2, 8] {
            let obj = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 4, 7);
            let par = obj.evaluate_full_with(&config, Pool::new(threads)).unwrap();
            assert_eq!(serial, par, "pool width {threads} changed the score");
            assert_eq!(obj.cache_len(), 4);
        }
    }

    #[test]
    fn concurrent_callers_compute_each_fold_once() {
        use std::sync::atomic::Ordering;
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 5);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Rpart, &d, &rows, 2, 3);
        let config = Algorithm::Rpart.param_space().default_config();
        let mut scores = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| obj.evaluate_fold(&config, 0).unwrap()))
                .collect();
            scores.extend(handles.into_iter().map(|h| h.join().unwrap()));
        });
        scores.dedup();
        assert_eq!(scores.len(), 1, "all callers saw one memoised value");
        // The check-then-compute race is closed: the in-flight guard made
        // exactly one thread run the fold, everyone else waited on it.
        assert_eq!(obj.computed.load(Ordering::Relaxed), 1);
        assert_eq!(obj.cache_len(), 1);
    }

    #[test]
    fn static_objective_wraps_function() {
        let obj = StaticObjective { folds: 2, f: |c: &ParamConfig, fold| c.f64_or("x", 0.0) + fold as f64 };
        let config = ParamConfig::default().with("x", smartml_classifiers::ParamValue::Real(1.0));
        assert_eq!(obj.evaluate_fold(&config, 1).unwrap(), 2.0);
        assert_eq!(obj.evaluate_full(&config).unwrap(), 1.5);
    }
}
