//! Optimisation objectives: what a configuration's score means.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::{accuracy, stratified_kfold, Dataset};
use std::collections::HashMap;
use std::sync::Mutex;

/// A maximisation objective evaluable fold-by-fold (for racing).
pub trait Objective: Send {
    /// Number of independent folds a full evaluation consists of.
    fn n_folds(&self) -> usize;

    /// Scores `config` on one fold; higher is better. `Err` marks an
    /// infeasible configuration (treated as the worst possible score).
    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String>;

    /// Mean score over all folds (convenience for non-racing callers).
    fn evaluate_full(&self, config: &ParamConfig) -> Result<f64, String> {
        let mut total = 0.0;
        for fold in 0..self.n_folds() {
            total += self.evaluate_fold(config, fold)?;
        }
        Ok(total / self.n_folds() as f64)
    }
}

/// The production objective: cross-validated accuracy of one algorithm on a
/// dataset's training rows.
///
/// The k folds are stratified and fixed at construction so every
/// configuration is compared on identical splits. Fold evaluations are
/// memoised — intensification re-visits incumbent folds frequently.
pub struct ClassifierObjective {
    algorithm: Algorithm,
    data: Dataset,
    folds: Vec<(Vec<usize>, Vec<usize>)>,
    cache: Mutex<HashMap<(String, usize), Result<f64, String>>>,
}

impl ClassifierObjective {
    /// Builds a k-fold objective over `rows` of `data`.
    pub fn new(algorithm: Algorithm, data: &Dataset, rows: &[usize], k: usize, seed: u64) -> Self {
        let fold_sets = stratified_kfold(data, rows, k.max(2), seed);
        let folds = fold_sets
            .iter()
            .map(|valid| {
                let valid_set: std::collections::HashSet<usize> = valid.iter().copied().collect();
                let train: Vec<usize> =
                    rows.iter().copied().filter(|r| !valid_set.contains(r)).collect();
                (train, valid.clone())
            })
            .collect();
        ClassifierObjective {
            algorithm,
            data: data.clone(),
            folds,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The algorithm being tuned.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }
}

impl Objective for ClassifierObjective {
    fn n_folds(&self) -> usize {
        self.folds.len()
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        let key = (config.summary(), fold);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            return hit.clone();
        }
        let (train, valid) = &self.folds[fold];
        let result = (|| {
            let clf = self.algorithm.build(config);
            let model = clf.fit(&self.data, train).map_err(|e| e.to_string())?;
            let pred = model.predict(&self.data, valid);
            Ok(accuracy(&self.data.labels_for(valid), &pred))
        })();
        self.cache.lock().unwrap().insert(key, result.clone());
        result
    }
}

/// A synthetic objective over an explicit function — used by the optimiser
/// test-suites and the micro-benchmarks, where classifier training would
/// drown the signal.
pub struct StaticObjective<F: Fn(&ParamConfig, usize) -> f64 + Send> {
    /// Number of folds reported.
    pub folds: usize,
    /// The scoring function `(config, fold) -> score`.
    pub f: F,
}

impl<F: Fn(&ParamConfig, usize) -> f64 + Send> Objective for StaticObjective<F> {
    fn n_folds(&self) -> usize {
        self.folds
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        Ok((self.f)(config, fold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn classifier_objective_scores_real_configs() {
        let d = gaussian_blobs("b", 150, 3, 2, 0.8, 1);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Knn, &d, &rows, 3, 7);
        assert_eq!(obj.n_folds(), 3);
        let config = Algorithm::Knn.param_space().default_config();
        let s0 = obj.evaluate_fold(&config, 0).unwrap();
        assert!((0.0..=1.0).contains(&s0));
        let full = obj.evaluate_full(&config).unwrap();
        assert!(full > 0.8, "knn on separable blobs scored {full}");
    }

    #[test]
    fn fold_results_are_memoised() {
        let d = gaussian_blobs("b", 120, 2, 2, 1.0, 2);
        let rows = d.all_rows();
        let obj = ClassifierObjective::new(Algorithm::Rpart, &d, &rows, 2, 3);
        let config = Algorithm::Rpart.param_space().default_config();
        let a = obj.evaluate_fold(&config, 0).unwrap();
        let b = obj.evaluate_fold(&config, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(obj.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn static_objective_wraps_function() {
        let obj = StaticObjective { folds: 2, f: |c: &ParamConfig, fold| c.f64_or("x", 0.0) + fold as f64 };
        let config = ParamConfig::default().with("x", smartml_classifiers::ParamValue::Real(1.0));
        assert_eq!(obj.evaluate_fold(&config, 1).unwrap(), 2.0);
        assert_eq!(obj.evaluate_full(&config).unwrap(), 1.5);
    }
}
