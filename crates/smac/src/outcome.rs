//! The trial-outcome taxonomy: how one configuration evaluation ended.
//!
//! Optimisers used to see a bare `Result<f64, String>`, which conflated
//! "this configuration is infeasible" with "the fit crashed" and could
//! not express timeouts at all. [`TrialOutcome`] separates the cases so
//! the SMAC loop can quarantine bad scores before they reach the
//! surrogate, circuit breakers can count real faults, and the run report
//! can account for every failure.

use serde::{Deserialize, Serialize};
use smartml_runtime::faults::GuardOutcome;

/// How a guarded trial (or one fold of it) ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialOutcome {
    /// Finished with a finite score (higher = better).
    Ok(f64),
    /// Finished, but produced `NaN`/`±inf` — quarantined so it can never
    /// poison the surrogate or model selection.
    NonFinite,
    /// The fit panicked; `site` names the origin (fail-point site or
    /// panic message).
    Panicked {
        /// Where the panic originated.
        site: String,
    },
    /// The trial overran its watchdog deadline.
    TimedOut {
        /// Seconds the trial had consumed when it was classified.
        elapsed: f64,
    },
    /// The objective reported the configuration as infeasible.
    Failed(String),
}

impl TrialOutcome {
    /// Classifies a raw fold result: finite `Ok` stays ok, non-finite is
    /// quarantined, `Err` becomes [`TrialOutcome::Failed`].
    pub fn from_result(result: Result<f64, String>) -> TrialOutcome {
        match result {
            Ok(score) if score.is_finite() => TrialOutcome::Ok(score),
            Ok(_) => TrialOutcome::NonFinite,
            Err(reason) => TrialOutcome::Failed(reason),
        }
    }

    /// Classifies the guard's verdict over a raw fold result.
    pub fn from_guard(outcome: GuardOutcome<Result<f64, String>>) -> TrialOutcome {
        match outcome {
            GuardOutcome::Completed(result) => TrialOutcome::from_result(result),
            GuardOutcome::Panicked { site } => TrialOutcome::Panicked { site },
            GuardOutcome::TimedOut { elapsed } => {
                TrialOutcome::TimedOut { elapsed: elapsed.as_secs_f64() }
            }
        }
    }

    /// The score, when the trial succeeded.
    pub fn score(&self) -> Option<f64> {
        match self {
            TrialOutcome::Ok(s) => Some(*s),
            _ => None,
        }
    }

    /// True for [`TrialOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, TrialOutcome::Ok(_))
    }

    /// True for outcomes that should trip a circuit breaker: real faults
    /// (panic, timeout, non-finite scores), not plain infeasibility —
    /// `Failed` is the objective *working correctly* on a bad
    /// configuration and proves nothing about the algorithm's health.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            TrialOutcome::Panicked { .. } | TrialOutcome::TimedOut { .. } | TrialOutcome::NonFinite
        )
    }

    /// The coarse category, for counting.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            TrialOutcome::Ok(_) => OutcomeKind::Ok,
            TrialOutcome::NonFinite => OutcomeKind::NonFinite,
            TrialOutcome::Panicked { .. } => OutcomeKind::Panicked,
            TrialOutcome::TimedOut { .. } => OutcomeKind::TimedOut,
            TrialOutcome::Failed(_) => OutcomeKind::Failed,
        }
    }

    /// A human-readable reason for non-ok outcomes (used where a legacy
    /// `Result<f64, String>` is still the interface).
    pub fn failure_reason(&self) -> String {
        match self {
            TrialOutcome::Ok(s) => format!("ok ({s})"),
            TrialOutcome::NonFinite => "non-finite score".to_string(),
            TrialOutcome::Panicked { site } => format!("panicked at {site}"),
            TrialOutcome::TimedOut { elapsed } => format!("timed out after {elapsed:.2}s"),
            TrialOutcome::Failed(reason) => reason.clone(),
        }
    }
}

/// The five outcome categories, without payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Finite score.
    Ok,
    /// NaN/inf score, quarantined.
    NonFinite,
    /// Caught panic.
    Panicked,
    /// Watchdog timeout.
    TimedOut,
    /// Infeasible configuration.
    Failed,
}

impl OutcomeKind {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::NonFinite => "non_finite",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::TimedOut => "timed_out",
            OutcomeKind::Failed => "failed",
        }
    }
}

/// Per-category trial counts for one optimisation (or one algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureCounts {
    /// Trials that produced a finite score.
    #[serde(default)]
    pub ok: usize,
    /// Trials quarantined for a non-finite score.
    #[serde(default)]
    pub non_finite: usize,
    /// Trials whose fit panicked.
    #[serde(default)]
    pub panicked: usize,
    /// Trials killed by the watchdog.
    #[serde(default)]
    pub timed_out: usize,
    /// Trials on infeasible configurations.
    #[serde(default)]
    pub failed: usize,
}

impl FailureCounts {
    /// Adds one outcome to the tally.
    pub fn record(&mut self, outcome: &TrialOutcome) {
        match outcome.kind() {
            OutcomeKind::Ok => self.ok += 1,
            OutcomeKind::NonFinite => self.non_finite += 1,
            OutcomeKind::Panicked => self.panicked += 1,
            OutcomeKind::TimedOut => self.timed_out += 1,
            OutcomeKind::Failed => self.failed += 1,
        }
    }

    /// All non-ok trials.
    pub fn total_failures(&self) -> usize {
        self.non_finite + self.panicked + self.timed_out + self.failed
    }

    /// All trials, ok or not.
    pub fn total(&self) -> usize {
        self.ok + self.total_failures()
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        self.ok += other.ok;
        self.non_finite += other.non_finite;
        self.panicked += other.panicked;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn classification_from_results() {
        assert_eq!(TrialOutcome::from_result(Ok(0.5)), TrialOutcome::Ok(0.5));
        assert_eq!(TrialOutcome::from_result(Ok(f64::NAN)), TrialOutcome::NonFinite);
        assert_eq!(TrialOutcome::from_result(Ok(f64::INFINITY)), TrialOutcome::NonFinite);
        assert_eq!(
            TrialOutcome::from_result(Err("bad".into())),
            TrialOutcome::Failed("bad".into())
        );
    }

    #[test]
    fn guard_verdicts_map_onto_the_taxonomy() {
        let g = GuardOutcome::Completed(Ok(1.0));
        assert_eq!(TrialOutcome::from_guard(g), TrialOutcome::Ok(1.0));
        let g: GuardOutcome<Result<f64, String>> =
            GuardOutcome::Panicked { site: "svm::fit".into() };
        assert_eq!(TrialOutcome::from_guard(g), TrialOutcome::Panicked { site: "svm::fit".into() });
        let g: GuardOutcome<Result<f64, String>> =
            GuardOutcome::TimedOut { elapsed: Duration::from_millis(1500) };
        match TrialOutcome::from_guard(g) {
            TrialOutcome::TimedOut { elapsed } => assert!((elapsed - 1.5).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_vs_infeasible() {
        assert!(!TrialOutcome::Ok(1.0).is_fault());
        assert!(!TrialOutcome::Failed("infeasible".into()).is_fault());
        assert!(TrialOutcome::NonFinite.is_fault());
        assert!(TrialOutcome::Panicked { site: "s".into() }.is_fault());
        assert!(TrialOutcome::TimedOut { elapsed: 1.0 }.is_fault());
    }

    #[test]
    fn counts_tally_and_merge() {
        let mut counts = FailureCounts::default();
        counts.record(&TrialOutcome::Ok(0.9));
        counts.record(&TrialOutcome::NonFinite);
        counts.record(&TrialOutcome::Panicked { site: "x".into() });
        counts.record(&TrialOutcome::TimedOut { elapsed: 2.0 });
        counts.record(&TrialOutcome::Failed("f".into()));
        assert_eq!(counts.ok, 1);
        assert_eq!(counts.total_failures(), 4);
        assert_eq!(counts.total(), 5);
        let mut other = FailureCounts::default();
        other.record(&TrialOutcome::Ok(0.1));
        other.merge(&counts);
        assert_eq!(other.ok, 2);
        assert_eq!(other.total(), 6);
    }

    #[test]
    fn outcomes_round_trip_through_serde() {
        for outcome in [
            TrialOutcome::Ok(0.75),
            TrialOutcome::NonFinite,
            TrialOutcome::Panicked { site: "rf::grow".into() },
            TrialOutcome::TimedOut { elapsed: 3.25 },
            TrialOutcome::Failed("singular matrix".into()),
        ] {
            let json = serde_json::to_string(&outcome).unwrap();
            let back: TrialOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(outcome, back, "round trip failed for {json}");
        }
    }
}
