//! Hyperband (Li et al., JMLR 2018): successive halving is a great racer
//! but needs to guess how aggressively to cut — a large exploratory cohort
//! at low fidelity, or a small one evaluated thoroughly? Hyperband hedges
//! by running a *sweep of brackets*, each a successive-halving race with a
//! different trade-off: bracket `s_max` starts many configs at the lowest
//! fidelity, bracket `0` starts few configs at full fidelity. All brackets
//! draw from one shared fold-evaluation budget via [`RaceLedger`].

use crate::halving::{bracket_result, distinct_cohort, run_bracket, Member, RaceLedger};
use crate::objective::Objective;
use crate::smac::{OptOptions, OptResult, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartml_classifiers::{ParamConfig, ParamSpace};
use smartml_runtime::task_seed;

/// The Hyperband optimiser: brackets of [`crate::SuccessiveHalving`] races
/// at staggered starting fidelities.
pub struct Hyperband {
    /// Rung reduction factor η shared by every bracket (≥ 2).
    pub eta: usize,
}

impl Default for Hyperband {
    fn default() -> Self {
        Hyperband { eta: 2 }
    }
}

impl Hyperband {
    pub fn new(eta: usize) -> Self {
        Hyperband { eta: eta.max(2) }
    }
}

/// `floor(log_eta(n))` — how many η-steps fit under `n`.
fn log_eta(n: usize, eta: usize) -> usize {
    let mut s = 0;
    let mut r = eta;
    while r <= n {
        s += 1;
        r *= eta;
    }
    s
}

impl Optimizer for Hyperband {
    fn name(&self) -> &'static str {
        "Hyperband"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let eta = self.eta.max(2);
        let n_folds = objective.n_folds();
        let s_max = log_eta(n_folds, eta);
        let mut rng = StdRng::seed_from_u64(task_seed(options.seed, 0x4879_7062)); // "Hyb"
        let mut ledger = RaceLedger::new(objective, options);
        let mut warm: Vec<ParamConfig> =
            options.initial_configs.iter().map(|c| space.repair(c)).collect();
        let mut best: Option<Member> = None;

        // Sweep brackets s_max → 0 (exploratory first); repeat the sweep
        // until the fold budget is spent, so small bracket schedules don't
        // strand a large `max_trials`. Each bracket is itself cut off by
        // the shared ledger, so a sweep never overspends.
        'sweeps: loop {
            let spent_before_sweep = ledger.folds_spent;
            for s in (0..=s_max).rev() {
                if ledger.remaining() == 0 || ledger.tripped || ledger.out_of_time(options) {
                    break 'sweeps;
                }
                // Standard schedule: n_s = ceil((s_max+1)/(s+1)) · η^s
                // configs starting at fidelity r0 = n_folds / η^s.
                let n_s = ((s_max + 1).div_ceil(s + 1) * eta.pow(s as u32)).min(4096);
                let r0 = (n_folds / eta.pow(s as u32)).max(1);
                // Never launch more configs than the remaining budget can
                // give a first rung (r0 folds each).
                let n_s = n_s.min((ledger.remaining() / r0).max(1));
                // Distinct configs only: twins inside one bracket would
                // race the same fold-cache slots (see `distinct_cohort`).
                let cohort = distinct_cohort(space, &mut warm, &mut rng, n_s, ledger.launched);
                ledger.launched += cohort.len();
                let survivors = run_bracket(cohort, r0, eta, objective, options, &mut ledger);
                // Brackets are compared on their champions' full-fidelity
                // means; ties go to the earlier-launched member, same rule
                // as within a rung.
                if let Some(winner) = survivors.into_iter().next() {
                    let better = match &best {
                        None => true,
                        Some(b) => match winner.mean().partial_cmp(&b.mean()).unwrap() {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Equal => winner.seq < b.seq,
                            std::cmp::Ordering::Less => false,
                        },
                    };
                    if better {
                        best = Some(winner);
                    }
                }
            }
            if ledger.folds_spent == spent_before_sweep {
                break; // nothing runnable: avoid spinning on a zero-cost sweep
            }
        }

        bracket_result(best.as_ref(), space, ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use crate::smac::OptOptions;
    use smartml_classifiers::{ParamSpec, ParamValue};
    use smartml_runtime::Pool;

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    fn peak() -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
        StaticObjective {
            folds: 8,
            f: |c: &ParamConfig, fold| {
                1.0 - (c.f64_or("x", 0.0) - 0.6).powi(2) + fold as f64 * 1e-3
            },
        }
    }

    #[test]
    fn log_eta_schedule() {
        assert_eq!(log_eta(1, 2), 0);
        assert_eq!(log_eta(2, 2), 1);
        assert_eq!(log_eta(8, 2), 3);
        assert_eq!(log_eta(9, 3), 2);
        assert_eq!(log_eta(7, 2), 2);
    }

    #[test]
    fn finds_the_peak_region() {
        let result = Hyperband::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, seed: 5, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.6).abs() < 0.15, "best x = {x}");
    }

    #[test]
    fn respects_the_fold_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let obj = StaticObjective {
            folds: 8,
            f: |c: &ParamConfig, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                c.f64_or("x", 0.0)
            },
        };
        CALLS.store(0, Ordering::Relaxed);
        let budget_trials = 12; // = 96 fold-evals
        Hyperband::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: budget_trials, ..Default::default() },
        );
        assert!(CALLS.load(Ordering::Relaxed) <= budget_trials * 8);
    }

    #[test]
    fn runs_multiple_bracket_shapes() {
        let result = Hyperband::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, seed: 9, ..Default::default() },
        );
        // The exploratory bracket leaves rung-0 members at 1 fold; the
        // conservative bracket starts members at full fidelity.
        let folds: Vec<usize> = result.history.iter().map(|t| t.folds_evaluated).collect();
        assert!(folds.iter().any(|&f| f <= 1), "no low-fidelity bracket ran");
        assert!(folds.iter().any(|&f| f == 8), "no full-fidelity evaluation ran");
    }

    #[test]
    fn eta_changes_the_schedule() {
        let opts = OptOptions { max_trials: 30, seed: 2, ..Default::default() };
        let a = Hyperband::new(2).optimize(&space_1d(), &peak(), &opts);
        let b = Hyperband::new(4).optimize(&space_1d(), &peak(), &opts);
        // Different η ⇒ different bracket count and cohort sizes ⇒ a
        // different anytime curve (scores may coincide; shapes must not).
        let shape = |r: &crate::OptResult| {
            r.history.iter().map(|t| t.folds_evaluated).collect::<Vec<_>>()
        };
        assert_ne!(shape(&a), shape(&b));
    }

    #[test]
    fn warm_starts_join_the_first_bracket() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.6));
        let result = Hyperband::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions {
                max_trials: 20,
                initial_configs: vec![warm],
                seed: 3,
                ..Default::default()
            },
        );
        assert!((result.best_config.f64_or("x", 0.0) - 0.6).abs() < 0.05);
    }

    #[test]
    fn identical_results_at_pool_widths_1_2_8() {
        let run = |width: usize| {
            let opts = OptOptions {
                max_trials: 24,
                seed: 13,
                pool: Pool::new(width),
                ..Default::default()
            };
            let r = Hyperband::default().optimize(&space_1d(), &peak(), &opts);
            let curve: Vec<(String, usize)> = r
                .history
                .iter()
                .map(|t| (format!("{}:{:.12}", t.config.summary(), t.score), t.folds_evaluated))
                .collect();
            (r.best_config, r.best_score.to_bits(), curve)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn single_fold_objective_degenerates_to_one_bracket() {
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.f64_or("x", 0.0) };
        let result = Hyperband::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 10, seed: 1, ..Default::default() },
        );
        assert!(result.best_score > 0.0);
        assert!(result.history.iter().all(|t| t.folds_evaluated <= 1));
    }
}
