//! Grid search — the other half of Google Vizier's "grid or random search"
//! (paper Table 1). Builds a Cartesian grid with a per-dimension resolution
//! chosen so the grid size does not exceed the trial budget, then evaluates
//! cells in a centre-out order (coarse coverage first).

use crate::objective::Objective;
use crate::outcome::FailureCounts;
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use smartml_classifiers::{ParamConfig, ParamSpace, ParamSpec, ParamValue};
use smartml_runtime::faults::TrialToken;
use std::time::Instant;

/// Deterministic grid search over a [`ParamSpace`].
#[derive(Default)]
pub struct GridSearch;

impl GridSearch {
    /// Grid levels for one dimension at the given resolution.
    fn levels(spec: &ParamSpec, resolution: usize) -> Vec<ParamValue> {
        match spec {
            ParamSpec::Cat { choices, .. } => {
                choices.iter().map(|c| ParamValue::Cat(c.clone())).collect()
            }
            ParamSpec::Real { lo, hi, log, .. } => {
                let r = resolution.max(2);
                (0..r)
                    .map(|i| {
                        let t = i as f64 / (r - 1) as f64;
                        let v = if *log {
                            (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                        } else {
                            lo + t * (hi - lo)
                        };
                        ParamValue::Real(v)
                    })
                    .collect()
            }
            ParamSpec::Int { lo, hi, log, .. } => {
                let span = (hi - lo) as usize + 1;
                let r = resolution.max(2).min(span);
                let mut vals: Vec<i64> = (0..r)
                    .map(|i| {
                        let t = i as f64 / (r - 1) as f64;
                        if *log && *lo >= 1 {
                            ((*lo as f64).ln() + t * ((*hi as f64).ln() - (*lo as f64).ln()))
                                .exp()
                                .round() as i64
                        } else {
                            (*lo as f64 + t * (*hi - *lo) as f64).round() as i64
                        }
                    })
                    .map(|v| v.clamp(*lo, *hi))
                    .collect();
                vals.dedup();
                vals.into_iter().map(ParamValue::Int).collect()
            }
        }
    }

    /// Largest per-dimension resolution whose full grid fits in `budget`.
    fn pick_resolution(space: &ParamSpace, budget: usize) -> usize {
        let mut resolution = 2usize;
        loop {
            let next = resolution + 1;
            let size: f64 = space
                .params
                .iter()
                .map(|p| Self::levels(p, next).len() as f64)
                .product();
            if size > budget as f64 || next > 16 {
                return resolution;
            }
            resolution = next;
        }
    }
}

impl Optimizer for GridSearch {
    fn name(&self) -> &'static str {
        "GridSearch"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let start = Instant::now();
        let mut history: Vec<Trial> = Vec::new();
        let mut failures = FailureCounts::default();
        if space.params.is_empty() {
            let config = ParamConfig::default();
            let token = TrialToken::bounded(options.trial_timeout, options.deadline);
            let outcome = objective.evaluate_full_outcome(&config, options.pool, &token);
            failures.record(&outcome);
            let score = outcome.score().unwrap_or(0.0);
            return OptResult {
                best_config: config.clone(),
                best_score: score,
                history: vec![Trial {
                    config,
                    score,
                    folds_evaluated: objective.n_folds(),
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    outcome: Some(outcome),
                }],
                failures,
                tripped: false,
            };
        }
        let resolution = Self::pick_resolution(space, options.max_trials.max(4));
        let levels: Vec<Vec<ParamValue>> =
            space.params.iter().map(|p| Self::levels(p, resolution)).collect();
        // Enumerate cells by mixed-radix counting; order by distance from the
        // grid centre so early-stopped runs still cover the middle.
        let total: usize = levels.iter().map(Vec::len).product();
        let mut cells: Vec<(usize, Vec<usize>)> = Vec::with_capacity(total);
        let mut idx = vec![0usize; levels.len()];
        loop {
            let centre_dist: usize = idx
                .iter()
                .zip(&levels)
                .map(|(&i, lv)| {
                    let c = (lv.len() - 1) / 2;
                    i.abs_diff(c)
                })
                .sum();
            cells.push((centre_dist, idx.clone()));
            // Increment mixed-radix counter.
            let mut dim = 0;
            loop {
                if dim == levels.len() {
                    break;
                }
                idx[dim] += 1;
                if idx[dim] < levels[dim].len() {
                    break;
                }
                idx[dim] = 0;
                dim += 1;
            }
            if dim == levels.len() {
                break;
            }
        }
        cells.sort_by_key(|(d, i)| (*d, i.clone()));

        let mut best: Option<(f64, usize)> = None;
        for (_, cell) in cells.into_iter().take(options.max_trials) {
            if options.wall_clock.is_some_and(|b| start.elapsed() >= b) {
                break;
            }
            let mut config = ParamConfig::default();
            for ((spec, lv), &i) in space.params.iter().zip(&levels).zip(&cell) {
                config.values.insert(spec.name().to_string(), lv[i].clone());
            }
            let token = TrialToken::bounded(options.trial_timeout, options.deadline);
            let outcome = objective.evaluate_full_outcome(&config, options.pool, &token);
            failures.record(&outcome);
            let score = outcome.score().unwrap_or(0.0);
            let usable = outcome.is_ok();
            history.push(Trial {
                config,
                score,
                folds_evaluated: objective.n_folds(),
                elapsed_secs: start.elapsed().as_secs_f64(),
                outcome: Some(outcome),
            });
            if usable && best.is_none_or(|(b, _)| score > b) {
                best = Some((score, history.len() - 1));
            }
        }
        match best {
            Some((score, i)) => OptResult {
                best_config: history[i].config.clone(),
                best_score: score,
                history,
                failures,
                tripped: false,
            },
            None => OptResult {
                best_config: space.default_config(),
                best_score: 0.0,
                history,
                failures,
                tripped: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;

    fn space_2d() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false },
            ParamSpec::Cat { name: "mode".into(), choices: vec!["a".into(), "b".into()] },
        ])
    }

    #[test]
    fn grid_covers_both_categories() {
        let obj = StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| {
                let bonus = if c.str_or("mode", "a") == "b" { 0.5 } else { 0.0 };
                bonus + 0.5 * (1.0 - (c.f64_or("x", 0.0) - 0.5).abs())
            },
        };
        let result = GridSearch.optimize(
            &space_2d(),
            &obj,
            &OptOptions { max_trials: 20, ..Default::default() },
        );
        assert_eq!(result.best_config.str_or("mode", "a"), "b");
        let seen_a = result.history.iter().any(|t| t.config.str_or("mode", "") == "a");
        let seen_b = result.history.iter().any(|t| t.config.str_or("mode", "") == "b");
        assert!(seen_a && seen_b);
    }

    #[test]
    fn respects_budget() {
        let obj = StaticObjective { folds: 1, f: |_: &ParamConfig, _| 0.5 };
        let result = GridSearch.optimize(
            &space_2d(),
            &obj,
            &OptOptions { max_trials: 7, ..Default::default() },
        );
        assert!(result.history.len() <= 7);
    }

    #[test]
    fn centre_first_ordering() {
        let obj = StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| 1.0 - (c.f64_or("x", 0.0) - 0.5).abs(),
        };
        let space =
            ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }]);
        let result = GridSearch.optimize(&space, &obj, &OptOptions { max_trials: 3, ..Default::default() });
        // The first evaluated cell is the grid centre.
        let first_x = result.history[0].config.f64_or("x", -1.0);
        assert!((first_x - 0.5).abs() < 0.35, "first cell x = {first_x}");
    }

    #[test]
    fn integer_grids_dedupe() {
        let space =
            ParamSpace::new(vec![ParamSpec::Int { name: "k".into(), lo: 1, hi: 3, log: false }]);
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.i64_or("k", 0) as f64 };
        let result =
            GridSearch.optimize(&space, &obj, &OptOptions { max_trials: 50, ..Default::default() });
        assert!(result.history.len() <= 3);
        assert_eq!(result.best_config.i64_or("k", 0), 3);
    }

    #[test]
    fn deterministic() {
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.f64_or("x", 0.0) };
        let opts = OptOptions { max_trials: 9, ..Default::default() };
        let a = GridSearch.optimize(&space_2d(), &obj, &opts);
        let b = GridSearch.optimize(&space_2d(), &obj, &opts);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn empty_space_returns_default() {
        let space = ParamSpace::new(vec![]);
        let obj = StaticObjective { folds: 1, f: |_: &ParamConfig, _| 0.7 };
        let result =
            GridSearch.optimize(&space, &obj, &OptOptions { max_trials: 5, ..Default::default() });
        assert_eq!(result.best_score, 0.7);
        assert_eq!(result.history.len(), 1);
    }
}
