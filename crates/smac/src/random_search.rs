//! Random search — the Google-Vizier-style baseline of paper Table 1.

use crate::objective::Objective;
use crate::outcome::FailureCounts;
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartml_classifiers::ParamSpace;
use smartml_runtime::faults::TrialToken;
use std::time::Instant;

/// Uniform random search over the parameter space. Evaluates every
/// configuration on all folds (no racing).
#[derive(Default)]
pub struct RandomSearch;

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "RandomSearch"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut history: Vec<Trial> = Vec::new();
        let mut failures = FailureCounts::default();
        let mut best: Option<(f64, usize)> = None;
        let mut queue: Vec<_> = options.initial_configs.iter().map(|c| space.repair(c)).collect();
        for t in 0..options.max_trials {
            if options.wall_clock.is_some_and(|b| start.elapsed() >= b) {
                break;
            }
            let config = if t < queue.len() { queue[t].clone() } else { space.sample(&mut rng) };
            let token = TrialToken::bounded(options.trial_timeout, options.deadline);
            let outcome = objective.evaluate_full_outcome(&config, options.pool, &token);
            failures.record(&outcome);
            let (score, folds) = match outcome.score() {
                Some(s) => (s, objective.n_folds()),
                None => (0.0, 0),
            };
            let usable = outcome.is_ok();
            history.push(Trial {
                config,
                score,
                folds_evaluated: folds,
                elapsed_secs: start.elapsed().as_secs_f64(),
                outcome: Some(outcome),
            });
            if usable && best.is_none_or(|(b, _)| score > b) {
                best = Some((score, history.len() - 1));
            }
        }
        queue.clear();
        match best {
            Some((score, idx)) => OptResult {
                best_config: history[idx].config.clone(),
                best_score: score,
                history,
                failures,
                tripped: false,
            },
            None => OptResult {
                best_config: space.default_config(),
                best_score: 0.0,
                history,
                failures,
                tripped: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use smartml_classifiers::{ParamConfig, ParamSpec};

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    #[test]
    fn finds_decent_point_with_enough_trials() {
        let obj = StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| 1.0 - (c.f64_or("x", 0.0) - 0.3).abs(),
        };
        let result = RandomSearch.optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 100, ..Default::default() },
        );
        assert!(result.best_score > 0.9);
        assert_eq!(result.history.len(), 100);
    }

    #[test]
    fn initial_configs_evaluated_first() {
        let warm = ParamConfig::default().with("x", smartml_classifiers::ParamValue::Real(0.25));
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.f64_or("x", 0.0) };
        let result = RandomSearch.optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 3, initial_configs: vec![warm.clone()], ..Default::default() },
        );
        assert_eq!(result.history[0].config, warm);
    }

    #[test]
    fn deterministic_given_seed() {
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.f64_or("x", 0.0) };
        let opts = OptOptions { max_trials: 10, seed: 9, ..Default::default() };
        let a = RandomSearch.optimize(&space_1d(), &obj, &opts);
        let b = RandomSearch.optimize(&space_1d(), &obj, &opts);
        assert_eq!(a.best_config, b.best_config);
    }
}
