//! TPE — tree-structured Parzen estimator (Bergstra et al. 2011).
//! Auto-Weka tunes with "SMAC and TPE" (paper Table 1); the Auto-Weka
//! simulation baseline can therefore use either optimiser.

use crate::objective::Objective;
use crate::outcome::FailureCounts;
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_classifiers::{ParamConfig, ParamSpace, ParamSpec, ParamValue};
use smartml_runtime::faults::TrialToken;
use std::time::Instant;

/// The TPE optimiser: models P(x | good) and P(x | bad) with per-dimension
/// Parzen estimators and proposes the candidate maximising the density
/// ratio l(x)/g(x).
pub struct Tpe {
    /// Quantile separating "good" from "bad" observations.
    pub gamma: f64,
    /// Candidates sampled from l(x) per iteration.
    pub n_candidates: usize,
    /// Random start-up evaluations before the model kicks in.
    pub n_startup: f64,
    /// Fraction of iterations that evaluate a pure-random configuration —
    /// keeps the search ergodic on needle-in-haystack objectives.
    pub random_interleave: f64,
}

impl Default for Tpe {
    fn default() -> Self {
        Tpe { gamma: 0.25, n_candidates: 24, n_startup: 5.0, random_interleave: 0.15 }
    }
}

impl Optimizer for Tpe {
    fn name(&self) -> &'static str {
        "TPE"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut history: Vec<Trial> = Vec::new();
        let mut failures = FailureCounts::default();
        let warm: Vec<ParamConfig> =
            options.initial_configs.iter().map(|c| space.repair(c)).collect();
        for t in 0..options.max_trials {
            if options.wall_clock.is_some_and(|b| start.elapsed() >= b) {
                break;
            }
            let config = if t < warm.len() {
                warm[t].clone()
            } else if (history.len() as f64) < self.n_startup
                || rng.gen_bool(self.random_interleave)
            {
                space.sample(&mut rng)
            } else {
                self.propose(space, &history, &mut rng)
            };
            let token = TrialToken::bounded(options.trial_timeout, options.deadline);
            let outcome = objective.evaluate_full_outcome(&config, options.pool, &token);
            failures.record(&outcome);
            let score = outcome.score().unwrap_or(0.0);
            history.push(Trial {
                config,
                score,
                folds_evaluated: objective.n_folds(),
                elapsed_secs: start.elapsed().as_secs_f64(),
                outcome: Some(outcome),
            });
        }
        let best = history
            .iter()
            .filter(|t| t.is_success())
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .cloned();
        match best {
            Some(t) => OptResult {
                best_config: t.config,
                best_score: t.score,
                history,
                failures,
                tripped: false,
            },
            None => OptResult {
                best_config: space.default_config(),
                best_score: 0.0,
                history,
                failures,
                tripped: false,
            },
        }
    }
}

impl Tpe {
    fn propose(&self, space: &ParamSpace, history: &[Trial], rng: &mut StdRng) -> ParamConfig {
        // Split observations into good (top γ) and bad.
        let mut order: Vec<usize> = (0..history.len()).collect();
        order.sort_by(|&a, &b| history[b].score.partial_cmp(&history[a].score).unwrap());
        let n_good = ((history.len() as f64 * self.gamma).ceil() as usize).clamp(1, history.len());
        let good: Vec<&Trial> = order[..n_good].iter().map(|&i| &history[i]).collect();
        let bad: Vec<&Trial> = order[n_good..].iter().map(|&i| &history[i]).collect();
        // Sample candidates from the good-density, score by l/g.
        let mut best: Option<(ParamConfig, f64)> = None;
        for _ in 0..self.n_candidates {
            let candidate = self.sample_from(space, &good, rng);
            let l = self.density(space, &candidate, &good);
            let g = self.density(space, &candidate, &bad).max(1e-12);
            let ratio = l / g;
            if best.as_ref().is_none_or(|(_, b)| ratio > *b) {
                best = Some((candidate, ratio));
            }
        }
        best.map(|(c, _)| c).unwrap_or_else(|| space.sample(rng))
    }

    /// Draws a candidate: per dimension, pick a random good observation and
    /// perturb it (Parzen kernel sample); fall back to the prior when the
    /// good set lacks the parameter.
    fn sample_from(&self, space: &ParamSpace, good: &[&Trial], rng: &mut StdRng) -> ParamConfig {
        let mut config = ParamConfig::default();
        for spec in &space.params {
            let anchor = good[rng.gen_range(0..good.len())].config.get(spec.name()).cloned();
            let value = match anchor {
                Some(v) => spec.neighbor(&v, rng),
                None => spec.sample(rng),
            };
            config.values.insert(spec.name().to_string(), value);
        }
        space.repair(&config)
    }

    /// Parzen density of `config` under a trial set: product over dimensions
    /// of kernel densities (Gaussian for numeric with bandwidth 20% of the
    /// range, frequency-smoothed for categorical).
    fn density(&self, space: &ParamSpace, config: &ParamConfig, trials: &[&Trial]) -> f64 {
        if trials.is_empty() {
            return 1e-12;
        }
        let mut log_density = 0.0;
        for spec in &space.params {
            let Some(value) = config.get(spec.name()) else { continue };
            let x = spec.encode(value);
            match spec {
                ParamSpec::Cat { choices, .. } => {
                    let mut count = 1.0; // Laplace smoothing
                    for t in trials {
                        if let Some(ParamValue::Cat(c)) = t.config.get(spec.name()) {
                            if c == value.as_str() {
                                count += 1.0;
                            }
                        }
                    }
                    log_density += (count / (trials.len() as f64 + choices.len() as f64)).ln();
                }
                _ => {
                    let bw = 0.2;
                    let mut density = 0.0;
                    for t in trials {
                        if let Some(v) = t.config.get(spec.name()) {
                            let mu = spec.encode(v);
                            let z = (x - mu) / bw;
                            density += (-0.5 * z * z).exp();
                        }
                    }
                    log_density += (density / trials.len() as f64 + 1e-12).ln();
                }
            }
        }
        log_density.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    #[test]
    fn tpe_concentrates_near_the_peak() {
        let obj = StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| 1.0 - (c.f64_or("x", 0.0) - 0.4).powi(2) * 4.0,
        };
        let result = Tpe::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 60, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.4).abs() < 0.15, "best x = {x}");
    }

    #[test]
    fn tpe_beats_pure_chance_on_average() {
        // Over several seeds, TPE's best should at least match random
        // search's on a narrow-peak objective with equal budgets.
        let make_obj = || StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| (-((c.f64_or("x", 0.0) - 0.85) / 0.2).powi(2)).exp(),
        };
        let mut tpe_total = 0.0;
        let mut rs_total = 0.0;
        for seed in 0..5 {
            let opts = OptOptions { max_trials: 40, seed, ..Default::default() };
            tpe_total += Tpe::default().optimize(&space_1d(), &make_obj(), &opts).best_score;
            rs_total += crate::RandomSearch.optimize(&space_1d(), &make_obj(), &opts).best_score;
        }
        assert!(
            tpe_total >= rs_total * 0.95,
            "TPE total {tpe_total} well below random {rs_total}"
        );
    }

    #[test]
    fn categorical_dimensions_supported() {
        let space = ParamSpace::new(vec![
            ParamSpec::Cat { name: "mode".into(), choices: vec!["a".into(), "b".into()] },
            ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false },
        ]);
        let obj = StaticObjective {
            folds: 1,
            f: |c: &ParamConfig, _| {
                let bonus = if c.str_or("mode", "a") == "b" { 0.5 } else { 0.0 };
                bonus + c.f64_or("x", 0.0) * 0.5
            },
        };
        let result = Tpe::default().optimize(
            &space,
            &obj,
            &OptOptions { max_trials: 50, ..Default::default() },
        );
        assert_eq!(result.best_config.str_or("mode", "a"), "b");
    }

    #[test]
    fn warm_starts_run_first() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.123));
        let obj = StaticObjective { folds: 1, f: |c: &ParamConfig, _| c.f64_or("x", 0.0) };
        let result = Tpe::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 3, initial_configs: vec![warm.clone()], ..Default::default() },
        );
        assert_eq!(result.history[0].config, warm);
    }
}
