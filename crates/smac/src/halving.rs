//! Successive halving — a budget-racing optimiser (Jamieson & Talwalkar,
//! AISTATS 2016), included as an extension: where SMAC races *challenger vs
//! incumbent*, successive halving races a whole cohort, discarding the worst
//! half at each rung of increasing fidelity. Fidelity here is the number of
//! CV folds evaluated, the same axis the paper's SMAC intensification uses
//! ("discard low performance configurations quickly after the evaluation on
//! a low number of folds").

use crate::objective::Objective;
use crate::outcome::{FailureCounts, TrialOutcome};
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartml_classifiers::{ParamConfig, ParamSpace};
use smartml_runtime::faults::TrialToken;
use std::time::Instant;

/// The successive-halving optimiser.
pub struct SuccessiveHalving {
    /// Cohort reduction factor per rung (η; 2 = drop the worst half).
    pub eta: usize,
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        SuccessiveHalving { eta: 2 }
    }
}

struct Member {
    config: ParamConfig,
    fold_scores: Vec<f64>,
    failed: bool,
    failure: Option<TrialOutcome>,
}

impl Member {
    fn mean(&self) -> f64 {
        if self.failed || self.fold_scores.is_empty() {
            f64::NEG_INFINITY
        } else {
            self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
        }
    }
}

impl Optimizer for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "SuccessiveHalving"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let eta = self.eta.max(2);
        let n_folds = objective.n_folds();
        // Budget accounting in fold-evaluations: `max_trials` full
        // evaluations worth, same currency the other optimisers spend.
        let budget_folds = options.max_trials.saturating_mul(n_folds).max(n_folds);

        // Initial cohort: warm starts first, then random samples. A cohort
        // of size n costs roughly n + n/η·1 + n/η²·2 … fold-evals with the
        // doubling fidelity schedule below; sizing n = budget·(η-1)/η keeps
        // the total within budget for η = 2 while using most of it.
        let cohort_size = ((budget_folds * (eta - 1)) / eta).clamp(eta, 4096);
        let mut cohort: Vec<Member> = options
            .initial_configs
            .iter()
            .map(|c| space.repair(c))
            .chain((0..cohort_size).map(|_| space.sample(&mut rng)))
            .take(cohort_size)
            .map(|config| Member { config, fold_scores: Vec::new(), failed: false, failure: None })
            .collect();

        let mut history: Vec<Trial> = Vec::new();
        let mut failures = FailureCounts::default();
        let mut folds_spent = 0usize;
        let mut fidelity = 1usize; // folds each survivor is evaluated to
        loop {
            let out_of_time = options.wall_clock.is_some_and(|b| start.elapsed() >= b);
            // Evaluate every member up to the current fidelity.
            for member in &mut cohort {
                let token = TrialToken::bounded(options.trial_timeout, options.deadline);
                while !member.failed
                    && member.fold_scores.len() < fidelity.min(n_folds)
                    && folds_spent < budget_folds
                    && !out_of_time
                {
                    let fold = member.fold_scores.len();
                    folds_spent += 1;
                    match objective.evaluate_fold_guarded(&member.config, fold, &token) {
                        TrialOutcome::Ok(score) => member.fold_scores.push(score),
                        failure => {
                            member.failed = true;
                            failures.record(&failure);
                            member.failure = Some(failure);
                        }
                    }
                }
            }
            // Record this rung's state for every member (anytime curve).
            for member in &cohort {
                history.push(Trial {
                    config: member.config.clone(),
                    score: if member.failed { 0.0 } else { member.mean().max(0.0) },
                    folds_evaluated: member.fold_scores.len(),
                    elapsed_secs: start.elapsed().as_secs_f64(),
                    outcome: Some(match &member.failure {
                        Some(failure) => failure.clone(),
                        None => TrialOutcome::Ok(member.mean().max(0.0)),
                    }),
                });
            }
            // Stop when one survivor remains at full fidelity or the budget
            // is gone.
            let done = cohort.len() <= 1 && fidelity >= n_folds;
            if done || folds_spent >= budget_folds || out_of_time {
                break;
            }
            // Keep the best 1/η (at least one), raise fidelity.
            cohort.sort_by(|a, b| b.mean().partial_cmp(&a.mean()).unwrap());
            let keep = (cohort.len() / eta).max(1);
            cohort.truncate(keep);
            fidelity = (fidelity * eta).min(n_folds);
        }

        cohort.sort_by(|a, b| b.mean().partial_cmp(&a.mean()).unwrap());
        // Failures were tallied as they happened; members that never
        // failed count once each as ok trials.
        failures.ok = history
            .iter()
            .filter(|t| t.is_success())
            .map(|t| t.config.summary())
            .collect::<std::collections::HashSet<_>>()
            .len();
        match cohort.first() {
            Some(best) if !best.failed => OptResult {
                best_config: best.config.clone(),
                best_score: best.mean().max(0.0),
                history,
                failures,
                tripped: false,
            },
            _ => OptResult {
                best_config: space.default_config(),
                best_score: 0.0,
                history,
                failures,
                tripped: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use smartml_classifiers::{ParamSpec, ParamValue};

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    fn peak() -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send> {
        StaticObjective {
            folds: 4,
            f: |c: &ParamConfig, fold| {
                1.0 - (c.f64_or("x", 0.0) - 0.6).powi(2) + fold as f64 * 1e-3
            },
        }
    }

    #[test]
    fn finds_the_peak_region() {
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 60, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.6).abs() < 0.15, "best x = {x}");
    }

    #[test]
    fn survivors_reach_full_fidelity_losers_do_not() {
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, ..Default::default() },
        );
        let max_folds = result.history.iter().map(|t| t.folds_evaluated).max().unwrap();
        let min_folds = result.history.iter().map(|t| t.folds_evaluated).min().unwrap();
        assert_eq!(max_folds, 4, "a survivor must be fully evaluated");
        assert!(min_folds < 4, "early-rung members must have been cut early");
    }

    #[test]
    fn fold_budget_respected() {
        // Count actual objective calls via a side channel.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let obj = StaticObjective {
            folds: 4,
            f: |c: &ParamConfig, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                c.f64_or("x", 0.0)
            },
        };
        CALLS.store(0, Ordering::Relaxed);
        let budget_trials = 20; // = 80 fold-evals
        SuccessiveHalving::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: budget_trials, ..Default::default() },
        );
        let calls = CALLS.load(Ordering::Relaxed);
        assert!(calls <= budget_trials * 4, "spent {calls} fold-evals");
    }

    #[test]
    fn warm_starts_join_the_cohort() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.6));
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions {
                max_trials: 30,
                initial_configs: vec![warm.clone()],
                seed: 3,
                ..Default::default()
            },
        );
        // The warm start sits at the optimum; it must win.
        assert!((result.best_config.f64_or("x", 0.0) - 0.6).abs() < 0.05);
    }

    #[test]
    fn all_failures_degrade_gracefully() {
        struct Fails;
        impl crate::Objective for Fails {
            fn n_folds(&self) -> usize {
                2
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                Err("nope".into())
            }
        }
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &Fails,
            &OptOptions { max_trials: 8, ..Default::default() },
        );
        assert_eq!(result.best_score, 0.0);
    }

    #[test]
    fn deterministic() {
        let opts = OptOptions { max_trials: 25, seed: 11, ..Default::default() };
        let a = SuccessiveHalving::default().optimize(&space_1d(), &peak(), &opts);
        let b = SuccessiveHalving::default().optimize(&space_1d(), &peak(), &opts);
        assert_eq!(a.best_config, b.best_config);
    }
}
