//! Successive halving — a budget-racing optimiser (Jamieson & Talwalkar,
//! AISTATS 2016), included as an extension: where SMAC races *challenger vs
//! incumbent*, successive halving races a whole cohort, discarding the worst
//! half at each rung of increasing fidelity. Fidelity here is the number of
//! CV folds evaluated, the same axis the paper's SMAC intensification uses
//! ("discard low performance configurations quickly after the evaluation on
//! a low number of folds").
//!
//! The rung engine in this module ([`RaceLedger`] / [`run_bracket`]) is
//! shared with [`crate::hyperband::Hyperband`], which runs several brackets
//! of it at staggered starting fidelities against one fold budget.

use crate::objective::Objective;
use crate::outcome::{FailureCounts, TrialOutcome};
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartml_classifiers::{ParamConfig, ParamSpace};
use smartml_obs::span;
use smartml_runtime::faults::TrialToken;
use std::time::Instant;

/// The successive-halving optimiser.
pub struct SuccessiveHalving {
    /// Cohort reduction factor per rung (η; 2 = drop the worst half).
    pub eta: usize,
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        SuccessiveHalving { eta: 2 }
    }
}

impl SuccessiveHalving {
    pub fn new(eta: usize) -> Self {
        SuccessiveHalving { eta: eta.max(2) }
    }
}

/// One racing configuration and everything learned about it so far.
pub(crate) struct Member {
    pub config: ParamConfig,
    /// Global launch index — the deterministic tie-breaker: when two
    /// members score identically, the earlier-launched one wins, so rung
    /// cuts never depend on an unstable sort or on scheduling.
    pub seq: usize,
    pub fold_scores: Vec<f64>,
    pub failed: bool,
    pub failure: Option<TrialOutcome>,
}

impl Member {
    pub fn new(config: ParamConfig, seq: usize) -> Member {
        Member { config, seq, fold_scores: Vec::new(), failed: false, failure: None }
    }

    pub fn mean(&self) -> f64 {
        if self.failed || self.fold_scores.is_empty() {
            f64::NEG_INFINITY
        } else {
            self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
        }
    }
}

/// Sorts best-first by `(mean desc, seq asc)` — total and deterministic
/// (means are never NaN: failures map to `NEG_INFINITY`).
pub(crate) fn sort_best_first(cohort: &mut [Member]) {
    cohort.sort_by(|a, b| {
        b.mean().partial_cmp(&a.mean()).unwrap().then_with(|| a.seq.cmp(&b.seq))
    });
}

/// Budget/outcome bookkeeping shared by every bracket of one `optimize`
/// call, so Hyperband's brackets draw from a single fold-evaluation pot.
pub(crate) struct RaceLedger {
    pub start: Instant,
    /// Total fold-evaluation budget for the whole optimisation.
    pub budget_folds: usize,
    /// Fold-evaluations charged so far (charged at allocation time — a
    /// member that faults mid-rung forfeits the rest of its grant, which
    /// keeps accounting independent of where a fault lands).
    pub folds_spent: usize,
    pub history: Vec<Trial>,
    pub failures: FailureCounts,
    /// Members launched so far, across brackets (the `seq` source).
    pub launched: usize,
    /// Consecutive faulted members, in member order (breaker input).
    pub consecutive_faults: usize,
    pub tripped: bool,
}

impl RaceLedger {
    pub fn new(objective: &dyn Objective, options: &OptOptions) -> RaceLedger {
        let n_folds = objective.n_folds();
        RaceLedger {
            start: Instant::now(),
            // Budget accounting in fold-evaluations: `max_trials` full
            // evaluations worth, same currency the other optimisers spend.
            budget_folds: options.max_trials.saturating_mul(n_folds).max(n_folds),
            folds_spent: 0,
            history: Vec::new(),
            failures: FailureCounts::default(),
            launched: 0,
            consecutive_faults: 0,
            tripped: false,
        }
    }

    pub fn remaining(&self) -> usize {
        self.budget_folds - self.folds_spent
    }

    pub fn out_of_time(&self, options: &OptOptions) -> bool {
        options.wall_clock.is_some_and(|b| self.start.elapsed() >= b)
            || options.deadline.expired()
    }

    /// Successful trials count once per distinct configuration; failures
    /// were tallied as they happened.
    pub fn finish_failures(&mut self) {
        self.failures.ok = self
            .history
            .iter()
            .filter(|t| t.is_success())
            .map(|t| t.config.summary())
            .collect::<std::collections::HashSet<_>>()
            .len();
    }

    /// Folds `result` into the breaker state, in member order.
    pub(crate) fn account_member(&mut self, failure: Option<&TrialOutcome>, options: &OptOptions) {
        match failure {
            Some(f) if f.is_fault() => {
                self.consecutive_faults += 1;
                if options.breaker_threshold > 0
                    && self.consecutive_faults >= options.breaker_threshold
                {
                    self.tripped = true;
                }
            }
            _ => self.consecutive_faults = 0,
        }
    }
}

/// Races one cohort through rungs of η-increasing fidelity, evaluating
/// each rung on `options.pool` (the rung itself is a barrier; see
/// [`crate::Asha`] for the barrier-free variant). Returns the cohort
/// sorted best-first. Deterministic at any pool width: per-member fold
/// grants are precomputed in member order before the rung runs, so the
/// budget cutoff never depends on completion order.
pub(crate) fn run_bracket(
    mut cohort: Vec<Member>,
    r0: usize,
    eta: usize,
    objective: &dyn Objective,
    options: &OptOptions,
    ledger: &mut RaceLedger,
) -> Vec<Member> {
    let n_folds = objective.n_folds();
    let mut fidelity = r0.clamp(1, n_folds);
    let mut rung = 0usize;
    loop {
        if cohort.is_empty() || ledger.tripped {
            break;
        }
        let out_of_time = ledger.out_of_time(options);
        // Deterministic budget cutoff: grant folds in member order before
        // anything runs, charging the ledger up front.
        let grants: Vec<(usize, usize)> = cohort
            .iter()
            .map(|m| {
                if m.failed || out_of_time {
                    return (m.fold_scores.len(), 0);
                }
                let need = fidelity.min(n_folds).saturating_sub(m.fold_scores.len());
                let grant = need.min(ledger.remaining());
                ledger.folds_spent += grant;
                (m.fold_scores.len(), grant)
            })
            .collect();

        // Evaluate the rung: one pool task per member, folds sequential
        // within a member (a fault forfeits the member's remaining grant).
        let _rung_span = span!(
            "smac.rung",
            algo = &options.trace_tag,
            rung = rung,
            cohort = cohort.len(),
            fidelity = fidelity.min(n_folds)
        );
        let tag = &options.trace_tag;
        let tasks: Vec<(usize, usize, &ParamConfig)> = cohort
            .iter()
            .zip(&grants)
            .map(|(m, &(from, n))| (from, n, &m.config))
            .collect();
        let results = options.pool.map_indexed(tasks, |i, (from, n, config)| {
            let _s = span!("smac.rung.member", algo = tag, rung = rung, member = i);
            let token = TrialToken::bounded(options.trial_timeout, options.deadline);
            let mut scores = Vec::with_capacity(n);
            let mut failure = None;
            for fold in from..from + n {
                let _f = span!("smac.fold", algo = tag, fold = fold);
                match objective.evaluate_fold_guarded(config, fold, &token) {
                    TrialOutcome::Ok(score) => scores.push(score),
                    other => {
                        failure = Some(other);
                        break;
                    }
                }
            }
            (scores, failure)
        });

        // Apply results in member order: deterministic ledger, breaker and
        // history regardless of which worker finished first.
        for (member, (scores, failure)) in cohort.iter_mut().zip(results) {
            member.fold_scores.extend(scores);
            if let Some(f) = failure {
                member.failed = true;
                ledger.failures.record(&f);
                member.failure = Some(f);
            }
        }
        for (i, member) in cohort.iter().enumerate() {
            if grants[i].1 > 0 {
                let failure = member.failure.clone();
                ledger.account_member(failure.as_ref(), options);
            }
        }
        // Record this rung's state for every member (anytime curve).
        for member in &cohort {
            ledger.history.push(Trial {
                config: member.config.clone(),
                score: if member.failed { 0.0 } else { member.mean().max(0.0) },
                folds_evaluated: member.fold_scores.len(),
                elapsed_secs: ledger.start.elapsed().as_secs_f64(),
                outcome: Some(match &member.failure {
                    Some(failure) => failure.clone(),
                    None => TrialOutcome::Ok(member.mean().max(0.0)),
                }),
            });
        }
        // Stop when one survivor remains at full fidelity or the budget
        // is gone.
        let done = cohort.len() <= 1 && fidelity >= n_folds;
        if done || ledger.folds_spent >= ledger.budget_folds || out_of_time || ledger.tripped {
            break;
        }
        // Keep the best 1/η (at least one), raise fidelity.
        sort_best_first(&mut cohort);
        let keep = (cohort.len() / eta).max(1);
        cohort.truncate(keep);
        fidelity = (fidelity * eta).min(n_folds);
        rung += 1;
    }
    sort_best_first(&mut cohort);
    cohort
}

/// Builds a cohort of up to `size` members with pairwise-distinct
/// configurations: `warm` entries first (consumed), then random samples.
/// Twin members inside one cohort would race the same `(config, fold)`
/// fold-cache slots concurrently, which wastes budget re-scoring known
/// configurations and — under injected faults — makes outcome kinds
/// depend on which worker computes and which waits; distinct cohorts
/// keep rungs width-independent. Sampling gives up after 64 consecutive
/// duplicate draws (effectively exhausted discrete spaces).
pub(crate) fn distinct_cohort(
    space: &ParamSpace,
    warm: &mut Vec<ParamConfig>,
    rng: &mut StdRng,
    size: usize,
    first_seq: usize,
) -> Vec<Member> {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut cohort: Vec<Member> = Vec::new();
    for config in warm.drain(..) {
        if cohort.len() == size {
            break; // dropping the drain discards unused warm starts
        }
        if seen.insert(config.summary()) {
            cohort.push(Member::new(config, first_seq + cohort.len()));
        }
    }
    let mut misses = 0;
    while cohort.len() < size && misses < 64 {
        let config = space.sample(rng);
        if seen.insert(config.summary()) {
            misses = 0;
            cohort.push(Member::new(config, first_seq + cohort.len()));
        } else {
            misses += 1;
        }
    }
    cohort
}

/// Packages a raced cohort into an [`OptResult`].
pub(crate) fn bracket_result(
    best: Option<&Member>,
    space: &ParamSpace,
    mut ledger: RaceLedger,
) -> OptResult {
    ledger.finish_failures();
    match best {
        Some(best) if !best.failed && !best.fold_scores.is_empty() => OptResult {
            best_config: best.config.clone(),
            best_score: best.mean().max(0.0),
            history: ledger.history,
            failures: ledger.failures,
            tripped: ledger.tripped,
        },
        _ => OptResult {
            best_config: space.default_config(),
            best_score: 0.0,
            history: ledger.history,
            failures: ledger.failures,
            tripped: ledger.tripped,
        },
    }
}

impl Optimizer for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "SuccessiveHalving"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let eta = self.eta.max(2);
        let mut ledger = RaceLedger::new(objective, options);

        // Initial cohort: warm starts first, then random samples. A cohort
        // of size n costs roughly n + n/η·1 + n/η²·2 … fold-evals with the
        // doubling fidelity schedule below; sizing n = budget·(η-1)/η keeps
        // the total within budget for η = 2 while using most of it.
        let cohort_size = ((ledger.budget_folds * (eta - 1)) / eta).clamp(eta, 4096);
        let mut warm: Vec<ParamConfig> =
            options.initial_configs.iter().map(|c| space.repair(c)).collect();
        let cohort = distinct_cohort(space, &mut warm, &mut rng, cohort_size, 0);
        ledger.launched = cohort.len();

        let survivors = run_bracket(cohort, 1, eta, objective, options, &mut ledger);
        bracket_result(survivors.first(), space, ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use smartml_classifiers::{ParamSpec, ParamValue};
    use smartml_runtime::Pool;

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    fn peak() -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
        StaticObjective {
            folds: 4,
            f: |c: &ParamConfig, fold| {
                1.0 - (c.f64_or("x", 0.0) - 0.6).powi(2) + fold as f64 * 1e-3
            },
        }
    }

    #[test]
    fn finds_the_peak_region() {
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 60, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.6).abs() < 0.15, "best x = {x}");
    }

    #[test]
    fn survivors_reach_full_fidelity_losers_do_not() {
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, ..Default::default() },
        );
        let max_folds = result.history.iter().map(|t| t.folds_evaluated).max().unwrap();
        let min_folds = result.history.iter().map(|t| t.folds_evaluated).min().unwrap();
        assert_eq!(max_folds, 4, "a survivor must be fully evaluated");
        assert!(min_folds < 4, "early-rung members must have been cut early");
    }

    #[test]
    fn fold_budget_respected() {
        // Count actual objective calls via a side channel.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let obj = StaticObjective {
            folds: 4,
            f: |c: &ParamConfig, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                c.f64_or("x", 0.0)
            },
        };
        CALLS.store(0, Ordering::Relaxed);
        let budget_trials = 20; // = 80 fold-evals
        SuccessiveHalving::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: budget_trials, ..Default::default() },
        );
        let calls = CALLS.load(Ordering::Relaxed);
        assert!(calls <= budget_trials * 4, "spent {calls} fold-evals");
    }

    #[test]
    fn warm_starts_join_the_cohort() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.6));
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions {
                max_trials: 30,
                initial_configs: vec![warm.clone()],
                seed: 3,
                ..Default::default()
            },
        );
        // The warm start sits at the optimum; it must win.
        assert!((result.best_config.f64_or("x", 0.0) - 0.6).abs() < 0.05);
    }

    #[test]
    fn all_failures_degrade_gracefully() {
        struct Fails;
        impl crate::Objective for Fails {
            fn n_folds(&self) -> usize {
                2
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                Err("nope".into())
            }
        }
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &Fails,
            &OptOptions { max_trials: 8, ..Default::default() },
        );
        assert_eq!(result.best_score, 0.0);
    }

    #[test]
    fn deterministic() {
        let opts = OptOptions { max_trials: 25, seed: 11, ..Default::default() };
        let a = SuccessiveHalving::default().optimize(&space_1d(), &peak(), &opts);
        let b = SuccessiveHalving::default().optimize(&space_1d(), &peak(), &opts);
        assert_eq!(a.best_config, b.best_config);
    }

    #[test]
    fn identical_results_at_pool_widths_1_2_8() {
        let run = |width: usize| {
            let opts = OptOptions {
                max_trials: 30,
                seed: 17,
                pool: Pool::new(width),
                ..Default::default()
            };
            let r = SuccessiveHalving::default().optimize(&space_1d(), &peak(), &opts);
            let curve: Vec<(String, usize)> = r
                .history
                .iter()
                .map(|t| (format!("{}:{:.12}", t.config.summary(), t.score), t.folds_evaluated))
                .collect();
            (r.best_config, r.best_score.to_bits(), curve)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn cohort_smaller_than_eta_still_races() {
        // η = 4 with a budget that only affords a cohort of clamp floor η;
        // and a degenerate 1-trial budget whose cohort clamps to η but has
        // almost no folds to spend. Both must terminate and return a
        // config without panicking.
        let result = SuccessiveHalving::new(4).optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 1, ..Default::default() },
        );
        // 4 fold-evals of budget, cohort of 4: everyone gets fold 0, the
        // race ends on budget, the best rung-0 member wins.
        assert!(result.history.iter().all(|t| t.folds_evaluated <= 1));
        assert!(result.best_score > 0.0);
    }

    #[test]
    fn single_config_cohort_runs_to_full_fidelity() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.5));
        let mut ledger = RaceLedger::new(&peak(), &OptOptions::default());
        let cohort = vec![Member::new(warm, 0)];
        let survivors =
            run_bracket(cohort, 1, 2, &peak(), &OptOptions::default(), &mut ledger);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].fold_scores.len(), 4, "lone member reaches full fidelity");
    }

    #[test]
    fn zero_remaining_budget_mid_rung_truncates_grants() {
        // Budget covers the first rung plus two folds of the second: the
        // member-order cutoff must give rung 2's first survivor those two
        // folds and nothing to anyone after.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let obj = StaticObjective {
            folds: 8,
            f: |c: &ParamConfig, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                c.f64_or("x", 0.0)
            },
        };
        CALLS.store(0, Ordering::Relaxed);
        let mut ledger = RaceLedger::new(&obj, &OptOptions::default());
        ledger.budget_folds = 6; // 4 members × fold 0, then 2 more folds
        let cohort: Vec<Member> = (0..4)
            .map(|i| {
                Member::new(
                    ParamConfig::default().with("x", ParamValue::Real(0.1 * i as f64)),
                    i,
                )
            })
            .collect();
        run_bracket(cohort, 1, 2, &obj, &OptOptions::default(), &mut ledger);
        assert_eq!(ledger.folds_spent, 6);
        assert_eq!(CALLS.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn breaker_trips_on_consecutively_faulting_rung() {
        // Every member panics at fold 0: with a threshold of 3 the rung
        // trips the breaker and the result reports it.
        struct Panics;
        impl crate::Objective for Panics {
            fn n_folds(&self) -> usize {
                4
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                panic!("injected")
            }
        }
        let result = SuccessiveHalving::default().optimize(
            &space_1d(),
            &Panics,
            &OptOptions { max_trials: 10, breaker_threshold: 3, ..Default::default() },
        );
        assert!(result.tripped, "all-faulted rung must trip the breaker");
        assert_eq!(result.best_score, 0.0);
        assert!(result.failures.panicked >= 3);
    }
}
