//! ASHA — asynchronous successive halving (Li et al., MLSys 2020). The
//! synchronous racer in [`crate::SuccessiveHalving`] drains the pool at
//! every rung boundary: the last straggler of a rung finishes while every
//! other worker idles. ASHA removes the barrier — the moment a
//! configuration's rung result lands, it is either *promoted* to the next
//! rung (if it sits in the top 1/η of its rung) or parked, and the freed
//! worker immediately picks up the next promotion or a fresh rung-0
//! configuration. No worker ever waits for a rung to complete.
//!
//! # Determinism
//!
//! Naïve ASHA is scheduling-dependent: promotion decisions read "results
//! so far", which depends on completion order, which depends on pool
//! width. This implementation makes every decision a pure function of the
//! *processed prefix* instead:
//!
//! * jobs are numbered by launch order;
//! * completions are buffered and processed strictly in job order;
//! * after each processed job, new jobs launch while fewer than
//!   [`Asha::async_window`] launched jobs are unprocessed.
//!
//! The window is an algorithm parameter, independent of pool width: a pool
//! of 8 runs any window ≥ 8 at full occupancy, while a serial pool replays
//! the identical launch sequence inline. Ties inside a rung break by
//! `(score desc, config_seq asc)`, so the full trial history is
//! byte-identical at widths 1, 2 and 8 — including under fault injection
//! (a fault is just a job result, processed in the same order).
//!
//! # Speculative rung-0 prefetch
//!
//! Strict in-order processing has one throughput hazard: a slow job at
//! the head of the window blocks every decision behind it, idling the
//! pool (head-of-line blocking). The escape hatch is that rung-0
//! injections are *result-independent*: injection #i always receives the
//! i-th configuration of the deterministic fresh-config stream and
//! becomes member #i. So while decisions are stalled, idle workers
//! *prefetch* rung-0 evaluations for upcoming stream indices; when the
//! coordinator later decides injection #i, the speculative result (or
//! in-flight job) is consumed instead of launching anew. Speculation is
//! bounded by the window, never charged to the budget until consumed,
//! and — because it only reorders *execution*, never *decisions* — it is
//! invisible in the output at any pool width. Prefetched results the run
//! never consumes (budget exhausted first) are discarded.

use crate::halving::{bracket_result, Member, RaceLedger};
use crate::objective::Objective;
use crate::outcome::TrialOutcome;
use crate::smac::{OptOptions, OptResult, Optimizer, Trial};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartml_classifiers::{ParamConfig, ParamSpace};
use smartml_obs::{span, Counter};
use smartml_runtime::faults::TrialToken;
use smartml_runtime::{task_seed, StreamCtrl};
use std::collections::BTreeMap;

static ASHA_PROMOTIONS: Counter = Counter::new("smac.asha.promotions");
static ASHA_EVICTIONS: Counter = Counter::new("smac.asha.evictions");
static ASHA_IDLE_STEALS: Counter = Counter::new("smac.asha.idle_steals");

/// The asynchronous successive-halving optimiser.
pub struct Asha {
    /// Rung reduction factor η (≥ 2): a configuration is promoted when it
    /// ranks in the top `1/η` of its rung's completed results.
    pub eta: usize,
    /// Maximum launched-but-unprocessed jobs (≥ 1). Larger windows keep
    /// wide pools busier at the cost of acting on slightly staler
    /// information; the value changes the schedule but never makes it
    /// scheduling-dependent.
    pub async_window: usize,
}

impl Default for Asha {
    fn default() -> Self {
        Asha { eta: 2, async_window: 16 }
    }
}

impl Asha {
    pub fn new(eta: usize) -> Self {
        Asha { eta: eta.max(2), ..Default::default() }
    }
}

/// Fidelity (cumulative folds) of rung `r`.
fn rung_fidelity(r: usize, eta: usize, n_folds: usize) -> usize {
    let mut f = 1usize;
    for _ in 0..r {
        f = (f * eta).min(n_folds);
    }
    f.min(n_folds)
}

/// A unit of pool work: evaluate one fold of one configuration. A
/// multi-fold promotion fans out into one job per fold so its folds run
/// in parallel and no single task is longer than the slowest fold —
/// minimising both head-of-line stalls and the final promotion chain.
struct Job {
    member: usize,
    rung: usize,
    fold: usize,
    config: ParamConfig,
}

/// A decision's gathered result: fold scores in fold order up to the
/// first failure, and that failure if any.
struct JobOut {
    scores: Vec<f64>,
    failure: Option<TrialOutcome>,
}

/// One decision of the deterministic schedule. Injections name only the
/// member (= fresh-config stream index); the rung-0 work may already be
/// running speculatively.
enum Decision {
    Promote { member: usize, rung: usize, from: usize, to: usize },
    Inject { member: usize },
}

/// What the coordinator remembers about a decision: whose result it is
/// and which pool jobs (decided or speculative) deliver it, in fold
/// order.
struct DecisionMeta {
    member: usize,
    rung: usize,
    source_jobs: Vec<usize>,
}

/// One completed rung evaluation, eligible for promotion.
struct RungRecord {
    member: usize,
    /// Mean score over all folds evaluated so far — never NaN (faults
    /// never produce records).
    score: f64,
    promoted: bool,
}

struct Coordinator<'a> {
    eta: usize,
    window: usize,
    n_folds: usize,
    /// Smallest rung index whose fidelity is `n_folds`; its records are
    /// final and never promoted.
    top_rung: usize,
    space: &'a ParamSpace,
    options: &'a OptOptions,
    rng: StdRng,
    warm: std::vec::IntoIter<ParamConfig>,
    members: Vec<Member>,
    rungs: Vec<Vec<RungRecord>>,
    ledger: RaceLedger,
    decisions: Vec<DecisionMeta>,
    processed: usize,
    /// Summaries of every raced configuration. Injection never repeats
    /// one: a duplicate member would re-hit the fold cache (wasted
    /// budget), and two in-flight twins racing the same `(config, fold)`
    /// slot would make outcome kinds depend on which worker computes and
    /// which waits — breaking width-independence under faults.
    seen: std::collections::HashSet<String>,
    /// Set once fresh sampling stops producing unseen configurations
    /// (tiny discrete space); skips further injection attempts.
    injection_dry: bool,
    /// Memoised fresh-config stream: index i is the configuration that
    /// injection #i (= member i) receives, and that speculation prefetches.
    configs: Vec<ParamConfig>,
    /// Speculative rung-0 jobs in flight: config stream index → pool job.
    spec_jobs: std::collections::HashMap<usize, usize>,
    /// Next stream index speculation would prefetch.
    spec_next: usize,
    /// Set once no further job may launch (budget spent, breaker tripped,
    /// or out of time); in-flight jobs still drain and are recorded.
    halted: bool,
}

impl Coordinator<'_> {
    fn fidelity(&self, r: usize) -> usize {
        rung_fidelity(r, self.eta, self.n_folds)
    }

    /// The next unit of work, by the deterministic decision rule: the
    /// highest-rung promotable record wins; otherwise a fresh rung-0
    /// configuration is injected (the "idle steal"). Returns `None` and
    /// halts when nothing affordable remains.
    fn decide_next(&mut self) -> Option<Decision> {
        if self.halted || self.ledger.tripped {
            self.halted = true;
            return None;
        }
        if self.ledger.out_of_time(self.options) {
            self.halted = true;
            return None;
        }
        // Scan rungs top-down for a promotable record: completed, in the
        // top floor(len/η) of its rung by (score desc, seq asc), not yet
        // promoted. Promoting high rungs first pushes strong configs to
        // full fidelity instead of widening the base.
        for r in (0..self.top_rung).rev() {
            let rung = &self.rungs[r];
            let k = rung.len() / self.eta;
            if k == 0 {
                continue;
            }
            let mut order: Vec<usize> = (0..rung.len()).collect();
            order.sort_by(|&a, &b| {
                rung[b]
                    .score
                    .partial_cmp(&rung[a].score)
                    .unwrap()
                    .then_with(|| rung[a].member.cmp(&rung[b].member))
            });
            for &idx in order.iter().take(k) {
                let member = self.rungs[r][idx].member;
                if self.rungs[r][idx].promoted || self.members[member].failed {
                    continue;
                }
                let (from, to) = (self.fidelity(r), self.fidelity(r + 1));
                if to - from > self.ledger.remaining() {
                    // Promotion doesn't fit; fall through to a cheaper
                    // rung-0 injection below rather than stranding budget.
                    break;
                }
                self.rungs[r][idx].promoted = true;
                self.ledger.folds_spent += to - from;
                ASHA_PROMOTIONS.inc();
                return Some(Decision::Promote { member, rung: r + 1, from, to });
            }
        }
        // Nothing promotable: inject a fresh rung-0 configuration.
        let cost = self.fidelity(0);
        if cost > self.ledger.remaining() {
            self.halted = true;
            return None;
        }
        let seq = self.members.len();
        let Some(config) = self.config_at(seq) else {
            // Space exhausted: stop injecting, but keep draining — later
            // completions may still unlock promotions.
            return None;
        };
        self.members.push(Member::new(config, seq));
        self.ledger.launched += 1;
        self.ledger.folds_spent += cost;
        ASHA_IDLE_STEALS.inc();
        Some(Decision::Inject { member: seq })
    }

    /// The i-th configuration of the fresh-config stream, memoised so
    /// injection decisions and speculative prefetch agree on it.
    fn config_at(&mut self, i: usize) -> Option<ParamConfig> {
        while self.configs.len() <= i {
            let next = self.fresh_config()?;
            self.configs.push(next);
        }
        Some(self.configs[i].clone())
    }

    /// The next not-yet-raced configuration: warm starts first, then
    /// random samples with a bounded retry budget against `seen`.
    fn fresh_config(&mut self) -> Option<ParamConfig> {
        if self.injection_dry {
            return None;
        }
        while let Some(c) = self.warm.next() {
            let c = self.space.repair(&c);
            if self.seen.insert(c.summary()) {
                return Some(c);
            }
        }
        for _ in 0..64 {
            let c = self.space.sample(&mut self.rng);
            if self.seen.insert(c.summary()) {
                return Some(c);
            }
        }
        self.injection_dry = true;
        None
    }

    /// Makes decisions until the async window is full or nothing can run,
    /// submitting promotion jobs and wiring injections to their
    /// speculative job when one is already in flight.
    fn refill(&mut self, ctrl: &mut StreamCtrl<'_, Job, TrialOutcome>) {
        while self.decisions.len() - self.processed < self.window {
            let Some(decision) = self.decide_next() else { break };
            let (member, rung, source_jobs) = match decision {
                Decision::Promote { member, rung, from, to } => {
                    // Decision jobs gate in-order processing, so they run
                    // on the urgent tier ahead of any speculative backlog
                    // — one job per fold, so the folds run in parallel.
                    let config = &self.members[member].config;
                    let jobs = (from..to)
                        .map(|fold| {
                            ctrl.submit_urgent(Job { member, rung, fold, config: config.clone() })
                        })
                        .collect();
                    (member, rung, jobs)
                }
                Decision::Inject { member } => {
                    let source = match self.spec_jobs.remove(&member) {
                        Some(job) => job,
                        None => ctrl.submit_urgent(Job {
                            member,
                            rung: 0,
                            fold: 0,
                            config: self.members[member].config.clone(),
                        }),
                    };
                    (member, 0, vec![source])
                }
            };
            self.decisions.push(DecisionMeta { member, rung, source_jobs });
        }
    }

    /// Speculative rung-0 prefetch: keeps the pool fed while in-order
    /// processing is stalled behind a slow job. Only the *execution* is
    /// speculative — which configuration becomes member #i is already
    /// fixed — so this never changes a decision, a ledger entry, or the
    /// budget; results the schedule never consumes are dropped. How far
    /// speculation runs ahead is timing-dependent and harmlessly so.
    fn speculate(&mut self, ctrl: &mut StreamCtrl<'_, Job, TrialOutcome>) {
        if self.halted || self.ledger.tripped || self.injection_dry {
            return;
        }
        let cost = self.fidelity(0);
        self.spec_next = self.spec_next.max(self.members.len());
        // Never run further ahead than the remaining budget could still
        // inject: a speculative result past that horizon is guaranteed
        // dead work that only steals workers from live jobs. (The budget
        // also funds future promotions, so this over-estimates; the
        // urgent tier keeps the surplus from delaying decision jobs.)
        let affordable = self.ledger.remaining() / cost.max(1);
        let horizon = self.window.min(affordable);
        while ctrl.outstanding() < self.window && self.spec_next - self.members.len() < horizon {
            let i = self.spec_next;
            let Some(config) = self.config_at(i) else { break };
            let job = ctrl.submit(Job { member: i, rung: 0, fold: 0, config });
            self.spec_jobs.insert(i, job);
            self.spec_next = i + 1;
        }
    }

    /// Folds the next decision's result into the ledger — always called
    /// in decision order.
    fn process(&mut self, out: JobOut) {
        let DecisionMeta { member: mi, rung, .. } = self.decisions[self.processed];
        let member = &mut self.members[mi];
        member.fold_scores.extend(out.scores);
        if let Some(failure) = out.failure {
            member.failed = true;
            self.ledger.failures.record(&failure);
            member.failure = Some(failure);
        } else {
            let record =
                RungRecord { member: mi, score: member.mean(), promoted: rung >= self.top_rung };
            let rung_list = &mut self.rungs[rung];
            rung_list.push(record);
            // Eviction accounting: did this result land outside the
            // promotable top floor(len/η) of its rung?
            let k = rung_list.len() / self.eta;
            let better = rung_list
                .iter()
                .filter(|rec| {
                    rec.member != mi
                        && (rec.score > rung_list[rung_list.len() - 1].score
                            || (rec.score == rung_list[rung_list.len() - 1].score
                                && rec.member < mi))
                })
                .count();
            if better >= k {
                ASHA_EVICTIONS.inc();
            }
        }
        let failure = self.members[mi].failure.clone();
        self.ledger.account_member(failure.as_ref(), self.options);
        if self.ledger.tripped {
            self.halted = true;
        }
        let member = &self.members[mi];
        self.ledger.history.push(Trial {
            config: member.config.clone(),
            score: if member.failed { 0.0 } else { member.mean().max(0.0) },
            folds_evaluated: member.fold_scores.len(),
            elapsed_secs: self.ledger.start.elapsed().as_secs_f64(),
            outcome: Some(match &member.failure {
                Some(failure) => failure.clone(),
                None => TrialOutcome::Ok(member.mean().max(0.0)),
            }),
        });
        self.processed += 1;
    }
}

impl Optimizer for Asha {
    fn name(&self) -> &'static str {
        "ASHA"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let eta = self.eta.max(2);
        let n_folds = objective.n_folds();
        let mut top_rung = 0;
        while rung_fidelity(top_rung, eta, n_folds) < n_folds {
            top_rung += 1;
        }
        let mut coord = Coordinator {
            eta,
            window: self.async_window.max(1),
            n_folds,
            top_rung,
            space,
            options,
            rng: StdRng::seed_from_u64(task_seed(options.seed, 0x4153_4841)), // "ASHA"
            warm: options.initial_configs.clone().into_iter(),
            members: Vec::new(),
            rungs: (0..=top_rung).map(|_| Vec::new()).collect(),
            ledger: RaceLedger::new(objective, options),
            decisions: Vec::new(),
            processed: 0,
            seen: std::collections::HashSet::new(),
            injection_dry: false,
            configs: Vec::new(),
            spec_jobs: std::collections::HashMap::new(),
            spec_next: 0,
            halted: false,
        };
        let tag = &options.trace_tag;

        coord = options.pool.stream(
            |_, job: Job| {
                let _s = span!("smac.rung", algo = tag, rung = job.rung, member = job.member);
                // One fold per job: the trial timeout bounds each fold.
                let token = TrialToken::bounded(options.trial_timeout, options.deadline);
                let _f = span!("smac.fold", algo = tag, fold = job.fold);
                objective.evaluate_fold_guarded(&job.config, job.fold, &token)
            },
            move |ctrl| {
                coord.refill(ctrl);
                coord.speculate(ctrl);
                // Completions may land in any order; the buffer re-imposes
                // decision order before any result is read. Speculative
                // results wait here until (unless) a decision claims them.
                let mut buffer: BTreeMap<usize, TrialOutcome> = BTreeMap::new();
                while ctrl.outstanding() > 0 {
                    let (idx, out) = ctrl.next().expect("outstanding > 0 yields a completion");
                    buffer.insert(idx, out);
                    loop {
                        let Some(meta) = coord.decisions.get(coord.processed) else { break };
                        if !meta.source_jobs.iter().all(|j| buffer.contains_key(j)) {
                            break;
                        }
                        // Gather the decision's folds in fold order; the
                        // first failure wins and later folds are dropped,
                        // exactly as if they had never run.
                        let mut scores = Vec::with_capacity(meta.source_jobs.len());
                        let mut failure = None;
                        for j in meta.source_jobs.clone() {
                            let out = buffer.remove(&j).expect("checked above");
                            if failure.is_none() {
                                match out {
                                    TrialOutcome::Ok(score) => scores.push(score),
                                    other => failure = Some(other),
                                }
                            }
                        }
                        coord.process(JobOut { scores, failure });
                        coord.refill(ctrl);
                    }
                    if coord.processed == coord.decisions.len() {
                        // A fully processed ledger and nothing decidable:
                        // whatever is still outstanding is speculation the
                        // schedule will never consume — abandon it.
                        break;
                    }
                    coord.speculate(ctrl);
                }
                coord
            },
        );

        // Full-fidelity members outrank partial ones; among equals the
        // higher mean wins and ties break to the earlier launch.
        let best = coord
            .members
            .iter()
            .filter(|m| !m.failed && !m.fold_scores.is_empty())
            .max_by(|a, b| {
                a.fold_scores
                    .len()
                    .cmp(&b.fold_scores.len())
                    .then_with(|| a.mean().partial_cmp(&b.mean()).unwrap())
                    .then_with(|| b.seq.cmp(&a.seq))
            });
        bracket_result(best, space, coord.ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use smartml_classifiers::{ParamSpec, ParamValue};
    use smartml_runtime::Pool;
    use std::time::Duration;

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    fn peak() -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send + Sync> {
        StaticObjective {
            folds: 8,
            f: |c: &ParamConfig, fold| {
                1.0 - (c.f64_or("x", 0.0) - 0.6).powi(2) + fold as f64 * 1e-3
            },
        }
    }

    fn curve(r: &OptResult) -> Vec<(String, usize)> {
        r.history
            .iter()
            .map(|t| (format!("{}:{:.12}", t.config.summary(), t.score), t.folds_evaluated))
            .collect()
    }

    #[test]
    fn rung_fidelities_follow_eta() {
        assert_eq!((0..4).map(|r| rung_fidelity(r, 2, 8)).collect::<Vec<_>>(), vec![1, 2, 4, 8]);
        assert_eq!((0..3).map(|r| rung_fidelity(r, 3, 5)).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(rung_fidelity(0, 2, 1), 1);
    }

    #[test]
    fn finds_the_peak_region() {
        let result = Asha::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, seed: 5, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.6).abs() < 0.15, "best x = {x}");
    }

    #[test]
    fn respects_the_fold_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let obj = StaticObjective {
            folds: 8,
            f: |c: &ParamConfig, _| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                c.f64_or("x", 0.0)
            },
        };
        CALLS.store(0, Ordering::Relaxed);
        let budget_trials = 10; // = 80 fold-evals
        Asha::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: budget_trials, ..Default::default() },
        );
        assert!(CALLS.load(Ordering::Relaxed) <= budget_trials * 8);
    }

    #[test]
    fn promotions_reach_full_fidelity() {
        let result = Asha::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions { max_trials: 40, seed: 7, ..Default::default() },
        );
        let max_folds = result.history.iter().map(|t| t.folds_evaluated).max().unwrap();
        assert_eq!(max_folds, 8, "a config must be promoted to the top rung");
        assert!(
            result.history.iter().any(|t| t.folds_evaluated == 1),
            "rung-0 evaluations must appear"
        );
    }

    #[test]
    fn byte_identical_at_pool_widths_1_2_8() {
        let run = |width: usize| {
            let opts = OptOptions {
                max_trials: 30,
                seed: 17,
                pool: Pool::new(width),
                ..Default::default()
            };
            let r = Asha::default().optimize(&space_1d(), &peak(), &opts);
            (curve(&r), r.best_score.to_bits(), r.best_config)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn window_size_changes_schedule_but_width_never_does() {
        // Both window settings must themselves be width-independent.
        for window in [1, 4, 32] {
            let run = |width: usize| {
                let asha = Asha { eta: 2, async_window: window };
                let opts = OptOptions {
                    max_trials: 20,
                    seed: 3,
                    pool: Pool::new(width),
                    ..Default::default()
                };
                curve(&asha.optimize(&space_1d(), &peak(), &opts))
            };
            assert_eq!(run(1), run(8), "window {window} is width-dependent");
        }
    }

    #[test]
    fn warm_starts_seed_rung_zero() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.6));
        let result = Asha::default().optimize(
            &space_1d(),
            &peak(),
            &OptOptions {
                max_trials: 20,
                initial_configs: vec![warm],
                seed: 3,
                ..Default::default()
            },
        );
        assert!((result.best_config.f64_or("x", 0.0) - 0.6).abs() < 0.05);
    }

    #[test]
    fn all_failures_degrade_gracefully() {
        struct Fails;
        impl crate::Objective for Fails {
            fn n_folds(&self) -> usize {
                2
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                Err("nope".into())
            }
        }
        let result = Asha::default().optimize(
            &space_1d(),
            &Fails,
            &OptOptions { max_trials: 8, ..Default::default() },
        );
        assert_eq!(result.best_score, 0.0);
        assert!(result.failures.failed > 0);
    }

    #[test]
    fn breaker_trips_and_halts_launches() {
        struct Panics;
        impl crate::Objective for Panics {
            fn n_folds(&self) -> usize {
                4
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                panic!("injected")
            }
        }
        let result = Asha::default().optimize(
            &space_1d(),
            &Panics,
            &OptOptions { max_trials: 50, breaker_threshold: 3, ..Default::default() },
        );
        assert!(result.tripped);
        // Threshold 3 plus at most one async window of in-flight jobs.
        assert!(
            result.history.len() <= 3 + 16,
            "launches must stop at the trip: {} jobs ran",
            result.history.len()
        );
    }

    #[test]
    fn honours_wall_clock_budget() {
        let slow = StaticObjective {
            folds: 4,
            f: |c: &ParamConfig, _| {
                std::thread::sleep(Duration::from_millis(5));
                c.f64_or("x", 0.0)
            },
        };
        let result = Asha::default().optimize(
            &space_1d(),
            &slow,
            &OptOptions {
                max_trials: 10_000,
                wall_clock: Some(Duration::from_millis(60)),
                ..Default::default()
            },
        );
        // 10k trials would take minutes; the clock must cut it off early.
        assert!(result.history.len() < 1000);
    }
}
