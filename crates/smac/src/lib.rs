//! Hyperparameter optimisation for SmartML.
//!
//! The paper tunes with **SMAC** (Hutter et al., LION 2011): a random-forest
//! surrogate predicts the performance mean and variance of unseen
//! configurations, expected improvement proposes challengers, and an
//! intensification race evaluates challengers on incrementally many CV folds
//! so poor configurations are discarded "quickly after the evaluation on a
//! low number of folds" (paper §2).
//!
//! [`RandomSearch`] and [`GridSearch`] (Google Vizier's "grid or random
//! search", paper Table 1) and [`Tpe`] (tree-structured Parzen estimator,
//! half of Auto-Weka's optimiser pair) share the same
//! [`Objective`]/[`Optimizer`] interface so baselines and ablations are
//! drop-in swaps.
//!
//! ```
//! use smartml_smac::{Optimizer, OptOptions, Smac, StaticObjective};
//! use smartml_classifiers::{ParamConfig, ParamSpace, ParamSpec};
//!
//! // Maximise 1 - (x - 0.7)^2 over x in [0, 1].
//! let space = ParamSpace::new(vec![ParamSpec::Real {
//!     name: "x".into(), lo: 0.0, hi: 1.0, log: false,
//! }]);
//! let objective = StaticObjective {
//!     folds: 1,
//!     f: |c: &ParamConfig, _| 1.0 - (c.f64_or("x", 0.0) - 0.7).powi(2),
//! };
//! let result = Smac::default().optimize(
//!     &space,
//!     &objective,
//!     &OptOptions { max_trials: 40, ..Default::default() },
//! );
//! assert!((result.best_config.f64_or("x", 0.0) - 0.7).abs() < 0.15);
//! ```

mod asha;
mod grid;
mod halving;
mod hyperband;
mod objective;
mod outcome;
mod random_search;
mod smac;
mod surrogate;
mod tpe;

pub use asha::Asha;
pub use grid::GridSearch;
pub use halving::SuccessiveHalving;
pub use hyperband::Hyperband;
pub use objective::{ClassifierObjective, Objective, StaticObjective};
pub use outcome::{FailureCounts, OutcomeKind, TrialOutcome};
pub use random_search::RandomSearch;
pub use smac::{OptOptions, OptResult, Optimizer, Smac, Trial};
pub use surrogate::RandomForestSurrogate;
pub use tpe::Tpe;
