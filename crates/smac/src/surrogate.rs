//! The SMAC surrogate: a random-forest regressor over `[0,1]^d`-encoded
//! configurations. "SMAC attempts to draw the relation between the algorithm
//! performance and a given set of hyper-parameters by estimating the
//! predictive mean and variance of their performance along the trees of the
//! random forest model" (paper §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_classifiers::common::split::{
    partition2, radix_sort_ranked, RankedBase, NAN_RANK, SIDE_LEFT, SIDE_RIGHT,
};
use smartml_runtime::{task_seed, Pool};

/// A regression tree node over dense feature vectors.
enum RegNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<RegNode>, right: Box<RegNode> },
}

impl RegNode {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            RegNode::Leaf { value } => *value,
            RegNode::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// Random forest regressor giving per-point predictive mean and variance
/// (variance across trees, SMAC-style).
pub struct RandomForestSurrogate {
    trees: Vec<RegNode>,
}

impl RandomForestSurrogate {
    /// Fits `n_trees` bootstrap regression trees on `(xs, ys)`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64) -> Self {
        Self::fit_with(xs, ys, n_trees, seed, Pool::serial())
    }

    /// [`fit`](RandomForestSurrogate::fit) with trees grown on `pool`.
    ///
    /// Each tree's bootstrap sample and split randomness come from its own
    /// RNG seeded by `task_seed(seed, tree)`, so the forest is identical
    /// for any pool width (including [`fit`]'s serial path).
    pub fn fit_with(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64, pool: Pool) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "surrogate needs at least one observation");
        let n = xs.len();
        let d = xs[0].len();
        // Rank every feature once; each tree then gathers its bootstrap
        // sample's ranks and radix-sorts candidate features per node
        // (shared machinery with the classifier tree kernel).
        let base = RankedBase::build_columns(
            (0..d).map(|f| xs.iter().map(|x| x[f]).collect()).collect(),
        );
        let trees = pool.map_range(n_trees.max(1), |t| {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, t as u64));
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let picks: Vec<u32> = sample.iter().map(|&s| s as u32).collect();
            grow_ranked(ys, &sample, &base, &picks, &mut rng)
        });
        RandomForestSurrogate { trees }
    }

    /// Reference fit using the original per-node `sort_by` tree grower.
    ///
    /// Retained as the equivalence oracle for [`fit`]: both produce bitwise
    /// identical forests (same RNG stream, same FP accumulation order). Used
    /// by tests and the `tree_kernels` benchmark; not part of the public API.
    #[doc(hidden)]
    pub fn fit_oracle(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "surrogate needs at least one observation");
        let n = xs.len();
        let trees = (0..n_trees.max(1))
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(task_seed(seed, t as u64));
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                grow_oracle(xs, ys, &sample, 0, &mut rng)
            })
            .collect();
        RandomForestSurrogate { trees }
    }

    /// Predictive `(mean, variance)` at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        (mean, var)
    }

    /// Expected improvement of `x` over the incumbent score `best`
    /// (maximisation, with exploration jitter `xi`).
    pub fn expected_improvement(&self, x: &[f64], best: f64, xi: f64) -> f64 {
        let (mean, var) = self.predict(x);
        let sigma = var.sqrt();
        let delta = mean - best - xi;
        if sigma < 1e-12 {
            return delta.max(0.0);
        }
        let z = delta / sigma;
        delta * standard_normal_cdf(z) + sigma * standard_normal_pdf(z)
    }
}

/// Per-tree scratch for the rank-radix grower: side mask + partition
/// buffer + dedup'd value buffer + radix pair buffers, reused down the
/// whole recursion.
struct GrowScratch {
    side: Vec<u32>,
    scratch: Vec<u32>,
    vals: Vec<f64>,
    pairs: Vec<u64>,
    pairs_tmp: Vec<u64>,
    radix_cnt: Vec<u32>,
}

/// Grows one regression tree with the shared rank-radix split kernel.
///
/// Semantics are bit-identical to [`grow_oracle`]: the RNG draw sequence,
/// the dedup'd candidate value lists, and every floating-point accumulation
/// run in the same order. The only change is *how* each feature try obtains
/// its sorted distinct values: the oracle sorts node values on every try
/// (`O(m log m)` with comparisons), while this path reads each value's
/// precomputed rank from the forest-shared [`RankedBase`] and radix-sorts
/// `(rank, slot)` pairs — and evaluates `value <= threshold` as an integer
/// rank comparison, since a threshold maps to a fixed cut in rank space.
fn grow_ranked(
    ys: &[f64],
    sample: &[usize],
    base: &RankedBase,
    picks: &[u32],
    rng: &mut StdRng,
) -> RegNode {
    let n = sample.len();
    // Slot space: slot i = bootstrap position i (duplicates get own slots).
    let slot_y: Vec<f64> = sample.iter().map(|&r| ys[r]).collect();
    let slot_rank = base.gather_ranks(picks);
    let mut rows: Vec<u32> = (0..n as u32).collect();
    let mut st = GrowScratch {
        side: vec![0; n],
        scratch: Vec::new(),
        vals: Vec::new(),
        pairs: Vec::new(),
        pairs_tmp: Vec::new(),
        radix_cnt: Vec::new(),
    };
    grow_node(base, &slot_rank, &slot_y, &mut rows, 0, rng, &mut st)
}

/// One node of the rank-radix grower. `rows` is this node's slot slice,
/// always in ascending slot order (stable partitions preserve it), which
/// matches the oracle's row-list order node for node.
fn grow_node(
    base: &RankedBase,
    slot_rank: &[Vec<u32>],
    slot_y: &[f64],
    rows: &mut [u32],
    depth: usize,
    rng: &mut StdRng,
    st: &mut GrowScratch,
) -> RegNode {
    let m = rows.len();
    let mean = rows.iter().map(|&s| slot_y[s as usize]).sum::<f64>() / m as f64;
    if depth >= 10 || m < 4 {
        return RegNode::Leaf { value: mean };
    }
    let sse: f64 = rows
        .iter()
        .map(|&s| {
            let e = slot_y[s as usize] - mean;
            e * e
        })
        .sum();
    if sse < 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let d = slot_rank.len();
    let n_try = (d / 2).max(1);
    let mut best: Option<(usize, u32, f64, f64)> = None; // (feature, cut rank, threshold, sse)
    for _ in 0..n_try {
        let f = rng.gen_range(0..d);
        let ranks = &slot_rank[f];
        let rank_vals = &base.rank_vals[f];
        st.pairs.clear();
        for &s in rows.iter() {
            let r = ranks[s as usize];
            if r != NAN_RANK {
                st.pairs.push(((r as u64) << 32) | s as u64);
            }
        }
        radix_sort_ranked(&mut st.pairs, &mut st.pairs_tmp, &mut st.radix_cnt, base.n_ranks[f]);
        // Unique node values in ascending order: walk the sorted pairs and
        // emit a value whenever the rank advances — the same list the
        // oracle's collect + sort + dedup produces.
        st.vals.clear();
        let mut prev = NAN_RANK;
        for &p in &st.pairs {
            let r = (p >> 32) as u32;
            if r != prev {
                st.vals.push(rank_vals[r as usize]);
                prev = r;
            }
        }
        if st.vals.len() < 2 {
            continue;
        }
        for _ in 0..4 {
            let i = rng.gen_range(0..st.vals.len() - 1);
            let thr = 0.5 * (st.vals[i] + st.vals[i + 1]);
            // `v <= thr` ⟺ `rank(v) < cut`: one binary search replaces a
            // float gather-and-compare per row.
            let cut = rank_vals.partition_point(|&v| v <= thr) as u32;
            let (mut ls, mut ln, mut rs, mut rn) = (0.0, 0usize, 0.0, 0usize);
            for &s in rows.iter() {
                if ranks[s as usize] < cut {
                    ls += slot_y[s as usize];
                    ln += 1;
                } else {
                    rs += slot_y[s as usize];
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let (lm, rm) = (ls / ln as f64, rs / rn as f64);
            let split_sse: f64 = rows
                .iter()
                .map(|&s| {
                    let c = if ranks[s as usize] < cut { lm } else { rm };
                    let e = slot_y[s as usize] - c;
                    e * e
                })
                .sum();
            if best.is_none_or(|(_, _, _, s)| split_sse < s) {
                best = Some((f, cut, thr, split_sse));
            }
        }
    }
    let Some((feature, cut, threshold, split_sse)) = best else {
        return RegNode::Leaf { value: mean };
    };
    if split_sse >= sse - 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let ranks = &slot_rank[feature];
    for &s in rows.iter() {
        st.side[s as usize] =
            if ranks[s as usize] < cut { SIDE_LEFT } else { SIDE_RIGHT };
    }
    let (nl, _) = partition2(rows, &st.side, &mut st.scratch);
    let (left_rows, right_rows) = rows.split_at_mut(nl);
    RegNode::Split {
        feature,
        threshold,
        left: Box::new(grow_node(base, slot_rank, slot_y, left_rows, depth + 1, rng, st)),
        right: Box::new(grow_node(base, slot_rank, slot_y, right_rows, depth + 1, rng, st)),
    }
}

/// The original per-node-sorting grower, kept verbatim as the oracle for
/// [`grow_presorted`].
fn grow_oracle(xs: &[Vec<f64>], ys: &[f64], rows: &[usize], depth: usize, rng: &mut StdRng) -> RegNode {
    let mean = rows.iter().map(|&r| ys[r]).sum::<f64>() / rows.len() as f64;
    if depth >= 10 || rows.len() < 4 {
        return RegNode::Leaf { value: mean };
    }
    let sse: f64 = rows.iter().map(|&r| (ys[r] - mean) * (ys[r] - mean)).sum();
    if sse < 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let d = xs[0].len();
    // Feature bagging: try ~d/2 random features (at least 1).
    let n_try = (d / 2).max(1);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for _ in 0..n_try {
        let f = rng.gen_range(0..d);
        let mut vals: Vec<f64> = rows.iter().map(|&r| xs[r][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        // A few random cut points per feature (SMAC-style randomised splits).
        for _ in 0..4 {
            let i = rng.gen_range(0..vals.len() - 1);
            let thr = 0.5 * (vals[i] + vals[i + 1]);
            let (mut ls, mut ln, mut rs, mut rn) = (0.0, 0usize, 0.0, 0usize);
            for &r in rows {
                if xs[r][f] <= thr {
                    ls += ys[r];
                    ln += 1;
                } else {
                    rs += ys[r];
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let (lm, rm) = (ls / ln as f64, rs / rn as f64);
            let split_sse: f64 = rows
                .iter()
                .map(|&r| {
                    let m = if xs[r][f] <= thr { lm } else { rm };
                    (ys[r] - m) * (ys[r] - m)
                })
                .sum();
            if best.is_none_or(|(_, _, s)| split_sse < s) {
                best = Some((f, thr, split_sse));
            }
        }
    }
    let Some((feature, threshold, split_sse)) = best else {
        return RegNode::Leaf { value: mean };
    };
    if split_sse >= sse - 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| xs[r][feature] <= threshold);
    RegNode::Split {
        feature,
        threshold,
        left: Box::new(grow_oracle(xs, ys, &left_rows, depth + 1, rng)),
        right: Box::new(grow_oracle(xs, ys, &right_rows, depth + 1, rng)),
    }
}

/// Standard normal density.
fn standard_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz-Stegun erf approximation.
fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - (x[0] - 0.5) * (x[0] - 0.5) * 4.0).collect();
        (xs, ys)
    }

    #[test]
    fn fits_quadratic() {
        let (xs, ys) = quadratic_data(100);
        let rf = RandomForestSurrogate::fit(&xs, &ys, 20, 1);
        let (at_peak, _) = rf.predict(&[0.5]);
        let (at_edge, _) = rf.predict(&[0.02]);
        assert!(at_peak > at_edge + 0.3, "peak {at_peak} edge {at_edge}");
    }

    #[test]
    fn variance_higher_far_from_data() {
        // Train only on the left half; the right half must be less certain
        // or at least no more certain on average.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 20.0).sin()).collect();
        let rf = RandomForestSurrogate::fit(&xs, &ys, 30, 2);
        let (_, v_in) = rf.predict(&[0.25]);
        let (_, v_out) = rf.predict(&[0.9]);
        assert!(v_out >= v_in * 0.5, "in {v_in} out {v_out}");
    }

    #[test]
    fn single_observation_degenerates_safely() {
        let rf = RandomForestSurrogate::fit(&[vec![0.5]], &[0.7], 10, 3);
        let (m, v) = rf.predict(&[0.1]);
        assert!((m - 0.7).abs() < 1e-12);
        assert!(v.abs() < 1e-24);
    }

    #[test]
    fn ei_positive_where_improvement_plausible() {
        let (xs, ys) = quadratic_data(60);
        let rf = RandomForestSurrogate::fit(&xs, &ys, 20, 4);
        // Incumbent far below the peak: EI near the peak should dominate.
        let ei_peak = rf.expected_improvement(&[0.5], 0.5, 0.0);
        let ei_edge = rf.expected_improvement(&[0.01], 0.5, 0.0);
        assert!(ei_peak > ei_edge, "peak {ei_peak} edge {ei_edge}");
        assert!(ei_peak > 0.0);
    }

    #[test]
    fn parallel_fit_is_identical_to_serial() {
        let (xs, ys) = quadratic_data(80);
        let serial = RandomForestSurrogate::fit_with(&xs, &ys, 16, 9, Pool::serial());
        let probes: Vec<Vec<f64>> = (0..21).map(|i| vec![i as f64 / 20.0]).collect();
        for threads in [2, 8] {
            let par = RandomForestSurrogate::fit_with(&xs, &ys, 16, 9, Pool::new(threads));
            for x in &probes {
                assert_eq!(serial.predict(x), par.predict(x), "diverged at {x:?}");
            }
        }
    }

    #[test]
    fn presorted_fit_matches_oracle_exactly() {
        // Multi-feature data with heavy ties so dedup'd value lists (and the
        // RNG draws keyed off their lengths) are actually exercised.
        let xs: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    (i % 7) as f64 / 6.0,
                    (i % 3) as f64 / 2.0,
                    i as f64 / 120.0,
                    ((i * 31) % 11) as f64 / 10.0,
                ]
            })
            .collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| (x[0] - 0.4).abs() + 0.5 * x[2] * x[2] - 0.2 * x[1]).collect();
        for seed in [0u64, 7, 99] {
            let new = RandomForestSurrogate::fit(&xs, &ys, 12, seed);
            let old = RandomForestSurrogate::fit_oracle(&xs, &ys, 12, seed);
            for probe in &xs {
                assert_eq!(new.predict(probe), old.predict(probe), "seed {seed} at {probe:?}");
            }
        }
    }

    #[test]
    fn normal_functions_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_pdf(0.0) - 0.3989).abs() < 1e-4);
        assert!((erf(1.0) - 0.8427).abs() < 1e-4);
    }
}
