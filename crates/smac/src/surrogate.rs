//! The SMAC surrogate: a random-forest regressor over `[0,1]^d`-encoded
//! configurations. "SMAC attempts to draw the relation between the algorithm
//! performance and a given set of hyper-parameters by estimating the
//! predictive mean and variance of their performance along the trees of the
//! random forest model" (paper §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_runtime::{task_seed, Pool};

/// A regression tree node over dense feature vectors.
enum RegNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<RegNode>, right: Box<RegNode> },
}

impl RegNode {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            RegNode::Leaf { value } => *value,
            RegNode::Split { feature, threshold, left, right } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// Random forest regressor giving per-point predictive mean and variance
/// (variance across trees, SMAC-style).
pub struct RandomForestSurrogate {
    trees: Vec<RegNode>,
}

impl RandomForestSurrogate {
    /// Fits `n_trees` bootstrap regression trees on `(xs, ys)`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64) -> Self {
        Self::fit_with(xs, ys, n_trees, seed, Pool::serial())
    }

    /// [`fit`](RandomForestSurrogate::fit) with trees grown on `pool`.
    ///
    /// Each tree's bootstrap sample and split randomness come from its own
    /// RNG seeded by `task_seed(seed, tree)`, so the forest is identical
    /// for any pool width (including [`fit`]'s serial path).
    pub fn fit_with(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64, pool: Pool) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "surrogate needs at least one observation");
        let n = xs.len();
        let trees = pool.map_range(n_trees.max(1), |t| {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, t as u64));
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            grow(xs, ys, &sample, 0, &mut rng)
        });
        RandomForestSurrogate { trees }
    }

    /// Predictive `(mean, variance)` at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        (mean, var)
    }

    /// Expected improvement of `x` over the incumbent score `best`
    /// (maximisation, with exploration jitter `xi`).
    pub fn expected_improvement(&self, x: &[f64], best: f64, xi: f64) -> f64 {
        let (mean, var) = self.predict(x);
        let sigma = var.sqrt();
        let delta = mean - best - xi;
        if sigma < 1e-12 {
            return delta.max(0.0);
        }
        let z = delta / sigma;
        delta * standard_normal_cdf(z) + sigma * standard_normal_pdf(z)
    }
}

fn grow(xs: &[Vec<f64>], ys: &[f64], rows: &[usize], depth: usize, rng: &mut StdRng) -> RegNode {
    let mean = rows.iter().map(|&r| ys[r]).sum::<f64>() / rows.len() as f64;
    if depth >= 10 || rows.len() < 4 {
        return RegNode::Leaf { value: mean };
    }
    let sse: f64 = rows.iter().map(|&r| (ys[r] - mean) * (ys[r] - mean)).sum();
    if sse < 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let d = xs[0].len();
    // Feature bagging: try ~d/2 random features (at least 1).
    let n_try = (d / 2).max(1);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for _ in 0..n_try {
        let f = rng.gen_range(0..d);
        let mut vals: Vec<f64> = rows.iter().map(|&r| xs[r][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        // A few random cut points per feature (SMAC-style randomised splits).
        for _ in 0..4 {
            let i = rng.gen_range(0..vals.len() - 1);
            let thr = 0.5 * (vals[i] + vals[i + 1]);
            let (mut ls, mut ln, mut rs, mut rn) = (0.0, 0usize, 0.0, 0usize);
            for &r in rows {
                if xs[r][f] <= thr {
                    ls += ys[r];
                    ln += 1;
                } else {
                    rs += ys[r];
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let (lm, rm) = (ls / ln as f64, rs / rn as f64);
            let split_sse: f64 = rows
                .iter()
                .map(|&r| {
                    let m = if xs[r][f] <= thr { lm } else { rm };
                    (ys[r] - m) * (ys[r] - m)
                })
                .sum();
            if best.is_none_or(|(_, _, s)| split_sse < s) {
                best = Some((f, thr, split_sse));
            }
        }
    }
    let Some((feature, threshold, split_sse)) = best else {
        return RegNode::Leaf { value: mean };
    };
    if split_sse >= sse - 1e-12 {
        return RegNode::Leaf { value: mean };
    }
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| xs[r][feature] <= threshold);
    RegNode::Split {
        feature,
        threshold,
        left: Box::new(grow(xs, ys, &left_rows, depth + 1, rng)),
        right: Box::new(grow(xs, ys, &right_rows, depth + 1, rng)),
    }
}

/// Standard normal density.
fn standard_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz-Stegun erf approximation.
fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - (x[0] - 0.5) * (x[0] - 0.5) * 4.0).collect();
        (xs, ys)
    }

    #[test]
    fn fits_quadratic() {
        let (xs, ys) = quadratic_data(100);
        let rf = RandomForestSurrogate::fit(&xs, &ys, 20, 1);
        let (at_peak, _) = rf.predict(&[0.5]);
        let (at_edge, _) = rf.predict(&[0.02]);
        assert!(at_peak > at_edge + 0.3, "peak {at_peak} edge {at_edge}");
    }

    #[test]
    fn variance_higher_far_from_data() {
        // Train only on the left half; the right half must be less certain
        // or at least no more certain on average.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 20.0).sin()).collect();
        let rf = RandomForestSurrogate::fit(&xs, &ys, 30, 2);
        let (_, v_in) = rf.predict(&[0.25]);
        let (_, v_out) = rf.predict(&[0.9]);
        assert!(v_out >= v_in * 0.5, "in {v_in} out {v_out}");
    }

    #[test]
    fn single_observation_degenerates_safely() {
        let rf = RandomForestSurrogate::fit(&[vec![0.5]], &[0.7], 10, 3);
        let (m, v) = rf.predict(&[0.1]);
        assert!((m - 0.7).abs() < 1e-12);
        assert!(v.abs() < 1e-24);
    }

    #[test]
    fn ei_positive_where_improvement_plausible() {
        let (xs, ys) = quadratic_data(60);
        let rf = RandomForestSurrogate::fit(&xs, &ys, 20, 4);
        // Incumbent far below the peak: EI near the peak should dominate.
        let ei_peak = rf.expected_improvement(&[0.5], 0.5, 0.0);
        let ei_edge = rf.expected_improvement(&[0.01], 0.5, 0.0);
        assert!(ei_peak > ei_edge, "peak {ei_peak} edge {ei_edge}");
        assert!(ei_peak > 0.0);
    }

    #[test]
    fn parallel_fit_is_identical_to_serial() {
        let (xs, ys) = quadratic_data(80);
        let serial = RandomForestSurrogate::fit_with(&xs, &ys, 16, 9, Pool::serial());
        let probes: Vec<Vec<f64>> = (0..21).map(|i| vec![i as f64 / 20.0]).collect();
        for threads in [2, 8] {
            let par = RandomForestSurrogate::fit_with(&xs, &ys, 16, 9, Pool::new(threads));
            for x in &probes {
                assert_eq!(serial.predict(x), par.predict(x), "diverged at {x:?}");
            }
        }
    }

    #[test]
    fn normal_functions_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_pdf(0.0) - 0.3989).abs() < 1e-4);
        assert!((erf(1.0) - 0.8427).abs() < 1e-4);
    }
}
