//! The SMAC optimisation loop: surrogate → expected improvement →
//! intensification racing.

use crate::objective::Objective;
use crate::outcome::{FailureCounts, TrialOutcome};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smartml_classifiers::{ParamConfig, ParamSpace};
use smartml_obs::{span, Counter};
use smartml_runtime::faults::TrialToken;
use smartml_runtime::{Deadline, Pool};
use std::time::{Duration, Instant};

static TRIAL_OK: Counter = Counter::new("smac.trial.ok");
static TRIAL_NON_FINITE: Counter = Counter::new("smac.trial.non_finite");
static TRIAL_PANICKED: Counter = Counter::new("smac.trial.panicked");
static TRIAL_TIMED_OUT: Counter = Counter::new("smac.trial.timed_out");
static TRIAL_INFEASIBLE: Counter = Counter::new("smac.trial.infeasible");
static BREAKER_TRIPS: Counter = Counter::new("smac.breaker.trips");
static SURROGATE_REFITS: Counter = Counter::new("smac.surrogate.refits");

/// One evaluated configuration in the optimisation history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// The configuration.
    pub config: ParamConfig,
    /// Mean score over the folds evaluated so far (higher = better).
    pub score: f64,
    /// How many folds this configuration was evaluated on.
    pub folds_evaluated: usize,
    /// Seconds since the optimisation started when this trial finished.
    pub elapsed_secs: f64,
    /// How the trial ended. `None` only on records serialized before the
    /// taxonomy existed; every new trial carries `Some`.
    #[serde(default)]
    pub outcome: Option<TrialOutcome>,
}

impl Trial {
    /// True when the trial produced a usable (finite, non-faulted) score —
    /// the quarantine test: only successful trials may train the
    /// surrogate. Legacy records without an outcome fall back to score
    /// finiteness.
    pub fn is_success(&self) -> bool {
        match &self.outcome {
            Some(outcome) => outcome.is_ok(),
            None => self.score.is_finite(),
        }
    }
}

/// Result of an optimisation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptResult {
    /// Best configuration found.
    pub best_config: ParamConfig,
    /// Its mean score.
    pub best_score: f64,
    /// All evaluated trials, in evaluation order (the anytime curve).
    pub history: Vec<Trial>,
    /// Per-category trial counts for this optimisation.
    #[serde(default)]
    pub failures: FailureCounts,
    /// True when the consecutive-fault circuit breaker stopped the loop
    /// before its budget ran out.
    #[serde(default)]
    pub tripped: bool,
}

impl OptResult {
    /// The best score seen at or before `t` seconds — anytime-performance
    /// queries for the warm-start ablation.
    pub fn best_before(&self, t: f64) -> Option<f64> {
        self.history
            .iter()
            .filter(|trial| trial.elapsed_secs <= t)
            .map(|trial| trial.score)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }
}

/// Shared optimiser options.
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// Maximum configurations to evaluate.
    pub max_trials: usize,
    /// Wall-clock budget; `None` = trials-only budget.
    pub wall_clock: Option<Duration>,
    /// RNG seed.
    pub seed: u64,
    /// Warm-start configurations evaluated first (the SmartML KB hook:
    /// "configurations of the nominated best performing algorithms are used
    /// to initialize the hyper-parameter tuning process").
    pub initial_configs: Vec<ParamConfig>,
    /// Worker pool for fold evaluation, surrogate fitting and candidate
    /// scoring. Results are identical for any width; `Pool::serial()`
    /// (the default) keeps everything on the calling thread.
    pub pool: Pool,
    /// Absolute wall-clock cutoff, for optimisations racing each other
    /// under one shared budget (SmartML Phase 4 runs one optimiser per
    /// nominated algorithm concurrently). Checked alongside `wall_clock`;
    /// `Deadline::none()` disables it.
    pub deadline: Deadline,
    /// Per-trial watchdog timeout: a trial (all folds of one
    /// configuration) overrunning this is classified
    /// [`TrialOutcome::TimedOut`] and discarded. `None` disables the
    /// watchdog.
    pub trial_timeout: Option<Duration>,
    /// Circuit breaker: after this many *consecutive* faulted trials
    /// (panicked / timed out / non-finite — plain infeasibility does not
    /// count) the loop stops and [`OptResult::tripped`] is set. `0`
    /// disables the breaker.
    pub breaker_threshold: usize,
    /// Label attached to this optimisation's trace spans as `algo=<tag>`
    /// (typically the algorithm name). Only read when tracing is enabled;
    /// empty = unlabelled.
    pub trace_tag: String,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            max_trials: 50,
            wall_clock: None,
            seed: 0,
            initial_configs: Vec::new(),
            pool: Pool::serial(),
            deadline: Deadline::none(),
            trial_timeout: None,
            breaker_threshold: 0,
            trace_tag: String::new(),
        }
    }
}

/// A hyperparameter optimiser over a [`ParamSpace`].
pub trait Optimizer {
    /// Human-readable optimiser name.
    fn name(&self) -> &'static str;

    /// Runs the optimisation.
    fn optimize(&self, space: &ParamSpace, objective: &dyn Objective, options: &OptOptions)
        -> OptResult;
}

/// The SMAC optimiser.
pub struct Smac {
    /// Trees in the surrogate forest.
    pub n_surrogate_trees: usize,
    /// Random candidates scored by EI per iteration.
    pub n_random_candidates: usize,
    /// Local-search neighbours of the incumbent scored by EI per iteration.
    pub n_local_candidates: usize,
    /// Fraction of iterations that evaluate a pure-random configuration
    /// (SMAC's random interleaving, keeps the search ergodic).
    pub random_interleave: f64,
}

impl Default for Smac {
    fn default() -> Self {
        Smac {
            n_surrogate_trees: 20,
            n_random_candidates: 24,
            n_local_candidates: 12,
            random_interleave: 0.25,
        }
    }
}

/// Internal racing state for one configuration.
struct Raced {
    config: ParamConfig,
    encoded: Vec<f64>,
    fold_scores: Vec<f64>,
    failed: bool,
    /// The classified failure, when `failed` (first failing fold).
    failure: Option<TrialOutcome>,
}

impl Raced {
    fn mean(&self) -> f64 {
        if self.failed || self.fold_scores.is_empty() {
            f64::NEG_INFINITY
        } else {
            self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
        }
    }
}

impl Optimizer for Smac {
    fn name(&self) -> &'static str {
        "SMAC"
    }

    fn optimize(
        &self,
        space: &ParamSpace,
        objective: &dyn Objective,
        options: &OptOptions,
    ) -> OptResult {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let n_folds = objective.n_folds();
        let pool = options.pool;
        let out_of_budget = |trials: usize| {
            trials >= options.max_trials
                || options.wall_clock.is_some_and(|b| start.elapsed() >= b)
                || options.deadline.expired()
        };

        let mut history: Vec<Trial> = Vec::new();
        let mut incumbent: Option<Raced> = None;
        let mut failures = FailureCounts::default();
        let mut consecutive_faults = 0usize;
        let mut tripped = false;

        // Initial design: warm starts (KB), then the space default, then one
        // random configuration.
        let mut initial: Vec<ParamConfig> =
            options.initial_configs.iter().map(|c| space.repair(c)).collect();
        initial.push(space.default_config());
        initial.push(space.sample(&mut rng));
        initial.dedup();

        let arena = RaceArena {
            objective,
            space,
            n_folds,
            start,
            pool,
            trial_timeout: options.trial_timeout,
            deadline: options.deadline,
            tag: &options.trace_tag,
        };
        // Shared breaker bookkeeping after each race; returns true when
        // the consecutive-fault breaker trips. The outcome taxonomy feeds
        // both the per-optimisation ledger and the process metrics.
        let account = |challenger: &Raced,
                           failures: &mut FailureCounts,
                           consecutive_faults: &mut usize| {
            let outcome = challenger
                .failure
                .clone()
                .unwrap_or(TrialOutcome::Ok(challenger.mean()));
            failures.record(&outcome);
            match &outcome {
                TrialOutcome::Ok(_) => TRIAL_OK.inc(),
                TrialOutcome::NonFinite => TRIAL_NON_FINITE.inc(),
                TrialOutcome::Panicked { .. } => TRIAL_PANICKED.inc(),
                TrialOutcome::TimedOut { .. } => TRIAL_TIMED_OUT.inc(),
                TrialOutcome::Failed(_) => TRIAL_INFEASIBLE.inc(),
            }
            if outcome.is_fault() {
                *consecutive_faults += 1;
            } else {
                *consecutive_faults = 0;
            }
            let trip =
                options.breaker_threshold > 0 && *consecutive_faults >= options.breaker_threshold;
            if trip {
                BREAKER_TRIPS.inc();
            }
            trip
        };

        let mut trials = 0usize;
        for config in initial {
            if out_of_budget(trials) || tripped {
                break;
            }
            let challenger = race(&arena, config, incumbent.as_ref(), &mut history);
            trials += 1;
            tripped = account(&challenger, &mut failures, &mut consecutive_faults);
            if challenger_wins(&challenger, incumbent.as_ref()) {
                incumbent = Some(challenger);
            }
        }

        // Main loop.
        while !out_of_budget(trials) && !tripped {
            // Quarantine: only successful trials may seed the surrogate.
            let n_usable = history.iter().filter(|t| t.is_success()).count();
            let candidate = if rand::Rng::gen_bool(&mut rng, self.random_interleave)
                || n_usable < 2
            {
                space.sample(&mut rng)
            } else {
                self.propose(
                    space,
                    &history,
                    incumbent.as_ref(),
                    &mut rng,
                    options.seed,
                    pool,
                    &options.trace_tag,
                )
            };
            let challenger = race(&arena, candidate, incumbent.as_ref(), &mut history);
            trials += 1;
            tripped = account(&challenger, &mut failures, &mut consecutive_faults);
            if challenger_wins(&challenger, incumbent.as_ref()) {
                incumbent = Some(challenger);
            }
        }

        let incumbent = incumbent.unwrap_or_else(|| Raced {
            config: space.default_config(),
            encoded: space.encode(&space.default_config()),
            fold_scores: vec![],
            failed: true,
            failure: None,
        });
        OptResult {
            best_score: incumbent.mean().max(0.0),
            best_config: incumbent.config,
            history,
            failures,
            tripped,
        }
    }
}

impl Smac {
    /// EI-maximising proposal: fit the surrogate on history, score random
    /// candidates plus local perturbations of the incumbent.
    #[allow(clippy::too_many_arguments)]
    fn propose(
        &self,
        space: &ParamSpace,
        history: &[Trial],
        incumbent: Option<&Raced>,
        rng: &mut StdRng,
        seed: u64,
        pool: Pool,
        tag: &str,
    ) -> ParamConfig {
        // Quarantine: faulted and non-finite trials never reach the
        // surrogate — a panicked fit says nothing about the response
        // surface, and a NaN score would poison every split decision.
        let usable: Vec<&Trial> = history.iter().filter(|t| t.is_success()).collect();
        let xs: Vec<Vec<f64>> = usable.iter().map(|t| space.encode(&t.config)).collect();
        let ys: Vec<f64> = usable.iter().map(|t| t.score).collect();
        let best = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SURROGATE_REFITS.inc();
        let forest = {
            let _s = span!("smac.surrogate.fit", algo = tag, n = xs.len());
            RandomForestSurrogate::fit_with(
                &xs,
                &ys,
                self.n_surrogate_trees,
                seed ^ history.len() as u64,
                pool,
            )
        };
        // Candidate generation stays serial: it consumes the shared loop
        // RNG, whose draw order must not depend on scheduling.
        let mut candidates: Vec<ParamConfig> =
            (0..self.n_random_candidates).map(|_| space.sample(rng)).collect();
        if let Some(inc) = incumbent {
            for _ in 0..self.n_local_candidates {
                candidates.push(space.neighbor(&inc.config, 0.4, rng));
            }
        }
        // EI scoring is pure per candidate; the order-preserving map keeps
        // the argmax tie-break identical to the serial scan.
        pool.map_indexed(candidates, |_, c| {
            let ei = forest.expected_improvement(&space.encode(&c), best, 0.01);
            (c, ei)
        })
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(c, _)| c)
        .expect("candidate list is never empty")
    }
}

/// The loop-invariant context every intensification race shares.
struct RaceArena<'a> {
    objective: &'a dyn Objective,
    space: &'a ParamSpace,
    n_folds: usize,
    start: Instant,
    pool: Pool,
    trial_timeout: Option<Duration>,
    deadline: Deadline,
    /// `algo=` label for this optimisation's trace spans.
    tag: &'a str,
}

/// Intensification race: evaluate the challenger fold-by-fold, dropping it
/// as soon as its running mean falls clearly below the incumbent's mean on
/// the same number of folds.
///
/// With a multi-thread pool, all folds are evaluated **speculatively** in
/// parallel and the serial discard rule is then replayed over the scores in
/// fold order. The kept prefix — and therefore the `Trial` record — is
/// bit-identical to the serial path; folds the replay discards were wasted
/// speculation, traded for wall-clock (and memoised by the objective for
/// later incumbent revisits).
fn race(
    arena: &RaceArena<'_>,
    config: ParamConfig,
    incumbent: Option<&Raced>,
    history: &mut Vec<Trial>,
) -> Raced {
    let n_folds = arena.n_folds;
    let _trial_span = span!("smac.trial", algo = arena.tag, trial = history.len());
    let mut raced = Raced {
        encoded: arena.space.encode(&config),
        config,
        fold_scores: Vec::with_capacity(n_folds),
        failed: false,
        failure: None,
    };
    // One token covers every fold of this trial: the watchdog timeout
    // bounds the whole configuration evaluation, and a shared run
    // deadline caps it further. Folds run guarded, so a panicking or
    // hanging fit is contained here and classified, never unwound.
    let token = TrialToken::bounded(arena.trial_timeout, arena.deadline);
    let speculative: Option<Vec<TrialOutcome>> =
        (arena.pool.n_threads() > 1 && n_folds > 1).then(|| {
            arena.pool.map_range(n_folds, |fold| {
                let _s = span!("smac.fold", algo = arena.tag, fold = fold);
                arena.objective.evaluate_fold_guarded(&raced.config, fold, &token)
            })
        });
    for fold in 0..n_folds {
        let outcome = match &speculative {
            Some(results) => results[fold].clone(),
            None => {
                let _s = span!("smac.fold", algo = arena.tag, fold = fold);
                arena.objective.evaluate_fold_guarded(&raced.config, fold, &token)
            }
        };
        match outcome {
            TrialOutcome::Ok(score) => raced.fold_scores.push(score),
            failure => {
                raced.failed = true;
                raced.failure = Some(failure);
                break;
            }
        }
        if discard_early(&raced, incumbent, n_folds, fold) {
            break;
        }
    }
    history.push(Trial {
        config: raced.config.clone(),
        score: if raced.failed { 0.0 } else { raced.mean() },
        folds_evaluated: raced.fold_scores.len(),
        elapsed_secs: arena.start.elapsed().as_secs_f64(),
        outcome: Some(match &raced.failure {
            Some(failure) => failure.clone(),
            None => TrialOutcome::Ok(raced.mean()),
        }),
    });
    raced
}

/// The early-discard rule: after `fold`, is the challenger's optimistic
/// bound already clearly below the incumbent's mean? One shared function so
/// the serial race and the speculative replay stop at exactly the same
/// fold.
fn discard_early(raced: &Raced, incumbent: Option<&Raced>, n_folds: usize, fold: usize) -> bool {
    let Some(inc) = incumbent else { return false };
    if fold + 1 >= n_folds {
        return false;
    }
    let mean_so_far = raced.mean();
    let optimistic = mean_so_far
        + (n_folds - fold - 1) as f64 / n_folds as f64 * 0.5 * (1.0 - mean_so_far).max(0.0);
    optimistic < inc.mean() - 0.02
}

fn challenger_wins(challenger: &Raced, incumbent: Option<&Raced>) -> bool {
    match incumbent {
        None => !challenger.failed,
        Some(inc) => {
            // Only a fully-evaluated challenger can displace the incumbent.
            !challenger.failed
                && challenger.fold_scores.len() >= inc.fold_scores.len()
                && challenger.mean() > inc.mean()
        }
    }
}

// Keep encoded vectors in the struct for surrogate reuse; silence dead-code
// until the trajectory-analysis ablation consumes them.
impl Raced {
    #[allow(dead_code)]
    fn encoded(&self) -> &[f64] {
        &self.encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::StaticObjective;
    use smartml_classifiers::{ParamSpec, ParamValue};

    fn space_1d() -> ParamSpace {
        ParamSpace::new(vec![ParamSpec::Real { name: "x".into(), lo: 0.0, hi: 1.0, log: false }])
    }

    /// Smooth unimodal objective with optimum at x = 0.7.
    fn peak_objective() -> StaticObjective<impl Fn(&ParamConfig, usize) -> f64 + Send> {
        StaticObjective {
            folds: 3,
            f: |c: &ParamConfig, fold| {
                let x = c.f64_or("x", 0.0);
                let noise = (fold as f64 - 1.0) * 0.005;
                1.0 - (x - 0.7) * (x - 0.7) + noise
            },
        }
    }

    #[test]
    fn smac_finds_the_peak() {
        let result = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 60, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!((x - 0.7).abs() < 0.12, "best x = {x}");
        assert!(result.best_score > 0.97);
    }

    #[test]
    fn respects_trial_budget() {
        let result = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 10, ..Default::default() },
        );
        assert!(result.history.len() <= 10);
    }

    #[test]
    fn warm_start_is_evaluated_first() {
        let warm = ParamConfig::default().with("x", ParamValue::Real(0.69));
        let result = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 5, initial_configs: vec![warm.clone()], ..Default::default() },
        );
        assert_eq!(result.history[0].config, warm);
        // Warm start at the optimum: best score is immediately excellent.
        assert!(result.history[0].score > 0.99);
    }

    #[test]
    fn warm_start_speeds_up_early_performance() {
        let cold = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 3, seed: 5, ..Default::default() },
        );
        let warm = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions {
                max_trials: 3,
                seed: 5,
                initial_configs: vec![ParamConfig::default().with("x", ParamValue::Real(0.7))],
                ..Default::default()
            },
        );
        assert!(warm.best_score >= cold.best_score);
    }

    #[test]
    fn failed_configs_do_not_become_incumbent() {
        let obj = StaticObjective {
            folds: 2,
            f: |_: &ParamConfig, _| 0.5,
        };
        // All configs succeed here; check an all-failure objective separately.
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 4, ..Default::default() },
        );
        assert!(result.best_score > 0.0);
    }

    #[test]
    fn anytime_curve_is_queryable() {
        let result = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 20, ..Default::default() },
        );
        let early = result.best_before(1e9).unwrap();
        assert!(early > 0.0);
        assert!(result.best_before(-1.0).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let opts = OptOptions { max_trials: 15, seed: 42, ..Default::default() };
        let a = Smac::default().optimize(&space_1d(), &peak_objective(), &opts);
        let b = Smac::default().optimize(&space_1d(), &peak_objective(), &opts);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn wall_clock_budget_stops_the_loop() {
        use std::time::Duration;
        // An objective that sleeps 5ms per fold: a 60ms budget must stop the
        // loop far short of the trial cap. Bounds are loose — CI schedulers
        // stretch sleeps — the point is termination, not a tight cutoff.
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                std::thread::sleep(Duration::from_millis(5));
                c.f64_or("x", 0.0)
            },
        };
        let start = std::time::Instant::now();
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions {
                max_trials: 10_000,
                wall_clock: Some(Duration::from_millis(60)),
                ..Default::default()
            },
        );
        assert!(start.elapsed() < Duration::from_secs(30));
        assert!(result.history.len() < 1_000, "{} trials", result.history.len());
    }

    #[test]
    fn shared_deadline_stops_the_loop() {
        use std::time::Duration;
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                std::thread::sleep(Duration::from_millis(5));
                c.f64_or("x", 0.0)
            },
        };
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions {
                max_trials: 10_000,
                deadline: smartml_runtime::Deadline::after(Duration::from_millis(60)),
                ..Default::default()
            },
        );
        assert!(result.history.len() < 1_000, "{} trials", result.history.len());
    }

    #[test]
    fn pool_width_does_not_change_the_result() {
        // The whole point of the speculative race + order-preserving maps:
        // identical history (configs, scores, folds evaluated) for any
        // pool width.
        let run = |threads: usize| {
            Smac::default().optimize(
                &space_1d(),
                &peak_objective(),
                &OptOptions {
                    max_trials: 25,
                    seed: 3,
                    pool: Pool::new(threads),
                    ..Default::default()
                },
            )
        };
        let serial = run(1);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(serial.best_config, par.best_config);
            assert_eq!(serial.best_score, par.best_score);
            assert_eq!(serial.history.len(), par.history.len());
            for (a, b) in serial.history.iter().zip(&par.history) {
                assert_eq!(a.config, b.config);
                assert_eq!(a.score, b.score);
                assert_eq!(a.folds_evaluated, b.folds_evaluated);
            }
        }
    }

    #[test]
    fn partially_failing_objective_still_finds_feasible_optimum() {
        // Configurations with x < 0.5 fail; the optimum of the feasible
        // region is at x = 1.0.
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| c.f64_or("x", 0.0),
        };
        struct Gated<O>(O);
        impl<O: crate::Objective> crate::Objective for Gated<O> {
            fn n_folds(&self) -> usize {
                self.0.n_folds()
            }
            fn evaluate_fold(&self, c: &ParamConfig, fold: usize) -> Result<f64, String> {
                if c.f64_or("x", 0.0) < 0.5 {
                    Err("infeasible region".into())
                } else {
                    self.0.evaluate_fold(c, fold)
                }
            }
        }
        let result = Smac::default().optimize(
            &space_1d(),
            &Gated(obj),
            &OptOptions { max_trials: 40, ..Default::default() },
        );
        let x = result.best_config.f64_or("x", 0.0);
        assert!(x >= 0.5, "incumbent in the infeasible region: {x}");
        assert!(result.best_score > 0.8, "best {}", result.best_score);
    }

    #[test]
    fn all_failing_objective_degrades_gracefully() {
        struct AlwaysFails;
        impl crate::Objective for AlwaysFails {
            fn n_folds(&self) -> usize {
                2
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                Err("nope".into())
            }
        }
        let result = Smac::default().optimize(
            &space_1d(),
            &AlwaysFails,
            &OptOptions { max_trials: 6, ..Default::default() },
        );
        // No usable incumbent: default config, zero score, history recorded.
        assert_eq!(result.best_score, 0.0);
        assert!(!result.history.is_empty());
    }

    #[test]
    fn panicking_objective_is_contained_and_classified() {
        // Configurations with x > 0.5 blow up inside the fit; the loop
        // must survive, classify them as Panicked, and still optimise
        // the surviving half of the space.
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                let x = c.f64_or("x", 0.0);
                if x > 0.5 {
                    panic!("exploding fit at x={x}");
                }
                x
            },
        };
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 30, seed: 2, ..Default::default() },
        );
        assert!(result.failures.panicked > 0, "no panic was ever recorded");
        assert!(result.failures.ok > 0, "no trial succeeded");
        assert!(
            result.best_config.f64_or("x", 0.0) <= 0.5,
            "incumbent from the panicking region"
        );
        let panicked = result
            .history
            .iter()
            .filter(|t| matches!(t.outcome, Some(TrialOutcome::Panicked { .. })))
            .count();
        assert_eq!(panicked, result.failures.panicked, "history and tally disagree");
    }

    #[test]
    fn non_finite_scores_are_quarantined() {
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                let x = c.f64_or("x", 0.0);
                if x < 0.3 {
                    f64::NAN
                } else {
                    x
                }
            },
        };
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 30, seed: 4, ..Default::default() },
        );
        assert!(result.best_score.is_finite());
        assert!(result.best_config.f64_or("x", 0.0) >= 0.3);
        // Every NaN trial is tallied as NonFinite, never as Ok.
        for t in &result.history {
            assert!(t.score.is_finite(), "NaN leaked into a trial score");
            if let Some(TrialOutcome::Ok(s)) = &t.outcome {
                assert!(s.is_finite());
            }
        }
        assert!(result.failures.non_finite > 0);
    }

    #[test]
    fn trial_timeout_classifies_hanging_fits() {
        use std::time::Duration;
        // Fits at x > 0.5 hang far longer than the watchdog allows.
        let obj = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                let x = c.f64_or("x", 0.0);
                if x > 0.5 {
                    std::thread::sleep(Duration::from_millis(200));
                }
                x
            },
        };
        let start = std::time::Instant::now();
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions {
                max_trials: 12,
                seed: 1,
                trial_timeout: Some(Duration::from_millis(25)),
                ..Default::default()
            },
        );
        assert!(result.failures.timed_out > 0, "no trial was ever timed out");
        assert!(result.best_config.f64_or("x", 1.0) <= 0.5);
        // 12 trials × ≤2 folds × ~200ms sleeps would be ~5s unguarded;
        // the timeout classification must not wait the sleeps out fully
        // but the run must still terminate promptly overall.
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn breaker_trips_after_consecutive_faults() {
        // Everything panics: with threshold 3 the loop must stop after
        // exactly 3 trials instead of burning the whole budget.
        let obj = StaticObjective {
            folds: 2,
            f: |_: &ParamConfig, _| panic!("always broken"),
        };
        let result = Smac::default().optimize(
            &space_1d(),
            &obj,
            &OptOptions { max_trials: 50, breaker_threshold: 3, ..Default::default() },
        );
        assert!(result.tripped, "breaker never tripped");
        assert_eq!(result.history.len(), 3);
        assert_eq!(result.failures.panicked, 3);
    }

    #[test]
    fn infeasible_configs_do_not_trip_the_breaker() {
        // `Err` from the objective is plain infeasibility — the breaker
        // must ignore it and let the loop run its budget.
        struct Infeasible;
        impl crate::Objective for Infeasible {
            fn n_folds(&self) -> usize {
                2
            }
            fn evaluate_fold(&self, _: &ParamConfig, _: usize) -> Result<f64, String> {
                Err("infeasible".into())
            }
        }
        let result = Smac::default().optimize(
            &space_1d(),
            &Infeasible,
            &OptOptions { max_trials: 8, breaker_threshold: 2, ..Default::default() },
        );
        assert!(!result.tripped);
        assert_eq!(result.failures.failed, 8);
    }

    #[test]
    fn legacy_trial_records_deserialize_without_outcome() {
        // Records serialized before the taxonomy existed must still load.
        let json = r#"{"config":{"values":{}},"score":0.5,"folds_evaluated":2,"elapsed_secs":0.1}"#;
        let trial: Trial = serde_json::from_str(json).unwrap();
        assert!(trial.outcome.is_none());
        assert!(trial.is_success(), "finite legacy score counts as success");
    }

    #[test]
    fn fault_outcomes_do_not_change_winner_when_quarantined_region_is_losing() {
        // Clean run vs a run where only the low-scoring half of the space
        // faults: the quarantine keeps the surrogate consistent enough
        // that the winner region is unchanged.
        let clean = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| c.f64_or("x", 0.0),
        };
        let faulty = StaticObjective {
            folds: 2,
            f: |c: &ParamConfig, _| {
                let x = c.f64_or("x", 0.0);
                if x < 0.2 {
                    panic!("low region faults");
                }
                x
            },
        };
        let opts = OptOptions { max_trials: 30, seed: 9, ..Default::default() };
        let a = Smac::default().optimize(&space_1d(), &clean, &opts);
        let b = Smac::default().optimize(&space_1d(), &faulty, &opts);
        assert!(a.best_config.f64_or("x", 0.0) > 0.7);
        assert!(b.best_config.f64_or("x", 0.0) > 0.7);
        assert!((a.best_score - b.best_score).abs() < 0.1);
    }

    #[test]
    fn racing_saves_fold_evaluations() {
        // Configurations far from the peak should be raced out early once a
        // good incumbent exists.
        let result = Smac::default().optimize(
            &space_1d(),
            &peak_objective(),
            &OptOptions { max_trials: 40, ..Default::default() },
        );
        let partial = result.history.iter().filter(|t| t.folds_evaluated < 3).count();
        assert!(partial > 0, "no challenger was ever discarded early");
    }
}
