//! Deterministic fault-injection tests for the SMAC loop: with the
//! `fault-injection` feature armed, `smac::fold` fail points panic and
//! hang at seed-driven rates, and the optimiser must contain every fault
//! — terminate within its deadline, never deadlock the fold cache, keep
//! an exact failure ledger, and never crown a faulted configuration.
#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use smartml_classifiers::Algorithm;
use smartml_data::synth::gaussian_blobs;
use smartml_runtime::faults::fail::{self, FaultPlan, SiteRule};
use smartml_runtime::{Deadline, Pool};
use smartml_smac::{Asha, ClassifierObjective, OptOptions, OptResult, Optimizer, Smac};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The fail-point plan and its counters are process-global; tests that
/// arm them must not overlap.
static ARMED: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARMED.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One SMAC run over a fresh objective (fresh fold cache) under the
/// currently armed plan.
fn run_smac(opt_seed: u64) -> OptResult {
    let data = gaussian_blobs("faults", 60, 3, 2, 0.9, 7);
    let objective = ClassifierObjective::new(Algorithm::Knn, &data, &data.all_rows(), 3, 5);
    let space = Algorithm::Knn.param_space();
    let options = OptOptions {
        max_trials: 8,
        seed: opt_seed,
        trial_timeout: Some(Duration::from_millis(150)),
        deadline: Deadline::after(Duration::from_secs(30)),
        ..Default::default()
    };
    Smac::default().optimize(&space, &objective, &options)
}

fn fold_rule(panic_rate: f64, hang_rate: f64) -> SiteRule {
    SiteRule {
        site: "smac::fold".into(),
        panic_rate,
        hang_rate,
        // Far beyond the trial timeout: uncontained, one hang would eat
        // the whole deadline. Cooperative polling frees it at ~150 ms.
        hang_for: Duration::from_secs(30),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Panic/hang rates up to 30%: the loop terminates well inside its
    /// deadline (so no fold-cache waiter deadlocked on a panicked
    /// in-flight slot), the ledger covers every trial, the counts match
    /// the injection counters exactly, faults never crown a winner, and
    /// the whole run is reproducible under the same plan.
    #[test]
    fn smac_contains_faults_at_up_to_30_percent(
        panic_rate in 0.0..0.3f64,
        hang_rate in 0.0..0.3f64,
        plan_seed in 0u64..512,
    ) {
        let _guard = lock();
        let plan = FaultPlan { seed: plan_seed, rules: vec![fold_rule(panic_rate, hang_rate)] };

        fail::arm(plan.clone());
        let started = Instant::now();
        let result = run_smac(11);
        let elapsed = started.elapsed();
        let (panics, hangs) = (fail::injected_panics(), fail::injected_hangs());
        fail::disarm();

        prop_assert!(
            elapsed < Duration::from_secs(30),
            "run must finish inside the deadline, took {elapsed:?}"
        );
        prop_assert_eq!(result.failures.total(), result.history.len());
        // Serial folds: every injected panic ends exactly one race as
        // Panicked, every injected hang expires exactly one trial token.
        prop_assert_eq!(result.failures.panicked, panics);
        prop_assert_eq!(result.failures.timed_out, hangs);
        for trial in result.history.iter().filter(|t| !t.is_success()) {
            prop_assert!(
                trial.config.summary() != result.best_config.summary()
                    || result.best_score == 0.0,
                "a faulted configuration must never be the winner"
            );
        }

        // Same plan, same seeds: the faulted run replays identically.
        fail::arm(plan);
        let replay = run_smac(11);
        fail::disarm();
        prop_assert_eq!(replay.best_config.summary(), result.best_config.summary());
        prop_assert_eq!(replay.history.len(), result.history.len());
        for (a, b) in replay.history.iter().zip(result.history.iter()) {
            prop_assert_eq!(a.config.summary(), b.config.summary());
            prop_assert_eq!(
                a.outcome.as_ref().map(|o| o.kind()),
                b.outcome.as_ref().map(|o| o.kind())
            );
        }
    }
}

/// One ASHA run at the given pool width under the currently armed plan.
/// The fold fail point draws from `(config summary, fold)`, so the same
/// faults fire for the same evaluations regardless of execution order.
fn run_asha(width: usize) -> OptResult {
    let data = gaussian_blobs("faults", 60, 3, 2, 0.9, 7);
    let objective = ClassifierObjective::new(Algorithm::Knn, &data, &data.all_rows(), 3, 5);
    let space = Algorithm::Knn.param_space();
    let options = OptOptions {
        max_trials: 12,
        seed: 11,
        pool: Pool::new(width),
        trial_timeout: Some(Duration::from_millis(150)),
        deadline: Deadline::after(Duration::from_secs(30)),
        ..Default::default()
    };
    Asha::default().optimize(&space, &objective, &options)
}

/// Everything about a run that must be width-independent: the rung
/// history in processing order (config, bit-exact score, fidelity,
/// outcome kind) plus the winner.
fn fingerprint(r: &OptResult) -> (Vec<(String, u64, usize, Option<&'static str>)>, String, u64) {
    let history = r
        .history
        .iter()
        .map(|t| {
            (
                t.config.summary(),
                t.score.to_bits(),
                t.folds_evaluated,
                t.outcome.as_ref().map(|o| o.kind().label()),
            )
        })
        .collect();
    (history, r.best_config.summary(), r.best_score.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// ASHA under up-to-30% panic rates must stay byte-identical across
    /// pool widths 1/2/8: the async window orders decisions by job
    /// index, and the fail point keys on `(config, fold)`, so the same
    /// jobs fault the same way in the same ledger order no matter how
    /// many workers race. (Hang faults are excluded here by design:
    /// a timed-out fold's computation may still finish and populate the
    /// fold cache, so a *retry* of that fold sees Ok or TimedOut
    /// depending on wall-clock timing — no scheduler can make timeouts
    /// width-independent. The test below covers hang containment.)
    #[test]
    fn asha_is_width_independent_under_30_percent_panics(
        panic_rate in 0.0..0.3f64,
        plan_seed in 0u64..512,
    ) {
        let _guard = lock();
        let plan = FaultPlan { seed: plan_seed, rules: vec![fold_rule(panic_rate, 0.0)] };

        let mut runs = Vec::new();
        for width in [1usize, 2, 8] {
            fail::arm(plan.clone());
            let started = Instant::now();
            let result = run_asha(width);
            let elapsed = started.elapsed();
            fail::disarm();
            prop_assert!(
                elapsed < Duration::from_secs(30),
                "width {width} must finish inside the deadline, took {elapsed:?}"
            );
            runs.push((width, fingerprint(&result), result));
        }

        let (_, serial, baseline) = &runs[0];
        for (width, parallel, _) in &runs[1..] {
            prop_assert_eq!(
                serial, parallel,
                "ASHA diverged between widths 1 and {} under faults", width
            );
        }
        // Each faulted rung job tallies exactly one failure; successes
        // count once per distinct configuration.
        prop_assert_eq!(
            baseline.failures.total_failures(),
            baseline.history.iter().filter(|t| !t.is_success()).count()
        );
        for trial in baseline.history.iter().filter(|t| !t.is_success()) {
            prop_assert!(
                trial.config.summary() != baseline.best_config.summary()
                    || baseline.best_score == 0.0,
                "a faulted configuration must never be the winner"
            );
        }
    }

    /// Mixed panic/hang rates up to 30%: every width contains the faults
    /// (terminates well inside the deadline, never crowns a faulted
    /// winner), and the serial width — where fold retries cannot race
    /// the cache — replays byte-identically under the same plan.
    #[test]
    fn asha_contains_mixed_faults_at_every_width(
        panic_rate in 0.0..0.3f64,
        hang_rate in 0.05..0.3f64,
        plan_seed in 0u64..512,
    ) {
        let _guard = lock();
        let plan = FaultPlan { seed: plan_seed, rules: vec![fold_rule(panic_rate, hang_rate)] };

        for width in [1usize, 2, 8] {
            fail::arm(plan.clone());
            let started = Instant::now();
            let result = run_asha(width);
            let elapsed = started.elapsed();
            fail::disarm();
            prop_assert!(
                elapsed < Duration::from_secs(30),
                "width {width} must finish inside the deadline, took {elapsed:?}"
            );
            for trial in result.history.iter().filter(|t| !t.is_success()) {
                prop_assert!(
                    trial.config.summary() != result.best_config.summary()
                        || result.best_score == 0.0,
                    "width {}: a faulted configuration must never be the winner", width
                );
            }
        }

        fail::arm(plan.clone());
        let serial = fingerprint(&run_asha(1));
        fail::disarm();
        fail::arm(plan);
        let replay = fingerprint(&run_asha(1));
        fail::disarm();
        prop_assert_eq!(serial, replay, "serial ASHA must replay identically");
    }
}

/// An armed plan whose rules hit no site the optimiser runs through must
/// change nothing: same winner, same history as the disarmed run — the
/// injection layer is invisible unless it actually fires.
#[test]
fn non_matching_plan_leaves_the_winner_unchanged() {
    let _guard = lock();
    let baseline = run_smac(23);
    fail::arm(FaultPlan {
        seed: 99,
        rules: vec![SiteRule {
            site: "unrelated::site".into(),
            panic_rate: 1.0,
            hang_rate: 0.0,
            hang_for: Duration::ZERO,
        }],
    });
    let injected = run_smac(23);
    let fired = fail::injected_panics() + fail::injected_hangs();
    fail::disarm();
    assert_eq!(fired, 0, "no matching site may fire");
    assert_eq!(injected.best_config.summary(), baseline.best_config.summary());
    assert_eq!(injected.best_score, baseline.best_score);
    assert_eq!(injected.history.len(), baseline.history.len());
}

/// Every trial hangs: the watchdog must cut each one at the trial
/// timeout, the breaker must stop the loop after exactly its threshold,
/// and the whole ordeal must cost ~threshold × timeout, not the budget.
#[test]
fn all_hanging_trials_trip_the_breaker_quickly() {
    let _guard = lock();
    fail::arm(FaultPlan { seed: 1, rules: vec![fold_rule(0.0, 1.0)] });
    let data = gaussian_blobs("hang", 60, 3, 2, 0.9, 7);
    let objective = ClassifierObjective::new(Algorithm::Knn, &data, &data.all_rows(), 3, 5);
    let space = Algorithm::Knn.param_space();
    let options = OptOptions {
        max_trials: 50,
        seed: 3,
        trial_timeout: Some(Duration::from_millis(100)),
        breaker_threshold: 3,
        ..Default::default()
    };
    let started = Instant::now();
    let result = Smac::default().optimize(&space, &objective, &options);
    let elapsed = started.elapsed();
    fail::disarm();

    assert!(result.tripped, "consecutive timeouts must trip the breaker");
    assert_eq!(result.history.len(), 3, "the loop must stop at the threshold");
    assert_eq!(result.failures.timed_out, 3);
    assert!(
        elapsed < Duration::from_secs(10),
        "3 trials x 100ms watchdog must not take {elapsed:?}"
    );
}
