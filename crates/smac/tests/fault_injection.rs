//! Deterministic fault-injection tests for the SMAC loop: with the
//! `fault-injection` feature armed, `smac::fold` fail points panic and
//! hang at seed-driven rates, and the optimiser must contain every fault
//! — terminate within its deadline, never deadlock the fold cache, keep
//! an exact failure ledger, and never crown a faulted configuration.
#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use smartml_classifiers::Algorithm;
use smartml_data::synth::gaussian_blobs;
use smartml_runtime::faults::fail::{self, FaultPlan, SiteRule};
use smartml_runtime::Deadline;
use smartml_smac::{ClassifierObjective, OptOptions, OptResult, Optimizer, Smac};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The fail-point plan and its counters are process-global; tests that
/// arm them must not overlap.
static ARMED: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARMED.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One SMAC run over a fresh objective (fresh fold cache) under the
/// currently armed plan.
fn run_smac(opt_seed: u64) -> OptResult {
    let data = gaussian_blobs("faults", 60, 3, 2, 0.9, 7);
    let objective = ClassifierObjective::new(Algorithm::Knn, &data, &data.all_rows(), 3, 5);
    let space = Algorithm::Knn.param_space();
    let options = OptOptions {
        max_trials: 8,
        seed: opt_seed,
        trial_timeout: Some(Duration::from_millis(150)),
        deadline: Deadline::after(Duration::from_secs(30)),
        ..Default::default()
    };
    Smac::default().optimize(&space, &objective, &options)
}

fn fold_rule(panic_rate: f64, hang_rate: f64) -> SiteRule {
    SiteRule {
        site: "smac::fold".into(),
        panic_rate,
        hang_rate,
        // Far beyond the trial timeout: uncontained, one hang would eat
        // the whole deadline. Cooperative polling frees it at ~150 ms.
        hang_for: Duration::from_secs(30),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Panic/hang rates up to 30%: the loop terminates well inside its
    /// deadline (so no fold-cache waiter deadlocked on a panicked
    /// in-flight slot), the ledger covers every trial, the counts match
    /// the injection counters exactly, faults never crown a winner, and
    /// the whole run is reproducible under the same plan.
    #[test]
    fn smac_contains_faults_at_up_to_30_percent(
        panic_rate in 0.0..0.3f64,
        hang_rate in 0.0..0.3f64,
        plan_seed in 0u64..512,
    ) {
        let _guard = lock();
        let plan = FaultPlan { seed: plan_seed, rules: vec![fold_rule(panic_rate, hang_rate)] };

        fail::arm(plan.clone());
        let started = Instant::now();
        let result = run_smac(11);
        let elapsed = started.elapsed();
        let (panics, hangs) = (fail::injected_panics(), fail::injected_hangs());
        fail::disarm();

        prop_assert!(
            elapsed < Duration::from_secs(30),
            "run must finish inside the deadline, took {elapsed:?}"
        );
        prop_assert_eq!(result.failures.total(), result.history.len());
        // Serial folds: every injected panic ends exactly one race as
        // Panicked, every injected hang expires exactly one trial token.
        prop_assert_eq!(result.failures.panicked, panics);
        prop_assert_eq!(result.failures.timed_out, hangs);
        for trial in result.history.iter().filter(|t| !t.is_success()) {
            prop_assert!(
                trial.config.summary() != result.best_config.summary()
                    || result.best_score == 0.0,
                "a faulted configuration must never be the winner"
            );
        }

        // Same plan, same seeds: the faulted run replays identically.
        fail::arm(plan);
        let replay = run_smac(11);
        fail::disarm();
        prop_assert_eq!(replay.best_config.summary(), result.best_config.summary());
        prop_assert_eq!(replay.history.len(), result.history.len());
        for (a, b) in replay.history.iter().zip(result.history.iter()) {
            prop_assert_eq!(a.config.summary(), b.config.summary());
            prop_assert_eq!(
                a.outcome.as_ref().map(|o| o.kind()),
                b.outcome.as_ref().map(|o| o.kind())
            );
        }
    }
}

/// An armed plan whose rules hit no site the optimiser runs through must
/// change nothing: same winner, same history as the disarmed run — the
/// injection layer is invisible unless it actually fires.
#[test]
fn non_matching_plan_leaves_the_winner_unchanged() {
    let _guard = lock();
    let baseline = run_smac(23);
    fail::arm(FaultPlan {
        seed: 99,
        rules: vec![SiteRule {
            site: "unrelated::site".into(),
            panic_rate: 1.0,
            hang_rate: 0.0,
            hang_for: Duration::ZERO,
        }],
    });
    let injected = run_smac(23);
    let fired = fail::injected_panics() + fail::injected_hangs();
    fail::disarm();
    assert_eq!(fired, 0, "no matching site may fire");
    assert_eq!(injected.best_config.summary(), baseline.best_config.summary());
    assert_eq!(injected.best_score, baseline.best_score);
    assert_eq!(injected.history.len(), baseline.history.len());
}

/// Every trial hangs: the watchdog must cut each one at the trial
/// timeout, the breaker must stop the loop after exactly its threshold,
/// and the whole ordeal must cost ~threshold × timeout, not the budget.
#[test]
fn all_hanging_trials_trip_the_breaker_quickly() {
    let _guard = lock();
    fail::arm(FaultPlan { seed: 1, rules: vec![fold_rule(0.0, 1.0)] });
    let data = gaussian_blobs("hang", 60, 3, 2, 0.9, 7);
    let objective = ClassifierObjective::new(Algorithm::Knn, &data, &data.all_rows(), 3, 5);
    let space = Algorithm::Knn.param_space();
    let options = OptOptions {
        max_trials: 50,
        seed: 3,
        trial_timeout: Some(Duration::from_millis(100)),
        breaker_threshold: 3,
        ..Default::default()
    };
    let started = Instant::now();
    let result = Smac::default().optimize(&space, &objective, &options);
    let elapsed = started.elapsed();
    fail::disarm();

    assert!(result.tripped, "consecutive timeouts must trip the breaker");
    assert_eq!(result.history.len(), 3, "the loop must stop at the threshold");
    assert_eq!(result.failures.timed_out, 3);
    assert!(
        elapsed < Duration::from_secs(10),
        "3 trials x 100ms watchdog must not take {elapsed:?}"
    );
}
