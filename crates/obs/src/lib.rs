//! Zero-dependency observability: a process-wide metrics registry, structured
//! span tracing, and per-run timeline aggregation.
//!
//! Design constraints, in priority order:
//!
//! 1. **Near-zero overhead when disabled.** Every instrumentation site first
//!    checks a process-wide `AtomicBool` with a relaxed load. Counters,
//!    gauges, and histograms are no-ops behind that single load; `span!`
//!    expands to a guard whose constructor does nothing but the load. No
//!    locks, no allocation, no syscalls on the disabled path.
//! 2. **Thread safety without contention.** Counters are sharded across
//!    cache-line-padded atomics indexed by thread; histograms use atomic
//!    buckets. The only mutex in the hot path protects the trace ring
//!    buffer, and it is taken only while tracing is enabled.
//! 3. **Determinism of outputs.** Metric snapshots are sorted by name.
//!    Span ids are assigned from a global sequence; the trace export is
//!    ordered by span end. Nothing here feeds back into model selection,
//!    so enabling observability cannot change results.
//!
//! Metric names follow the `crate.component.name` convention, e.g.
//! `runtime.pool.tasks`, `smac.trial.ok`, `kbd.wal.fsyncs`.
//!
//! The crate is intentionally dependency-free: exports are hand-rolled JSON
//! (spans, Chrome trace) and plain text (metrics); richer serde conversions
//! live in the consuming crates.

mod metrics;
mod timeline;
mod trace;

pub use metrics::{
    reset_metrics, snapshot, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot,
};
pub use timeline::{AlgoTimeline, Timeline};
pub use trace::{
    disable_tracing, drain_trace, enable_tracing, record_interval, tracing_enabled, SpanGuard,
    SpanRecord, Trace, TraceStats,
};

use std::sync::atomic::{AtomicBool, Ordering};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the metrics registry on. Instrumentation sites become live; until
/// this is called every counter/gauge/histogram operation is a single
/// relaxed atomic load.
pub fn enable_metrics() {
    METRICS_ENABLED.store(true, Ordering::Release);
}

/// Turn the metrics registry off again (used by tests and benches).
pub fn disable_metrics() {
    METRICS_ENABLED.store(false, Ordering::Release);
}

/// Whether metric recording is currently live.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Start a traced span. Returns a [`SpanGuard`] that records the span into
/// the ring buffer when dropped (if tracing is enabled at entry).
///
/// ```ignore
/// let _g = span!("phase4.tune");
/// let _g = span!("smac.trial", algo = name, trial = idx);
/// ```
///
/// Argument values are formatted with `Display` *only when tracing is
/// enabled*; the disabled path never touches them.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, || String::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(concat!(stringify!($key), "="));
                s.push_str(&format!("{}", $value));
            )+
            s
        })
    };
}

/// Minimal JSON string escaper shared by the export paths.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes tests that toggle the global enable flags. Parallel test
/// threads would otherwise observe each other's enable/disable calls.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
use std::sync::Mutex;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_roundtrip() {
        let _g = test_gate();
        disable_metrics();
        assert!(!metrics_enabled());
        enable_metrics();
        assert!(metrics_enabled());
        disable_metrics();
        assert!(!metrics_enabled());
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
