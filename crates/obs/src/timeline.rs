//! Per-run timeline: aggregates a drained [`Trace`](crate::Trace) into the
//! phase → algorithm → trial → fold hierarchy the pipeline emits.
//!
//! The aggregation keys on span *names* (and the `algo=` argument), not on
//! parent links, so it stays correct when spans are recorded from pool
//! worker threads whose parent stacks do not see the spawning span.

use crate::trace::{SpanRecord, Trace};

/// Wall-clock attribution for one algorithm's tuning work.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoTimeline {
    pub name: String,
    /// Wall-clock of the algorithm's `phase4.tune` span(s) — the outer
    /// per-algorithm budget slice, including surrogate time.
    pub tune_secs: f64,
    pub trials: u64,
    /// Summed `smac.trial` span time (may exceed `tune_secs` when folds run
    /// speculatively in parallel).
    pub trial_secs: f64,
    pub folds: u64,
    pub fold_secs: f64,
    pub surrogate_fits: u64,
    pub surrogate_secs: f64,
    /// `smac.rung` spans — multi-fidelity rung evaluations (synchronous
    /// halving emits one per rung barrier, ASHA one per rung job).
    pub rungs: u64,
    pub rung_secs: f64,
}

/// Phase-level and per-algorithm wall-clock attribution for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Duration of the root `run` span, seconds.
    pub total_secs: f64,
    /// `(phase span name, seconds)` in start order.
    pub phases: Vec<(String, f64)>,
    /// `total_secs` minus the phase spans — time between phases (setup,
    /// report assembly) not covered by a phase span.
    pub other_secs: f64,
    /// Per-algorithm attribution, busiest first.
    pub algorithms: Vec<AlgoTimeline>,
    /// Spans lost to ring-buffer overwrite while recording.
    pub dropped_spans: u64,
}

fn secs(span: &SpanRecord) -> f64 {
    span.dur_us as f64 / 1e6
}

/// Extract `key=value` from a span's formatted args.
fn arg<'a>(span: &'a SpanRecord, key: &str) -> Option<&'a str> {
    span.args.split(' ').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

impl Timeline {
    /// Aggregate a drained trace. Spans whose names are outside the known
    /// taxonomy contribute nothing (they still appear in the raw exports).
    pub fn from_trace(trace: &Trace) -> Timeline {
        let mut tl = Timeline {
            dropped_spans: trace.dropped,
            ..Timeline::default()
        };
        let mut algos: Vec<AlgoTimeline> = Vec::new();
        fn algo_slot(algos: &mut Vec<AlgoTimeline>, name: &str) -> usize {
            if let Some(i) = algos.iter().position(|a| a.name == name) {
                i
            } else {
                algos.push(AlgoTimeline {
                    name: name.to_string(),
                    tune_secs: 0.0,
                    trials: 0,
                    trial_secs: 0.0,
                    folds: 0,
                    fold_secs: 0.0,
                    surrogate_fits: 0,
                    surrogate_secs: 0.0,
                    rungs: 0,
                    rung_secs: 0.0,
                });
                algos.len() - 1
            }
        }

        for span in &trace.spans {
            match span.name {
                "run" => tl.total_secs += secs(span),
                name if name.starts_with("phase") => {
                    if name == "phase4.tune" {
                        if let Some(a) = arg(span, "algo") {
                            let i = algo_slot(&mut algos, a);
                            algos[i].tune_secs += secs(span);
                        }
                    } else {
                        tl.phases.push((name.to_string(), secs(span)));
                    }
                }
                "smac.trial" => {
                    if let Some(a) = arg(span, "algo") {
                        let i = algo_slot(&mut algos, a);
                        algos[i].trials += 1;
                        algos[i].trial_secs += secs(span);
                    }
                }
                "smac.fold" => {
                    if let Some(a) = arg(span, "algo") {
                        let i = algo_slot(&mut algos, a);
                        algos[i].folds += 1;
                        algos[i].fold_secs += secs(span);
                    }
                }
                "smac.surrogate.fit" => {
                    if let Some(a) = arg(span, "algo") {
                        let i = algo_slot(&mut algos, a);
                        algos[i].surrogate_fits += 1;
                        algos[i].surrogate_secs += secs(span);
                    }
                }
                "smac.rung" => {
                    if let Some(a) = arg(span, "algo") {
                        let i = algo_slot(&mut algos, a);
                        algos[i].rungs += 1;
                        algos[i].rung_secs += secs(span);
                    }
                }
                _ => {}
            }
        }

        tl.other_secs = (tl.total_secs - tl.phases.iter().map(|(_, s)| s).sum::<f64>()).max(0.0);
        algos.sort_by(|a, b| {
            b.tune_secs
                .partial_cmp(&a.tune_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        tl.algorithms = algos;
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, args: &str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id: start_us + 1,
            parent: 0,
            name,
            args: args.to_string(),
            tid: 1,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn aggregates_phases_algorithms_trials_folds() {
        let trace = Trace {
            spans: vec![
                span("run", "", 0, 10_000_000),
                span("phase2.preprocess", "", 0, 1_000_000),
                span("phase3.select", "", 1_000_000, 500_000),
                span("phase4.tune_all", "", 1_500_000, 8_000_000),
                span("phase4.tune", "algo=RandomForest", 1_500_000, 5_000_000),
                span("phase4.tune", "algo=KNN", 1_500_000, 3_000_000),
                span("smac.trial", "algo=RandomForest trial=0", 1_600_000, 400_000),
                span("smac.trial", "algo=RandomForest trial=1", 2_000_000, 600_000),
                span("smac.fold", "algo=RandomForest fold=0", 1_600_000, 200_000),
                span("smac.surrogate.fit", "algo=RandomForest", 2_700_000, 50_000),
                span("smac.rung", "algo=KNN rung=0 cohort=8 fidelity=1", 1_700_000, 300_000),
                span("smac.rung", "algo=KNN rung=1 cohort=4 fidelity=2", 2_100_000, 250_000),
                span("phase5.output", "", 9_500_000, 400_000),
                span("clf.fit", "algo=RandomForest", 1_650_000, 100_000),
            ],
            dropped: 2,
        };
        let tl = Timeline::from_trace(&trace);
        assert!((tl.total_secs - 10.0).abs() < 1e-9);
        assert_eq!(tl.phases.len(), 4);
        assert_eq!(tl.phases[0].0, "phase2.preprocess");
        // other = 10 - (1 + 0.5 + 8 + 0.4) = 0.1
        assert!((tl.other_secs - 0.1).abs() < 1e-9);
        assert_eq!(tl.algorithms.len(), 2);
        let rf = &tl.algorithms[0];
        assert_eq!(rf.name, "RandomForest");
        assert!((rf.tune_secs - 5.0).abs() < 1e-9);
        assert_eq!(rf.trials, 2);
        assert!((rf.trial_secs - 1.0).abs() < 1e-9);
        assert_eq!(rf.folds, 1);
        assert_eq!(rf.surrogate_fits, 1);
        assert_eq!(rf.rungs, 0);
        let knn = &tl.algorithms[1];
        assert_eq!(knn.rungs, 2);
        assert!((knn.rung_secs - 0.55).abs() < 1e-9);
        assert_eq!(tl.dropped_spans, 2);
    }

    #[test]
    fn phase_sum_matches_total_when_no_gaps() {
        let trace = Trace {
            spans: vec![
                span("run", "", 0, 2_000_000),
                span("phase2.preprocess", "", 0, 2_000_000),
            ],
            dropped: 0,
        };
        let tl = Timeline::from_trace(&trace);
        assert!((tl.other_secs - 0.0).abs() < 1e-9);
    }
}
