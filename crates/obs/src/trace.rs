//! Structured span tracing into a bounded in-process ring buffer.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed when
//! its guard drops; the record carries the span's name, formatted arguments,
//! parent span (innermost open span on the same thread), a small numeric
//! thread id, and monotonic start/duration in microseconds relative to the
//! process trace epoch.
//!
//! The ring buffer is bounded: when full, the oldest span is overwritten and
//! a drop counter advances, so tracing can stay on indefinitely without
//! unbounded memory. [`drain_trace`] swaps the buffer out for export.

use crate::json_escape;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default ring-buffer capacity (spans). Roughly: a 60-second tuned run at
/// ~2k spans/second fits with headroom; at ~120 bytes/span this is ~30 MB
/// worst case.
pub const DEFAULT_RING_CAPACITY: usize = 262_144;

static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static PARENT_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    /// 0 = root (no enclosing span on the recording thread).
    pub parent: u64,
    pub name: &'static str,
    /// Space-separated `key=value` pairs from the `span!` call site.
    pub args: String,
    /// Small per-process thread number (assigned at first span per thread).
    pub tid: u64,
    /// Microseconds since the trace epoch.
    pub start_us: u64,
    pub dur_us: u64,
}

struct RingState {
    buf: VecDeque<SpanRecord>,
    cap: usize,
    dropped: u64,
}

fn ring() -> &'static Mutex<RingState> {
    static RING: OnceLock<Mutex<RingState>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(RingState {
            buf: VecDeque::new(),
            cap: DEFAULT_RING_CAPACITY,
            dropped: 0,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_micros() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn push_record(rec: SpanRecord) {
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    if ring.buf.len() >= ring.cap {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
    ring.buf.push_back(rec);
}

/// Turn tracing on with the given ring-buffer capacity (`None` for the
/// default). Existing buffered spans are kept; the epoch is pinned at the
/// first enable.
pub fn enable_tracing(capacity: Option<usize>) {
    epoch();
    {
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cap) = capacity {
            ring.cap = cap.max(1);
            while ring.buf.len() > ring.cap {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
        }
    }
    TRACING_ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. Open guards created while enabled still record on drop.
pub fn disable_tracing() {
    TRACING_ENABLED.store(false, Ordering::Release);
}

/// Whether span recording is currently live.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// RAII guard for one span. Construct through the [`span!`](crate::span!)
/// macro; when tracing is disabled at entry the guard is inert (a single
/// relaxed load, no allocation).
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    args: String,
    start: Instant,
}

impl SpanGuard {
    /// Enter a span. `args_fn` is called only when tracing is enabled.
    #[inline]
    pub fn enter(name: &'static str, args_fn: impl FnOnce() -> String) -> SpanGuard {
        if !tracing_enabled() {
            return SpanGuard { live: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = PARENT_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        SpanGuard {
            live: Some(LiveSpan {
                id,
                parent,
                name,
                args: args_fn(),
                start: Instant::now(),
            }),
        }
    }

    /// The span id, or 0 for an inert guard.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map(|l| l.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur = live.start.elapsed();
            PARENT_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().rposition(|&id| id == live.id) {
                    s.remove(pos);
                }
            });
            push_record(SpanRecord {
                id: live.id,
                parent: live.parent,
                name: live.name,
                args: live.args,
                tid: thread_id(),
                start_us: micros_since_epoch(live.start),
                dur_us: dur.as_micros() as u64,
            });
        }
    }
}

/// Record a span after the fact, for intervals measured outside guard scope
/// (e.g. the time a trial spent queued before a worker picked it up). The
/// parent is the innermost open span on the calling thread.
pub fn record_interval(name: &'static str, args: String, start: Instant, dur: Duration) {
    if !tracing_enabled() {
        return;
    }
    let parent = PARENT_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    push_record(SpanRecord {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        name,
        args,
        tid: thread_id(),
        start_us: micros_since_epoch(start),
        dur_us: dur.as_micros() as u64,
    });
}

/// Counts reported alongside a drained trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    pub recorded: usize,
    /// Spans overwritten because the ring was full.
    pub dropped: u64,
}

/// A drained batch of spans, ordered by start time (ties by id).
#[derive(Debug, Clone)]
pub struct Trace {
    pub spans: Vec<SpanRecord>,
    pub dropped: u64,
}

impl Trace {
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            recorded: self.spans.len(),
            dropped: self.dropped,
        }
    }

    /// One JSON object per line, schema:
    /// `{"id":N,"parent":N,"name":"...","args":"...","tid":N,"ts_us":N,"dur_us":N}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"args\":\"{}\",\"tid\":{},\"ts_us\":{},\"dur_us\":{}}}\n",
                s.id,
                s.parent,
                json_escape(s.name),
                json_escape(&s.args),
                s.tid,
                s.start_us,
                s.dur_us
            ));
        }
        out
    }

    /// Chrome trace-event JSON array (loadable in `chrome://tracing` /
    /// Perfetto), one complete-event (`"ph":"X"`) object per line. The
    /// category is the metric-style prefix of the span name (text before the
    /// first `.`), so lanes can be filtered by subsystem.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let cat = s.name.split('.').next().unwrap_or("span");
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"detail\":\"{}\",\"id\":{},\"parent\":{}}}}}{}\n",
                json_escape(s.name),
                json_escape(cat),
                s.start_us,
                s.dur_us,
                s.tid,
                json_escape(&s.args),
                s.id,
                s.parent,
                comma
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Remove and return everything in the ring buffer, resetting the dropped
/// counter. Spans come back sorted by `(start_us, id)` for deterministic
/// export regardless of which thread pushed last.
pub fn drain_trace() -> Trace {
    let (mut spans, dropped) = {
        let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
        let spans: Vec<SpanRecord> = ring.buf.drain(..).collect();
        let dropped = ring.dropped;
        ring.dropped = 0;
        (spans, dropped)
    };
    spans.sort_by_key(|s| (s.start_us, s.id));
    Trace { spans, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let _g = crate::test_gate();
        enable_tracing(None);
        let _ = drain_trace();
        {
            let outer = crate::span!("test.outer");
            let outer_id = outer.id();
            assert!(outer_id > 0);
            {
                let inner = crate::span!("test.inner", idx = 3, algo = "rf");
                assert!(inner.id() > outer_id);
            }
        }
        disable_tracing();
        let trace = drain_trace();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace.spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.args, "idx=3 algo=rf");
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _g = crate::test_gate();
        disable_tracing();
        let _ = drain_trace();
        // Argument expressions must not be evaluated on the disabled path.
        fn boom() -> &'static str {
            panic!("args evaluated while tracing disabled")
        }
        {
            let g = crate::span!("test.disabled", never = boom());
            assert_eq!(g.id(), 0);
        }
        assert_eq!(drain_trace().spans.len(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _g = crate::test_gate();
        enable_tracing(Some(4));
        let _ = drain_trace();
        for _ in 0..10 {
            let _s = crate::span!("test.ring");
        }
        disable_tracing();
        let trace = drain_trace();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.dropped, 6);
        // Restore the default capacity for later tests.
        enable_tracing(Some(DEFAULT_RING_CAPACITY));
        disable_tracing();
        let _ = drain_trace();
    }

    #[test]
    fn exports_are_line_oriented_json() {
        let _g = crate::test_gate();
        enable_tracing(None);
        let _ = drain_trace();
        {
            let _a = crate::span!("test.export", note = "with \"quotes\"");
        }
        record_interval(
            "test.interval",
            String::new(),
            Instant::now(),
            Duration::from_micros(5),
        );
        disable_tracing();
        let trace = drain_trace();
        assert_eq!(trace.spans.len(), 2);

        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"ts_us\":"));
        }
        assert!(jsonl.contains("note=with \\\"quotes\\\""));

        let chrome = trace.to_chrome_trace();
        assert!(chrome.starts_with("[\n"));
        assert!(chrome.ends_with("]\n"));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"cat\":\"test\""));
        // One event per line: every interior line is an object.
        let lines: Vec<&str> = chrome.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('{'));
    }

    #[test]
    fn record_interval_respects_enable_flag() {
        let _g = crate::test_gate();
        disable_tracing();
        let _ = drain_trace();
        record_interval("test.gated", String::new(), Instant::now(), Duration::ZERO);
        assert_eq!(drain_trace().spans.len(), 0);
    }
}
