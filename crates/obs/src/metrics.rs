//! Process-wide metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are declared `static` at the instrumentation site:
//!
//! ```ignore
//! static TASKS: Counter = Counter::new("runtime.pool.tasks");
//! TASKS.add(1);
//! ```
//!
//! The first live operation on a handle registers its storage in the global
//! registry (allocating a leaked `&'static` entry); every later operation is
//! an atomic op on pre-existing storage. When metrics are disabled the
//! operation is a single relaxed load and an early return — the registry is
//! never touched, so unused instrumentation costs nothing.

use crate::{json_escape, metrics_enabled};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of counter shards. Power of two; eight lines covers the pool
/// widths the runtime uses without wasting cache on wider machines.
const SHARDS: usize = 8;

/// Histogram bucket count: bucket `k` holds values in `[2^(k-1), 2^k)`
/// (bucket 0 holds zero), so 64 buckets cover the full `u64` range.
const BUCKETS: usize = 64;

#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

struct ShardedCounter {
    shards: [PaddedAtomicU64; SHARDS],
}

impl ShardedCounter {
    fn new() -> Self {
        ShardedCounter {
            shards: std::array::from_fn(|_| PaddedAtomicU64(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

struct GaugeCell(AtomicI64);

struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSummary {
            count,
            sum,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(&buckets, count, 0.50),
            p99: quantile(&buckets, count, 0.99),
        }
    }
}

/// Bucket `k` holds values in `[2^(k-1), 2^k)`; zero lands in bucket 0.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Quantile estimate: walk the cumulative bucket counts and report the
/// upper bound of the bucket containing the target rank. Coarse (power of
/// two resolution) but deterministic and allocation-free to record.
fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * q).ceil() as u64;
    let mut seen = 0u64;
    for (k, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return bucket_upper_bound(k);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

fn bucket_upper_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Per-thread shard index, assigned round-robin at first use.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    })
}

enum Storage {
    Counter(&'static ShardedCounter),
    Gauge(&'static GaugeCell),
    Histogram(&'static HistogramCell),
}

struct Registry {
    entries: Vec<(&'static str, Storage)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry { entries: Vec::new() }))
}

fn register_counter(name: &'static str) -> &'static ShardedCounter {
    let mut reg = registry().lock().unwrap();
    for (n, s) in &reg.entries {
        if *n == name {
            if let Storage::Counter(c) = s {
                return c;
            }
            panic!("metric {name:?} registered with a different kind");
        }
    }
    let cell: &'static ShardedCounter = Box::leak(Box::new(ShardedCounter::new()));
    reg.entries.push((name, Storage::Counter(cell)));
    cell
}

fn register_gauge(name: &'static str) -> &'static GaugeCell {
    let mut reg = registry().lock().unwrap();
    for (n, s) in &reg.entries {
        if *n == name {
            if let Storage::Gauge(g) = s {
                return g;
            }
            panic!("metric {name:?} registered with a different kind");
        }
    }
    let cell: &'static GaugeCell = Box::leak(Box::new(GaugeCell(AtomicI64::new(0))));
    reg.entries.push((name, Storage::Gauge(cell)));
    cell
}

fn register_histogram(name: &'static str) -> &'static HistogramCell {
    let mut reg = registry().lock().unwrap();
    for (n, s) in &reg.entries {
        if *n == name {
            if let Storage::Histogram(h) = s {
                return h;
            }
            panic!("metric {name:?} registered with a different kind");
        }
    }
    let cell: &'static HistogramCell = Box::leak(Box::new(HistogramCell::new()));
    reg.entries.push((name, Storage::Histogram(cell)));
    cell
}

/// A monotonically increasing counter, sharded across threads.
pub struct Counter {
    name: &'static str,
    slot: OnceLock<&'static ShardedCounter>,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// A counter whose name is built at runtime (e.g. per event loop:
    /// `kbd.loop.3.wakeups`). The name is leaked — intended for a small,
    /// bounded set of long-lived instances, not per-request churn.
    pub fn new_owned(name: String) -> Self {
        Counter {
            name: Box::leak(name.into_boxed_str()),
            slot: OnceLock::new(),
        }
    }

    /// Increment by `n`. A single relaxed load when metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.slot.get_or_init(|| register_counter(self.name)).add(n);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 if never registered).
    pub fn value(&self) -> u64 {
        self.slot.get().map(|c| c.value()).unwrap_or_else(|| {
            // The handle may not have been touched while a different handle
            // (or a prior test) registered the same name.
            lookup_counter(self.name)
        })
    }
}

fn lookup_counter(name: &str) -> u64 {
    let reg = registry().lock().unwrap();
    for (n, s) in &reg.entries {
        if *n == name {
            if let Storage::Counter(c) = s {
                return c.value();
            }
        }
    }
    0
}

/// A last-value-wins signed gauge.
pub struct Gauge {
    name: &'static str,
    slot: OnceLock<&'static GaugeCell>,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if !metrics_enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_gauge(self.name))
            .0
            .store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if !metrics_enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_gauge(self.name))
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.slot
            .get()
            .map(|g| g.0.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A fixed-bucket (power of two) histogram of `u64` samples, typically
/// microsecond durations or byte counts.
pub struct Histogram {
    name: &'static str,
    slot: OnceLock<&'static HistogramCell>,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if !metrics_enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_histogram(self.name))
            .record(value);
    }

    /// Record a duration in whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn summary(&self) -> HistogramSummary {
        self.slot
            .get()
            .map(|h| h.summary())
            .unwrap_or_else(HistogramSummary::empty)
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub mean: f64,
    /// Upper bound of the bucket holding the median sample.
    pub p50: u64,
    /// Upper bound of the bucket holding the 99th-percentile sample.
    pub p99: u64,
}

impl HistogramSummary {
    pub fn empty() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            max: 0,
            mean: 0.0,
            p50: 0,
            p99: 0,
        }
    }
}

/// Deterministic (name-sorted) snapshot of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Human-readable listing, one metric per line, sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} = count {} / mean {:.1} / p50 {} / p99 {} / max {}\n",
                h.count, h.mean, h.p50, h.p99, h.max
            ));
        }
        out
    }

    /// Hand-rolled JSON object: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"max\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.mean,
                h.p50,
                h.p99,
                h.max
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Snapshot every registered metric, sorted by name within each kind.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, s) in &reg.entries {
        match s {
            Storage::Counter(c) => counters.push((name.to_string(), c.value())),
            Storage::Gauge(g) => gauges.push((name.to_string(), g.0.load(Ordering::Relaxed))),
            Storage::Histogram(h) => histograms.push((name.to_string(), h.summary())),
        }
    }
    counters.sort();
    gauges.sort();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zero every registered metric. Registration (names and storage) persists;
/// intended for tests and for per-process servers that report deltas.
pub fn reset_metrics() {
    let reg = registry().lock().unwrap();
    for (_, s) in &reg.entries {
        match s {
            Storage::Counter(c) => c.reset(),
            Storage::Gauge(g) => g.0.store(0, Ordering::Relaxed),
            Storage::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{disable_metrics, enable_metrics};

    #[test]
    fn counter_counts_only_when_enabled() {
        let _g = crate::test_gate();
        static C: Counter = Counter::new("test.metrics.counter_gate");
        disable_metrics();
        C.add(5);
        enable_metrics();
        let before = C.value();
        C.add(3);
        C.inc();
        assert_eq!(C.value(), before + 4);
        disable_metrics();
        C.add(100);
        assert_eq!(C.value(), before + 4);
    }

    #[test]
    fn owned_counter_behaves_like_a_static_one() {
        let _g = crate::test_gate();
        enable_metrics();
        // Runtime-built names — the per-event-loop pattern
        // (`kbd.loop.N.*`). Two handles with the same name must share
        // one underlying counter through the registry.
        let a = Counter::new_owned(format!("test.metrics.owned.{}", 7));
        let b = Counter::new_owned("test.metrics.owned.7".to_string());
        let before = a.value();
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), before + 5);
        assert_eq!(b.value(), before + 5);
        disable_metrics();
        a.inc();
        assert_eq!(a.value(), before + 5);
    }

    #[test]
    fn counter_sums_across_threads() {
        let _g = crate::test_gate();
        static C: Counter = Counter::new("test.metrics.threads");
        enable_metrics();
        let before = C.value();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.value(), before + 4000);
    }

    #[test]
    fn gauge_set_and_add() {
        let _g = crate::test_gate();
        static G: Gauge = Gauge::new("test.metrics.gauge");
        enable_metrics();
        G.set(7);
        assert_eq!(G.value(), 7);
        G.add(-3);
        assert_eq!(G.value(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = crate::test_gate();
        static H: Histogram = Histogram::new("test.metrics.hist");
        enable_metrics();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            H.record(v);
        }
        let s = H.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        assert_eq!(s.max, 1000);
        // p50 is the upper bound of the bucket holding the 3rd sample
        // (value 3, bucket [2,4) → upper bound 3).
        assert_eq!(s.p50, 3);
        // p99 lands in the bucket of the largest sample (1000 → [512,1024)).
        assert_eq!(s.p99, 1023);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let _g = crate::test_gate();
        static CZ: Counter = Counter::new("test.metrics.zzz");
        static CA: Counter = Counter::new("test.metrics.aaa");
        enable_metrics();
        CZ.inc();
        CA.inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"test.metrics.aaa\""));
    }
}
