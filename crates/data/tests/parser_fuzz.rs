//! Parser hardening: the CSV and ARFF readers must never panic — any input,
//! however mangled, yields `Ok(dataset)` or a structured parse error.

use proptest::prelude::*;
use smartml_data::io::{parse_arff, parse_csv};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn csv_never_panics_on_arbitrary_text(text in ".{0,400}") {
        let _ = parse_csv("fuzz", &text, None);
    }

    #[test]
    fn arff_never_panics_on_arbitrary_text(text in ".{0,400}") {
        let _ = parse_arff("fuzz", &text);
    }

    #[test]
    fn csv_never_panics_on_csvish_text(
        header in "[a-z]{1,5}(,[a-z]{1,5}){0,4}",
        body in "([0-9a-z?.,\\-]{0,30}\n){0,10}",
    ) {
        let text = format!("{header}\n{body}");
        let _ = parse_csv("fuzz", &text, None);
    }

    #[test]
    fn arff_never_panics_on_arffish_text(
        attrs in "(@attribute [a-z]{1,4} (numeric|\\{a,b\\})\n){1,5}",
        body in "([0-9ab?.,\\-]{0,20}\n){0,8}",
    ) {
        let text = format!("@relation fuzz\n{attrs}@data\n{body}");
        let _ = parse_arff("fuzz", &text);
    }

    /// Well-formed numeric CSV always parses with the right shape.
    #[test]
    fn wellformed_csv_roundtrip(
        rows in prop::collection::vec(
            (any::<i16>(), any::<i16>(), 0u8..3),
            2..30,
        ),
    ) {
        // Need at least one complete label set; build text.
        let mut text = String::from("a,b,y\n");
        for (a, b, y) in &rows {
            text.push_str(&format!("{a},{b},c{y}\n"));
        }
        let d = parse_csv("ok", &text, None).expect("well-formed CSV parses");
        prop_assert_eq!(d.n_rows(), rows.len());
        prop_assert_eq!(d.n_features(), 2);
        prop_assert!(d.n_classes() <= 3);
        prop_assert!(d.feature(0).is_numeric());
    }
}
