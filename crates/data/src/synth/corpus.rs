//! The evaluation corpus: analogues of the paper's 10 benchmark datasets
//! (Table 4) and the 50-dataset knowledge-base bootstrap corpus.
//!
//! Paper Table 4 datasets with their original shapes, and the scaled
//! synthetic analogue each maps to (`DESIGN.md`, substitution 1). Instance
//! and attribute counts are scaled down so the full 15-classifier × SMAC
//! sweep runs in CI time, preserving the attribute:instance regime
//! (wide-vs-tall) and class count of each original.

use super::generators::SynthSpec;
use crate::Dataset;

/// One benchmark dataset: the paper's original stats plus our analogue spec.
#[derive(Debug, Clone)]
pub struct BenchmarkDataset {
    /// Name as printed in paper Table 4.
    pub paper_name: &'static str,
    /// Original attribute count (paper Table 4, "# Att.").
    pub paper_atts: usize,
    /// Original class count.
    pub paper_classes: usize,
    /// Original instance count.
    pub paper_instances: usize,
    /// Auto-Weka accuracy reported in the paper (%).
    pub paper_autoweka_acc: f64,
    /// SmartML accuracy reported in the paper (%).
    pub paper_smartml_acc: f64,
    /// The synthetic analogue.
    pub spec: SynthSpec,
}

impl BenchmarkDataset {
    /// Generates the analogue dataset deterministically.
    pub fn generate(&self, seed: u64) -> Dataset {
        self.spec.generate(self.paper_name, seed)
    }
}

/// The 10 Table-4 benchmark datasets as synthetic analogues.
///
/// Analogue choices (original → generator):
/// - `abalone` (8 att, 2 cls, 8192): tall tabular with overlapping classes → imbalanced mixture, high overlap (paper accuracy ≈ 25-27% signals an extremely hard/ordinal-binned task; we keep "hard overlap" rather than its absolute error).
/// - `amazon` (10000 att, 49 cls): sparse bag-of-words, many classes → sparse counts.
/// - `cifar10small` (3072 att, 10 cls): low-SNR image pixels → prototype noise, snr 0.25.
/// - `gisette` (5000 att, 2 cls): high-dim digits 4-vs-9, strong signal → prototype noise, snr 1.2.
/// - `madelon` (500 att, 2 cls): XOR of 5 informative dims + 96% noise → xor parity.
/// - `mnist Basic` (784 att, 10 cls): digit prototypes, good SNR → prototype noise, snr 1.0.
/// - `semeion` (256 att, 10 cls): handwritten digits, smaller → prototype noise, snr 0.8.
/// - `yeast` (8 att, 10 cls): imbalanced overlapping biology classes → imbalanced mixture.
/// - `Occupancy` (5 att, 2 cls): sensor channels + drift → sensor drift.
/// - `kin8nm` (8 att, 2 cls): robot-arm kinematics, smooth nonlinear → kinematics.
pub fn benchmark_suite() -> Vec<BenchmarkDataset> {
    vec![
        BenchmarkDataset {
            paper_name: "abalone",
            paper_atts: 8,
            paper_classes: 2,
            paper_instances: 8192,
            paper_autoweka_acc: 25.14,
            paper_smartml_acc: 27.13,
            spec: SynthSpec::ImbalancedMixture { n: 600, d: 8, k: 2, overlap: 9.0 },
        },
        BenchmarkDataset {
            paper_name: "amazon",
            paper_atts: 10000,
            paper_classes: 49,
            paper_instances: 1500,
            paper_autoweka_acc: 57.56,
            paper_smartml_acc: 58.89,
            spec: SynthSpec::SparseCounts { n: 360, d: 80, k: 15, doc_len: 25 },
        },
        BenchmarkDataset {
            paper_name: "cifar10small",
            paper_atts: 3072,
            paper_classes: 10,
            paper_instances: 20000,
            paper_autoweka_acc: 30.25,
            paper_smartml_acc: 37.02,
            spec: SynthSpec::PrototypeNoise { n: 500, d: 48, k: 10, snr: 0.25 },
        },
        BenchmarkDataset {
            paper_name: "gisette",
            paper_atts: 5000,
            paper_classes: 2,
            paper_instances: 2800,
            paper_autoweka_acc: 93.71,
            paper_smartml_acc: 96.48,
            spec: SynthSpec::PrototypeNoise { n: 400, d: 40, k: 2, snr: 0.5 },
        },
        BenchmarkDataset {
            paper_name: "madelon",
            paper_atts: 500,
            paper_classes: 2,
            paper_instances: 2600,
            paper_autoweka_acc: 55.64,
            paper_smartml_acc: 73.84,
            spec: SynthSpec::XorParity { n: 500, informative: 3, noise: 12, flip: 0.02 },
        },
        BenchmarkDataset {
            paper_name: "mnist Basic",
            paper_atts: 784,
            paper_classes: 10,
            paper_instances: 62000,
            paper_autoweka_acc: 89.72,
            paper_smartml_acc: 94.91,
            spec: SynthSpec::PrototypeNoise { n: 600, d: 36, k: 10, snr: 0.55 },
        },
        BenchmarkDataset {
            paper_name: "semeion",
            paper_atts: 256,
            paper_classes: 10,
            paper_instances: 1593,
            paper_autoweka_acc: 89.32,
            paper_smartml_acc: 94.13,
            spec: SynthSpec::PrototypeNoise { n: 450, d: 32, k: 10, snr: 0.45 },
        },
        BenchmarkDataset {
            paper_name: "yeast",
            paper_atts: 8,
            paper_classes: 10,
            paper_instances: 1484,
            paper_autoweka_acc: 51.80,
            paper_smartml_acc: 66.23,
            spec: SynthSpec::ImbalancedMixture { n: 500, d: 8, k: 10, overlap: 2.6 },
        },
        BenchmarkDataset {
            paper_name: "Occupancy",
            paper_atts: 5,
            paper_classes: 2,
            paper_instances: 20560,
            paper_autoweka_acc: 93.99,
            paper_smartml_acc: 95.55,
            spec: SynthSpec::SensorDrift { n: 600, d: 5, drift: 1.3 },
        },
        BenchmarkDataset {
            paper_name: "kin8nm",
            paper_atts: 8,
            paper_classes: 2,
            paper_instances: 8192,
            paper_autoweka_acc: 93.99,
            paper_smartml_acc: 96.42,
            spec: SynthSpec::Kinematics { n: 600, d: 8, noise: 0.05 },
        },
    ]
}

/// The 50-dataset knowledge-base bootstrap corpus ("we have bootstrapped the
/// knowledge base of SmartML using 50 datasets from various sources").
///
/// Five families × ten parameter variations, spanning the same generator
/// space as the benchmark suite so that every benchmark dataset has genuine
/// near neighbours in meta-feature space — the property the paper's
/// experiment depends on.
pub fn kb_bootstrap_corpus() -> Vec<(String, SynthSpec)> {
    let mut corpus: Vec<(String, SynthSpec)> = Vec::with_capacity(50);
    // Family 1: Gaussian blobs — varying dimension, classes, separation.
    for (i, (d, k, spread)) in [
        (4usize, 2usize, 0.5f64),
        (8, 2, 1.0),
        (4, 3, 1.5),
        (16, 4, 1.0),
        (6, 5, 2.0),
        (10, 3, 0.8),
        (20, 2, 2.5),
        (5, 2, 3.0),
        (12, 6, 1.2),
        (3, 2, 0.3),
    ]
    .iter()
    .enumerate()
    {
        corpus.push((
            format!("kb-blobs-{i}"),
            SynthSpec::Blobs { n: 240 + 20 * i, d: *d, k: *k, spread: *spread },
        ));
    }
    // Family 2: XOR parity — madelon neighbourhood.
    for (i, (inf, noise, flip)) in [
        (2usize, 4usize, 0.0f64),
        (2, 10, 0.02),
        (3, 12, 0.02),
        (4, 20, 0.02),
        (3, 30, 0.05),
        (4, 40, 0.05),
        (2, 20, 0.1),
        (5, 25, 0.02),
        (3, 6, 0.0),
        (4, 30, 0.08),
    ]
    .iter()
    .enumerate()
    {
        corpus.push((
            format!("kb-xor-{i}"),
            SynthSpec::XorParity { n: 300 + 15 * i, informative: *inf, noise: *noise, flip: *flip },
        ));
    }
    // Family 3: prototype noise — image neighbourhood (mnist/semeion/cifar/gisette).
    for (i, (d, k, snr)) in [
        (24usize, 10usize, 1.0f64),
        (32, 10, 0.7),
        (48, 10, 0.3),
        (40, 2, 1.3),
        (36, 5, 0.9),
        (28, 10, 1.2),
        (60, 8, 0.4),
        (20, 4, 1.5),
        (44, 10, 0.2),
        (30, 2, 0.9),
    ]
    .iter()
    .enumerate()
    {
        corpus.push((
            format!("kb-proto-{i}"),
            SynthSpec::PrototypeNoise { n: 300 + 20 * i, d: *d, k: *k, snr: *snr },
        ));
    }
    // Family 4: sparse counts + categorical mixtures — text/tabular mixed.
    for (i, spec) in [
        SynthSpec::SparseCounts { n: 240, d: 60, k: 6, doc_len: 40 },
        SynthSpec::SparseCounts { n: 300, d: 100, k: 10, doc_len: 60 },
        SynthSpec::SparseCounts { n: 260, d: 50, k: 4, doc_len: 30 },
        SynthSpec::SparseCounts { n: 320, d: 80, k: 12, doc_len: 80 },
        SynthSpec::SparseCounts { n: 280, d: 70, k: 8, doc_len: 50 },
        SynthSpec::CategoricalMixture { n: 260, d_cat: 4, d_num: 3, k: 3, cardinality: 4 },
        SynthSpec::CategoricalMixture { n: 300, d_cat: 6, d_num: 2, k: 4, cardinality: 3 },
        SynthSpec::CategoricalMixture { n: 240, d_cat: 3, d_num: 5, k: 2, cardinality: 5 },
        SynthSpec::CategoricalMixture { n: 320, d_cat: 8, d_num: 0, k: 5, cardinality: 4 },
        SynthSpec::CategoricalMixture { n: 280, d_cat: 5, d_num: 4, k: 3, cardinality: 6 },
    ]
    .into_iter()
    .enumerate()
    {
        corpus.push((format!("kb-mixed-{i}"), spec));
    }
    // Family 5: nonlinear + imbalanced + sensor — tabular regime.
    for (i, spec) in [
        SynthSpec::Kinematics { n: 320, d: 8, noise: 0.1 },
        SynthSpec::Kinematics { n: 280, d: 8, noise: 0.4 },
        SynthSpec::Kinematics { n: 300, d: 6, noise: 0.2 },
        SynthSpec::ImbalancedMixture { n: 320, d: 8, k: 10, overlap: 1.2 },
        SynthSpec::ImbalancedMixture { n: 300, d: 6, k: 8, overlap: 1.8 },
        SynthSpec::ImbalancedMixture { n: 340, d: 8, k: 2, overlap: 3.5 },
        SynthSpec::SensorDrift { n: 320, d: 5, drift: 0.4 },
        SynthSpec::SensorDrift { n: 280, d: 5, drift: 0.9 },
        SynthSpec::TwoSpirals { n: 300, noise: 0.15 },
        SynthSpec::TwoSpirals { n: 260, noise: 0.35 },
    ]
    .into_iter()
    .enumerate()
    {
        corpus.push((format!("kb-tabular-{i}"), spec));
    }
    debug_assert_eq!(corpus.len(), 50);
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_table4() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 10);
        let names: Vec<&str> = suite.iter().map(|b| b.paper_name).collect();
        assert_eq!(
            names,
            vec![
                "abalone", "amazon", "cifar10small", "gisette", "madelon", "mnist Basic",
                "semeion", "yeast", "Occupancy", "kin8nm"
            ]
        );
        // Paper's headline claim: SmartML beats Auto-Weka on every row.
        for b in &suite {
            assert!(b.paper_smartml_acc > b.paper_autoweka_acc, "{}", b.paper_name);
        }
    }

    #[test]
    fn suite_generates_with_declared_classes() {
        for b in benchmark_suite() {
            let d = b.generate(42);
            assert_eq!(d.n_classes(), b.spec.n_classes(), "{}", b.paper_name);
            assert!(d.n_rows() >= 300, "{} too small", b.paper_name);
            // Every class must actually appear.
            assert!(
                d.class_counts().iter().all(|&c| c > 0),
                "{} missing a class: {:?}",
                b.paper_name,
                d.class_counts()
            );
        }
    }

    #[test]
    fn corpus_has_50_unique_names() {
        let corpus = kb_bootstrap_corpus();
        assert_eq!(corpus.len(), 50);
        let mut names: Vec<&String> = corpus.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn corpus_datasets_generate() {
        // Spot-check one from each family.
        let corpus = kb_bootstrap_corpus();
        for idx in [0usize, 10, 20, 30, 40, 49] {
            let (name, spec) = &corpus[idx];
            let d = spec.generate(name, 7);
            assert!(d.n_rows() >= 200, "{name}");
            assert!(d.n_classes() >= 2, "{name}");
        }
    }
}
