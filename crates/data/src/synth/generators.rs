//! Generator primitives for synthetic classification datasets.
//!
//! Each generator covers a different *difficulty profile* so that the
//! meta-learning knowledge base has genuinely distinct regions: linear
//! ellipsoidal mixtures (LDA/SVM territory), XOR parity with overwhelming
//! noise features (tree/boosting territory), high-dimensional low-SNR
//! prototypes (regularised/nearest-neighbour territory), sparse count data
//! (naive-Bayes territory), smooth nonlinear response surfaces (kernel/MLP
//! territory), and heavily imbalanced overlapping mixtures.

use crate::dataset::{Dataset, Feature};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-specified synthetic dataset: generator family plus parameters.
///
/// This is the unit the KB bootstrap corpus and the benchmark suite are
/// described in; [`SynthSpec::generate`] is deterministic given the seed.
/// Serialisable so job-service submissions can carry an inline spec
/// instead of shipping dataset bytes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SynthSpec {
    /// Gaussian class blobs; `spread` ≥ 1 means increasing overlap.
    Blobs { n: usize, d: usize, k: usize, spread: f64 },
    /// Parity (XOR) of `informative` binary-ish dims buried in `noise` noise dims.
    XorParity { n: usize, informative: usize, noise: usize, flip: f64 },
    /// Class prototypes in `d` dims observed at signal-to-noise ratio `snr`.
    PrototypeNoise { n: usize, d: usize, k: usize, snr: f64 },
    /// Sparse multinomial count features from per-class topic distributions.
    SparseCounts { n: usize, d: usize, k: usize, doc_len: usize },
    /// Smooth nonlinear function of `d` inputs thresholded into 2 classes.
    Kinematics { n: usize, d: usize, noise: f64 },
    /// Imbalanced overlapping mixture with a geometric class-size decay.
    ImbalancedMixture { n: usize, d: usize, k: usize, overlap: f64 },
    /// Near-separable low-dimensional sensor data with drift noise.
    SensorDrift { n: usize, d: usize, drift: f64 },
    /// Two interleaved spirals (binary, 2-D) — classic nonlinear benchmark.
    TwoSpirals { n: usize, noise: f64 },
    /// Mixed categorical + numeric columns with class-dependent level odds.
    CategoricalMixture { n: usize, d_cat: usize, d_num: usize, k: usize, cardinality: usize },
}

impl SynthSpec {
    /// Generates the dataset. Same spec + seed → identical dataset.
    pub fn generate(&self, name: &str, seed: u64) -> Dataset {
        match *self {
            SynthSpec::Blobs { n, d, k, spread } => gaussian_blobs(name, n, d, k, spread, seed),
            SynthSpec::XorParity { n, informative, noise, flip } => {
                xor_parity(name, n, informative, noise, flip, seed)
            }
            SynthSpec::PrototypeNoise { n, d, k, snr } => prototype_noise(name, n, d, k, snr, seed),
            SynthSpec::SparseCounts { n, d, k, doc_len } => {
                sparse_counts(name, n, d, k, doc_len, seed)
            }
            SynthSpec::Kinematics { n, d, noise } => kinematics(name, n, d, noise, seed),
            SynthSpec::ImbalancedMixture { n, d, k, overlap } => {
                imbalanced_mixture(name, n, d, k, overlap, seed)
            }
            SynthSpec::SensorDrift { n, d, drift } => sensor_drift(name, n, d, drift, seed),
            SynthSpec::TwoSpirals { n, noise } => two_spirals(name, n, noise, seed),
            SynthSpec::CategoricalMixture { n, d_cat, d_num, k, cardinality } => {
                categorical_mixture(name, n, d_cat, d_num, k, cardinality, seed)
            }
        }
    }

    /// Row count the spec will generate.
    pub fn rows(&self) -> usize {
        match *self {
            SynthSpec::Blobs { n, .. }
            | SynthSpec::XorParity { n, .. }
            | SynthSpec::PrototypeNoise { n, .. }
            | SynthSpec::SparseCounts { n, .. }
            | SynthSpec::Kinematics { n, .. }
            | SynthSpec::ImbalancedMixture { n, .. }
            | SynthSpec::SensorDrift { n, .. }
            | SynthSpec::TwoSpirals { n, .. }
            | SynthSpec::CategoricalMixture { n, .. } => n,
        }
    }

    /// The same spec with its row count replaced — the `--rows` knob the
    /// CLI `synth` command and job-service submissions share, so corpus
    /// specs scale to n≈10⁵ without restating their other parameters.
    pub fn with_rows(mut self, rows: usize) -> SynthSpec {
        match &mut self {
            SynthSpec::Blobs { n, .. }
            | SynthSpec::XorParity { n, .. }
            | SynthSpec::PrototypeNoise { n, .. }
            | SynthSpec::SparseCounts { n, .. }
            | SynthSpec::Kinematics { n, .. }
            | SynthSpec::ImbalancedMixture { n, .. }
            | SynthSpec::SensorDrift { n, .. }
            | SynthSpec::TwoSpirals { n, .. }
            | SynthSpec::CategoricalMixture { n, .. } => *n = rows,
        }
        self
    }

    /// Number of classes the generated dataset will have.
    pub fn n_classes(&self) -> usize {
        match *self {
            SynthSpec::Blobs { k, .. }
            | SynthSpec::PrototypeNoise { k, .. }
            | SynthSpec::SparseCounts { k, .. }
            | SynthSpec::ImbalancedMixture { k, .. }
            | SynthSpec::CategoricalMixture { k, .. } => k,
            _ => 2,
        }
    }
}

/// Standard normal sample via Box-Muller (avoids a rand_distr dependency).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn numeric_features(cols: Vec<Vec<f64>>) -> Vec<Feature> {
    cols.into_iter()
        .enumerate()
        .map(|(i, values)| Feature::Numeric { name: format!("f{i}"), values })
        .collect()
}

fn class_names(k: usize) -> Vec<String> {
    (0..k).map(|c| format!("class{c}")).collect()
}

fn build(name: &str, cols: Vec<Vec<f64>>, labels: Vec<u32>, k: usize) -> Dataset {
    Dataset::new(name, numeric_features(cols), labels, class_names(k))
        .expect("generator produced consistent columns")
}

/// The deterministic row permutation every generator applies. Generators
/// emit rows in class round-robin order; shuffling makes any contiguous
/// or strided subset class-mixed, like real data. Drawn from its own
/// seeded stream, independent of the value-generation RNG.
fn shuffle_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AFE_5EED);
    use rand::seq::SliceRandom;
    perm.shuffle(&mut rng);
    perm
}

/// Applies `perm` to one column in place (`v[i] <- v[perm[i]]`) through a
/// caller-owned column-sized scratch buffer. At n≈10⁵+ rows this is what
/// keeps generation at one resident matrix: the old path built the full
/// dataset and then copied every column again via `Dataset::subset`,
/// doubling peak memory at exactly the scale the job service feeds in.
fn permute_in_place<T: Copy + Default>(v: &mut [T], perm: &[usize], scratch: &mut Vec<T>) {
    scratch.clear();
    scratch.extend(perm.iter().map(|&p| v[p]));
    v.copy_from_slice(scratch);
}

/// Shuffles numeric columns + labels in place (byte-identical to the old
/// build-then-`subset` path, which drew the same permutation) and builds
/// the dataset without a second matrix-sized allocation.
fn shuffled_build(name: &str, mut cols: Vec<Vec<f64>>, mut labels: Vec<u32>, k: usize, seed: u64) -> Dataset {
    let perm = shuffle_perm(labels.len(), seed);
    let mut scratch = Vec::with_capacity(labels.len());
    for col in &mut cols {
        permute_in_place(col, &perm, &mut scratch);
    }
    let mut lscratch = Vec::with_capacity(labels.len());
    permute_in_place(&mut labels, &perm, &mut lscratch);
    build(name, cols, labels, k)
}

/// Gaussian blobs: `k` class centroids on a scaled simplex, unit-variance
/// clouds. `spread` < 1 ⇒ nearly separable; larger ⇒ increasing Bayes error.
pub fn gaussian_blobs(name: &str, n: usize, d: usize, k: usize, spread: f64, seed: u64) -> Dataset {
    assert!(k >= 2 && d >= 1 && n >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| normal(&mut rng) * 3.0).collect())
        .collect();
    // Enforce a minimum pairwise center distance of 2.0 so `spread` (not an
    // unlucky center draw) controls the class overlap: rescale the whole
    // center constellation if the closest pair is too close.
    let mut min_dist = f64::INFINITY;
    for i in 0..k {
        for j in (i + 1)..k {
            let dist: f64 = centers[i]
                .iter()
                .zip(&centers[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            min_dist = min_dist.min(dist);
        }
    }
    if min_dist < 2.0 {
        let scale = if min_dist > 1e-9 { 2.0 / min_dist } else { 2.0 };
        for c in &mut centers {
            for v in c.iter_mut() {
                *v *= scale;
                // Fully degenerate draw: nudge apart deterministically.
                if min_dist <= 1e-9 {
                    *v += normal(&mut rng);
                }
            }
        }
    }
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c as u32);
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(centers[c][j] + normal(&mut rng) * spread);
        }
    }
    shuffled_build(name, cols, labels, k, seed)
}

/// XOR parity: the label is the parity of the signs of `informative`
/// latent dimensions; `noise` pure-noise features are appended and `flip`
/// fraction of labels is corrupted. A madelon-style problem: linear models
/// sit at chance, tree ensembles and boosting can solve it.
pub fn xor_parity(
    name: &str,
    n: usize,
    informative: usize,
    noise: usize,
    flip: f64,
    seed: u64,
) -> Dataset {
    assert!(informative >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = informative + noise;
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut parity = 0u32;
        for (j, col) in cols.iter_mut().enumerate() {
            if j < informative {
                // Bimodal informative dimension: cluster at ±2 with jitter.
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                if sign > 0.0 {
                    parity ^= 1;
                }
                col.push(sign * 2.0 + normal(&mut rng) * 0.6);
            } else {
                col.push(normal(&mut rng) * 2.0);
            }
        }
        let label = if rng.gen_bool(flip) { 1 - parity } else { parity };
        labels.push(label);
    }
    shuffled_build(name, cols, labels, 2, seed)
}

/// Prototype-plus-noise: each class has a fixed prototype vector; instances
/// are the prototype scaled by `snr` plus unit Gaussian noise. Models image
/// digit/object datasets (mnist/semeion/cifar analogues): high-dimensional,
/// every pixel weakly informative.
pub fn prototype_noise(name: &str, n: usize, d: usize, k: usize, snr: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| normal(&mut rng)).collect())
        .collect();
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        labels.push(c as u32);
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(prototypes[c][j] * snr + normal(&mut rng));
        }
    }
    shuffled_build(name, cols, labels, k, seed)
}

/// Sparse multinomial counts: per-class topic distribution over `d` symbols,
/// each row is `doc_len` draws. Bag-of-words analogue (amazon reviews):
/// most cells zero, class signal in relative frequencies.
pub fn sparse_counts(name: &str, n: usize, d: usize, k: usize, doc_len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-class Zipf-ish topic weights over a class-specific symbol ordering.
    let topics: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            let mut order: Vec<usize> = (0..d).collect();
            for i in (1..d).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut w = vec![0.0; d];
            for (rank, &sym) in order.iter().enumerate() {
                w[sym] = 1.0 / (rank + 1) as f64;
            }
            let z: f64 = w.iter().sum();
            w.iter().map(|x| x / z).collect()
        })
        .collect();
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    let mut counts = vec![0.0; d];
    for i in 0..n {
        let c = i % k;
        labels.push(c as u32);
        counts.fill(0.0);
        for _ in 0..doc_len {
            // Inverse-CDF multinomial draw.
            let mut u: f64 = rng.gen();
            let mut sym = d - 1;
            for (s, &w) in topics[c].iter().enumerate() {
                if u < w {
                    sym = s;
                    break;
                }
                u -= w;
            }
            counts[sym] += 1.0;
        }
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(counts[j]);
        }
    }
    shuffled_build(name, cols, labels, k, seed)
}

/// Kinematics analogue (kin8nm): label = whether a smooth trigonometric
/// function of the `d` joint angles exceeds its median, plus observation
/// noise. Smooth nonlinear boundary — kernel methods and MLPs shine.
pub fn kinematics(name: &str, n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut response = Vec::with_capacity(n);
    let mut angles = vec![0.0f64; d];
    for _ in 0..n {
        for a in angles.iter_mut() {
            *a = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        }
        // Forward-kinematics-style chained sum of sines of cumulative angles.
        let mut cum = 0.0;
        let mut y = 0.0;
        for &a in &angles {
            cum += a;
            y += cum.sin();
        }
        y += normal(&mut rng) * noise;
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(angles[j]);
        }
        response.push(y);
    }
    let median = smartml_linalg::vecops::median(&response);
    let labels: Vec<u32> = response.iter().map(|&y| u32::from(y > median)).collect();
    shuffled_build(name, cols, labels, 2, seed)
}

/// Imbalanced overlapping Gaussian mixture: class `c` has relative size
/// `0.6^c` (geometric decay) and centroids drawn close together (`overlap`
/// controls proximity). Yeast/abalone analogue: many classes, heavy
/// imbalance, irreducible overlap.
pub fn imbalanced_mixture(name: &str, n: usize, d: usize, k: usize, overlap: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| normal(&mut rng) * (2.0 / overlap.max(0.1))).collect())
        .collect();
    // Geometric class weights.
    let weights: Vec<f64> = (0..k).map(|c| 0.6f64.powi(c as i32)).collect();
    let z: f64 = weights.iter().sum();
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    // Guarantee at least 2 rows of every class, then sample the rest.
    for c in 0..k {
        for _ in 0..2 {
            labels.push(c as u32);
            for (j, col) in cols.iter_mut().enumerate() {
                col.push(centers[c][j] + normal(&mut rng));
            }
        }
    }
    while labels.len() < n {
        let mut u: f64 = rng.gen::<f64>() * z;
        let mut c = k - 1;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                c = i;
                break;
            }
            u -= w;
        }
        labels.push(c as u32);
        for (j, col) in cols.iter_mut().enumerate() {
            col.push(centers[c][j] + normal(&mut rng));
        }
    }
    shuffled_build(name, cols, labels, k, seed)
}

/// Occupancy analogue: `d` correlated sensor channels, two regimes that are
/// nearly linearly separable, plus slow sinusoidal drift that a robust model
/// must ignore.
pub fn sensor_drift(name: &str, n: usize, d: usize, drift: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = vec![Vec::with_capacity(n); d];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let occupied = rng.gen_bool(0.35);
        labels.push(u32::from(occupied));
        let t = i as f64 / n as f64;
        let base = if occupied { 1.5 } else { -1.5 };
        let shared = normal(&mut rng) * 0.5; // common-mode sensor noise
        for (j, col) in cols.iter_mut().enumerate() {
            let phase = (j + 1) as f64;
            let drift_term = drift * (t * std::f64::consts::TAU * phase).sin();
            col.push(base * (1.0 - 0.1 * j as f64) + shared + drift_term + normal(&mut rng) * 0.4);
        }
    }
    shuffled_build(name, cols, labels, 2, seed)
}

/// Two interleaved spirals in 2-D with Gaussian jitter.
pub fn two_spirals(name: &str, n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t = 0.5 + 3.0 * (i as f64 / n as f64) * std::f64::consts::PI;
        let r = t;
        let angle = t + class as f64 * std::f64::consts::PI;
        x.push(r * angle.cos() + normal(&mut rng) * noise);
        y.push(r * angle.sin() + normal(&mut rng) * noise);
        labels.push(class as u32);
    }
    shuffled_build(name, vec![x, y], labels, 2, seed)
}

/// Mixed-type dataset: `d_cat` categorical columns whose level odds depend on
/// the class, plus `d_num` numeric columns with shifted means. Exercises the
/// categorical handling of trees and naive Bayes and the one-hot path of
/// numeric-only models.
pub fn categorical_mixture(
    name: &str,
    n: usize,
    d_cat: usize,
    d_num: usize,
    k: usize,
    cardinality: usize,
    seed: u64,
) -> Dataset {
    assert!(cardinality >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        labels.push((i % k) as u32);
    }
    let mut features = Vec::with_capacity(d_cat + d_num);
    for j in 0..d_cat {
        let levels: Vec<String> = (0..cardinality).map(|l| format!("v{l}")).collect();
        let codes: Vec<u32> = labels
            .iter()
            .map(|&c| {
                // Each class prefers level (c + j) mod cardinality with prob 0.6.
                if rng.gen_bool(0.6) {
                    ((c as usize + j) % cardinality) as u32
                } else {
                    rng.gen_range(0..cardinality) as u32
                }
            })
            .collect();
        features.push(Feature::Categorical { name: format!("cat{j}"), codes, levels });
    }
    for j in 0..d_num {
        let values: Vec<f64> = labels
            .iter()
            .map(|&c| c as f64 * 0.8 + normal(&mut rng))
            .collect();
        features.push(Feature::Numeric { name: format!("num{j}"), values });
    }
    let perm = shuffle_perm(labels.len(), seed);
    let mut fscratch: Vec<f64> = Vec::with_capacity(labels.len());
    let mut cscratch: Vec<u32> = Vec::with_capacity(labels.len());
    for feature in &mut features {
        match feature {
            Feature::Numeric { values, .. } => permute_in_place(values, &perm, &mut fscratch),
            Feature::Categorical { codes, .. } => permute_in_place(codes, &perm, &mut cscratch),
        }
    }
    permute_in_place(&mut labels, &perm, &mut cscratch);
    Dataset::new(name, features, labels, class_names(k)).expect("consistent columns")
}

// `Distribution` is pulled in so callers can plug rand distributions in
// without re-importing; silence the unused warning when they don't.
#[allow(unused)]
fn _assert_distribution_usable<D: Distribution<f64>>(_: D) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn blobs_shape_and_determinism() {
        let d1 = gaussian_blobs("b", 60, 4, 3, 0.5, 9);
        assert_eq!(d1.n_rows(), 60);
        assert_eq!(d1.n_features(), 4);
        assert_eq!(d1.n_classes(), 3);
        let d2 = gaussian_blobs("b", 60, 4, 3, 0.5, 9);
        match (d1.feature(0), d2.feature(0)) {
            (Feature::Numeric { values: v1, .. }, Feature::Numeric { values: v2, .. }) => {
                assert_eq!(v1, v2);
            }
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn blobs_different_seeds_differ() {
        let d1 = gaussian_blobs("b", 20, 2, 2, 0.5, 1);
        let d2 = gaussian_blobs("b", 20, 2, 2, 0.5, 2);
        match (d1.feature(0), d2.feature(0)) {
            (Feature::Numeric { values: v1, .. }, Feature::Numeric { values: v2, .. }) => {
                assert_ne!(v1, v2);
            }
            _ => panic!(),
        }
    }

    /// Nearest-centroid on separable blobs should be near-perfect — sanity
    /// check that the class signal actually exists.
    #[test]
    fn blobs_are_learnable() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.4, 5);
        let rows = d.all_rows();
        let (m, _) = d.to_numeric_matrix(&rows);
        // Compute class centroids on first half, classify second half.
        let half = 100;
        let mut centroids = vec![vec![0.0; 3]; 2];
        let mut counts = [0usize; 2];
        for r in 0..half {
            let c = d.label(r) as usize;
            counts[c] += 1;
            for j in 0..3 {
                centroids[c][j] += m[(r, j)];
            }
        }
        for c in 0..2 {
            for j in 0..3 {
                centroids[c][j] /= counts[c] as f64;
            }
        }
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for r in half..200 {
            let row: Vec<f64> = (0..3).map(|j| m[(r, j)]).collect();
            let d0 = smartml_linalg::vecops::euclidean_distance(&row, &centroids[0]);
            let d1 = smartml_linalg::vecops::euclidean_distance(&row, &centroids[1]);
            pred.push(u32::from(d1 < d0));
            truth.push(d.label(r));
        }
        assert!(accuracy(&truth, &pred) > 0.95);
    }

    #[test]
    fn xor_parity_balanced_and_shaped() {
        let d = xor_parity("x", 400, 3, 10, 0.02, 7);
        assert_eq!(d.n_features(), 13);
        assert_eq!(d.n_classes(), 2);
        let counts = d.class_counts();
        // Parity of fair coin flips is balanced in expectation.
        assert!(counts[0] > 120 && counts[1] > 120, "{counts:?}");
    }

    #[test]
    fn sparse_counts_mostly_zero() {
        let d = sparse_counts("s", 50, 100, 3, 30, 3);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for f in d.features() {
            if let Feature::Numeric { values, .. } = f {
                zeros += values.iter().filter(|&&v| v == 0.0).count();
                total += values.len();
            }
        }
        assert!(zeros as f64 / total as f64 > 0.5, "sparsity {}", zeros as f64 / total as f64);
    }

    #[test]
    fn kinematics_is_balanced_by_median_split() {
        let d = kinematics("k", 201, 8, 0.1, 11);
        let counts = d.class_counts();
        assert!((counts[0] as i64 - counts[1] as i64).abs() <= 1, "{counts:?}");
    }

    #[test]
    fn imbalanced_mixture_has_all_classes_and_decay() {
        let d = imbalanced_mixture("i", 500, 6, 8, 1.0, 13);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c >= 2), "{counts:?}");
        assert!(counts[0] > counts[7], "{counts:?}");
    }

    #[test]
    fn sensor_drift_shape() {
        let d = sensor_drift("o", 300, 5, 0.5, 17);
        assert_eq!(d.n_features(), 5);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn two_spirals_shape() {
        let d = two_spirals("sp", 200, 0.1, 19);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class_counts(), vec![100, 100]);
    }

    #[test]
    fn categorical_mixture_types() {
        let d = categorical_mixture("c", 120, 3, 2, 4, 5, 23);
        assert_eq!(d.categorical_feature_indices().len(), 3);
        assert_eq!(d.numeric_feature_indices().len(), 2);
        assert_eq!(d.n_classes(), 4);
    }

    #[test]
    fn generation_scales_to_1e5_rows() {
        // The job-service workload scale: 10⁵ rows generate chunk-free
        // (one resident matrix, column scratch only) and stay shaped,
        // shuffled and deterministic.
        let d1 = gaussian_blobs("big", 100_000, 8, 4, 0.8, 31);
        assert_eq!(d1.n_rows(), 100_000);
        assert_eq!(d1.n_features(), 8);
        // Class round-robin order was shuffled away: the first 100 rows
        // mix classes rather than cycling 0,1,2,3.
        let head: Vec<u32> = (0..100).map(|r| d1.label(r)).collect();
        assert!(head.windows(4).any(|w| w != [0, 1, 2, 3]));
        let d2 = gaussian_blobs("big", 100_000, 8, 4, 0.8, 31);
        match (d1.feature(3), d2.feature(3)) {
            (Feature::Numeric { values: v1, .. }, Feature::Numeric { values: v2, .. }) => {
                assert_eq!(v1, v2);
            }
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = SynthSpec::SparseCounts { n: 1000, d: 50, k: 3, doc_len: 40 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SynthSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_generate_dispatch() {
        let spec = SynthSpec::Blobs { n: 30, d: 2, k: 2, spread: 0.5 };
        let d = spec.generate("via-spec", 1);
        assert_eq!(d.name, "via-spec");
        assert_eq!(d.n_rows(), 30);
        assert_eq!(spec.n_classes(), 2);
    }
}
