//! Synthetic dataset generation.
//!
//! The paper evaluates on 10 OpenML/UCI/Kaggle datasets and bootstraps its
//! knowledge base with 50 more. Neither corpus is available offline, so this
//! module provides deterministic generators that reproduce each evaluation
//! dataset's *shape* (attribute count, class count, instance count — scaled
//! down where the original is large) and *difficulty profile* (which
//! algorithm families do well on it). See `DESIGN.md`, substitution 1.
//!
//! Everything is seeded: the same [`SynthSpec`] and seed always produce the
//! same dataset.

mod corpus;
mod generators;

pub use corpus::{benchmark_suite, kb_bootstrap_corpus, BenchmarkDataset};
pub use generators::{
    categorical_mixture, gaussian_blobs, imbalanced_mixture, kinematics, prototype_noise,
    sensor_drift, sparse_counts, two_spirals, xor_parity, SynthSpec,
};
