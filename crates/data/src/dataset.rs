//! Columnar dataset representation.
//!
//! A [`Dataset`] stores features column-wise — numeric columns as `Vec<f64>`
//! (NaN marks a missing value) and categorical columns as integer codes with
//! a level table (`MISSING_CODE` marks a missing value). Labels are dense
//! class codes `0..n_classes`. Row subsets (train/validation splits, CV
//! folds) are expressed as index slices so splits never copy feature data.

use smartml_linalg::Matrix;

/// Sentinel code for a missing categorical value.
pub const MISSING_CODE: u32 = u32::MAX;

/// A single feature column.
#[derive(Debug, Clone, PartialEq)]
pub enum Feature {
    /// Numeric column; `NaN` encodes a missing value.
    Numeric { name: String, values: Vec<f64> },
    /// Categorical column as dense codes into `levels`;
    /// [`MISSING_CODE`] encodes a missing value.
    Categorical { name: String, codes: Vec<u32>, levels: Vec<String> },
}

impl Feature {
    /// Column name.
    pub fn name(&self) -> &str {
        match self {
            Feature::Numeric { name, .. } | Feature::Categorical { name, .. } => name,
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Feature::Numeric { values, .. } => values.len(),
            Feature::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Feature::Numeric { .. })
    }

    /// Number of missing entries.
    pub fn missing_count(&self) -> usize {
        match self {
            Feature::Numeric { values, .. } => values.iter().filter(|v| v.is_nan()).count(),
            Feature::Categorical { codes, .. } => {
                codes.iter().filter(|&&c| c == MISSING_CODE).count()
            }
        }
    }
}

/// Errors constructing or validating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A feature column's length differs from the label column's.
    LengthMismatch { feature: String, expected: usize, got: usize },
    /// A label code is out of range for the declared class list.
    LabelOutOfRange { row: usize, label: u32, n_classes: usize },
    /// The dataset has no rows.
    Empty,
    /// A parse failure with location context (used by the CSV/ARFF readers).
    Parse(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::LengthMismatch { feature, expected, got } => {
                write!(f, "feature '{feature}' has {got} rows, expected {expected}")
            }
            DatasetError::LabelOutOfRange { row, label, n_classes } => {
                write!(f, "row {row}: label {label} out of range for {n_classes} classes")
            }
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled classification dataset with columnar feature storage.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (file stem or generator id).
    pub name: String,
    features: Vec<Feature>,
    labels: Vec<u32>,
    class_names: Vec<String>,
}

impl Dataset {
    /// Builds and validates a dataset.
    pub fn new(
        name: impl Into<String>,
        features: Vec<Feature>,
        labels: Vec<u32>,
        class_names: Vec<String>,
    ) -> Result<Self, DatasetError> {
        if labels.is_empty() {
            return Err(DatasetError::Empty);
        }
        for feat in &features {
            if feat.len() != labels.len() {
                return Err(DatasetError::LengthMismatch {
                    feature: feat.name().to_string(),
                    expected: labels.len(),
                    got: feat.len(),
                });
            }
        }
        let n_classes = class_names.len();
        for (row, &label) in labels.iter().enumerate() {
            if label as usize >= n_classes {
                return Err(DatasetError::LabelOutOfRange { row, label, n_classes });
            }
        }
        Ok(Dataset { name: name.into(), features, labels, class_names })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Borrow the feature columns.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Borrow one feature column.
    pub fn feature(&self, idx: usize) -> &Feature {
        &self.features[idx]
    }

    /// Borrow the label column.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Label of one row.
    pub fn label(&self, row: usize) -> u32 {
        self.labels[row]
    }

    /// Borrow the class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Per-class counts restricted to a row subset.
    pub fn class_counts_for(&self, rows: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &r in rows {
            counts[self.labels[r] as usize] += 1;
        }
        counts
    }

    /// Total missing cells across all feature columns.
    pub fn missing_cells(&self) -> usize {
        self.features.iter().map(Feature::missing_count).sum()
    }

    /// Indices of numeric feature columns.
    pub fn numeric_feature_indices(&self) -> Vec<usize> {
        self.features
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of categorical feature columns.
    pub fn categorical_feature_indices(&self) -> Vec<usize> {
        self.features
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Dense numeric representation of a row subset.
    ///
    /// Numeric columns pass through (missing → column mean over the subset,
    /// 0.0 if entirely missing); categorical columns are one-hot encoded
    /// (missing → all-zero block). Returns the matrix and per-output-column
    /// names. This is what numeric-only classifiers (SVM, LDA, the MLP, …)
    /// consume after preprocessing.
    pub fn to_numeric_matrix(&self, rows: &[usize]) -> (Matrix, Vec<String>) {
        let mut out_cols: Vec<Vec<f64>> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for feat in &self.features {
            match feat {
                Feature::Numeric { name, values } => {
                    let mut col = Vec::with_capacity(rows.len());
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for &r in rows {
                        let v = values[r];
                        if !v.is_nan() {
                            sum += v;
                            n += 1;
                        }
                        col.push(v);
                    }
                    let fill = if n > 0 { sum / n as f64 } else { 0.0 };
                    for v in &mut col {
                        if v.is_nan() {
                            *v = fill;
                        }
                    }
                    out_cols.push(col);
                    names.push(name.clone());
                }
                Feature::Categorical { name, codes, levels } => {
                    for (lvl_idx, lvl) in levels.iter().enumerate() {
                        let col: Vec<f64> = rows
                            .iter()
                            .map(|&r| if codes[r] as usize == lvl_idx { 1.0 } else { 0.0 })
                            .collect();
                        out_cols.push(col);
                        names.push(format!("{name}={lvl}"));
                    }
                }
            }
        }
        let n_rows = rows.len();
        let n_cols = out_cols.len();
        let mut m = Matrix::zeros(n_rows, n_cols);
        for (c, col) in out_cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        (m, names)
    }

    /// Labels of a row subset.
    pub fn labels_for(&self, rows: &[usize]) -> Vec<u32> {
        rows.iter().map(|&r| self.labels[r]).collect()
    }

    /// Builds a new dataset containing only `rows` (copies data; splits
    /// normally stay index-based — this is for preprocessing fit boundaries).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let features = self
            .features
            .iter()
            .map(|f| match f {
                Feature::Numeric { name, values } => Feature::Numeric {
                    name: name.clone(),
                    values: rows.iter().map(|&r| values[r]).collect(),
                },
                Feature::Categorical { name, codes, levels } => Feature::Categorical {
                    name: name.clone(),
                    codes: rows.iter().map(|&r| codes[r]).collect(),
                    levels: levels.clone(),
                },
            })
            .collect();
        Dataset {
            name: self.name.clone(),
            features,
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
            class_names: self.class_names.clone(),
        }
    }

    /// Replaces the feature columns (used by preprocessing transforms).
    ///
    /// # Panics
    /// Panics if any new column's length differs from the label count.
    pub fn with_features(&self, features: Vec<Feature>) -> Dataset {
        for f in &features {
            assert_eq!(f.len(), self.labels.len(), "column '{}' length mismatch", f.name());
        }
        Dataset {
            name: self.name.clone(),
            features,
            labels: self.labels.clone(),
            class_names: self.class_names.clone(),
        }
    }

    /// All row indices, `0..n_rows`.
    pub fn all_rows(&self) -> Vec<usize> {
        (0..self.n_rows()).collect()
    }

    /// A human-readable per-column summary (df.describe-style): name, type,
    /// missing count, and either min/mean/max (numeric) or the level count
    /// and mode (categorical).
    pub fn describe(&self) -> String {
        use smartml_linalg::vecops;
        let mut out = format!(
            "Dataset '{}': {} rows x {} features, {} classes {:?}\n",
            self.name,
            self.n_rows(),
            self.n_features(),
            self.n_classes(),
            self.class_names
        );
        out.push_str(&format!(
            "class counts: {:?}\n",
            self.class_counts()
        ));
        for feat in &self.features {
            match feat {
                Feature::Numeric { name, values } => {
                    let clean: Vec<f64> =
                        values.iter().copied().filter(|v| !v.is_nan()).collect();
                    out.push_str(&format!(
                        "  {:<20} numeric      missing={:<4} min={:<10.4} mean={:<10.4} max={:<10.4} sd={:.4}\n",
                        name,
                        feat.missing_count(),
                        vecops::min(&clean),
                        vecops::mean(&clean),
                        vecops::max(&clean),
                        vecops::std_dev(&clean),
                    ));
                }
                Feature::Categorical { name, codes, levels } => {
                    let mut counts = vec![0usize; levels.len()];
                    for &c in codes {
                        if c != MISSING_CODE {
                            counts[c as usize] += 1;
                        }
                    }
                    let mode = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map(|(i, _)| levels[i].as_str())
                        .unwrap_or("-");
                    out.push_str(&format!(
                        "  {:<20} categorical  missing={:<4} levels={:<4} mode={}\n",
                        name,
                        feat.missing_count(),
                        levels.len(),
                        mode,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                Feature::Numeric { name: "x".into(), values: vec![1.0, 2.0, f64::NAN, 4.0] },
                Feature::Categorical {
                    name: "c".into(),
                    codes: vec![0, 1, 0, MISSING_CODE],
                    levels: vec!["a".into(), "b".into()],
                },
            ],
            vec![0, 1, 0, 1],
            vec!["neg".into(), "pos".into()],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let d = toy();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.missing_cells(), 2);
        assert_eq!(d.numeric_feature_indices(), vec![0]);
        assert_eq!(d.categorical_feature_indices(), vec![1]);
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = Dataset::new(
            "bad",
            vec![Feature::Numeric { name: "x".into(), values: vec![1.0] }],
            vec![0, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_bad_label() {
        let err = Dataset::new(
            "bad",
            vec![],
            vec![0, 5],
            vec!["a".into(), "b".into()],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::LabelOutOfRange { row: 1, label: 5, .. }));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Dataset::new("bad", vec![], vec![], vec![]),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn numeric_matrix_one_hot_and_impute() {
        let d = toy();
        let rows = d.all_rows();
        let (m, names) = d.to_numeric_matrix(&rows);
        assert_eq!(m.shape(), (4, 3)); // 1 numeric + 2 one-hot
        assert_eq!(names, vec!["x", "c=a", "c=b"]);
        // Missing numeric imputed with mean of (1,2,4) = 7/3.
        assert!((m[(2, 0)] - 7.0 / 3.0).abs() < 1e-12);
        // Missing categorical row 3 → all-zero block.
        assert_eq!(m[(3, 1)], 0.0);
        assert_eq!(m[(3, 2)], 0.0);
        // One-hot correctness.
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[1, 2]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        match s.feature(0) {
            Feature::Numeric { values, .. } => {
                assert_eq!(values[0], 2.0);
                assert!(values[1].is_nan());
            }
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn describe_mentions_every_column() {
        let d = toy();
        let text = d.describe();
        assert!(text.contains("'toy'"));
        assert!(text.contains("x") && text.contains("numeric"));
        assert!(text.contains("c") && text.contains("categorical"));
        assert!(text.contains("missing=1"));
    }

    #[test]
    fn class_counts_for_subset() {
        let d = toy();
        assert_eq!(d.class_counts_for(&[0, 1]), vec![1, 1]);
        assert_eq!(d.class_counts_for(&[1, 3]), vec![0, 2]);
    }
}
