//! Dataset readers for the two input formats SmartML accepts: CSV and ARFF.

mod arff;
mod csv;
mod writer;

pub use arff::parse_arff;
pub use csv::parse_csv;
pub use writer::{write_arff, write_csv};
