//! ARFF (Attribute-Relation File Format) reader.
//!
//! Supports `@relation`, `@attribute <name> numeric|real|integer|{a,b,...}`,
//! `@data` with comma-separated rows, `%` comments, `'quoted names'`, and
//! `?` missing values. Sparse ARFF and date/string attributes are not
//! supported (the paper's pipeline does not use them); encountering one is a
//! parse error rather than silent misreading.

use crate::dataset::{Dataset, DatasetError};
use crate::io::csv::columns_to_dataset;

#[derive(Debug)]
enum AttrType {
    Numeric,
    Nominal(Vec<String>),
}

/// Parses ARFF text into a [`Dataset`]. The last attribute is the class.
pub fn parse_arff(name: &str, text: &str) -> Result<Dataset, DatasetError> {
    let mut attrs: Vec<(String, AttrType)> = Vec::new();
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    let mut in_data = false;
    for (line_no, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| DatasetError::Parse(format!("line {}: {msg}", line_no + 1));
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@relation") {
                continue;
            } else if lower.starts_with("@attribute") {
                let rest = line["@attribute".len()..].trim();
                let (attr_name, rest) = take_name(rest).ok_or_else(|| err("bad attribute"))?;
                let type_str = rest.trim();
                let attr_type = parse_attr_type(type_str)
                    .ok_or_else(|| err(&format!("unsupported attribute type '{type_str}'")))?;
                attrs.push((attr_name, attr_type));
            } else if lower.starts_with("@data") {
                if attrs.len() < 2 {
                    return Err(err("need at least one feature and a class attribute"));
                }
                in_data = true;
            } else {
                return Err(err(&format!("unexpected header line '{line}'")));
            }
        } else {
            if line.starts_with('{') {
                return Err(err("sparse ARFF rows are not supported"));
            }
            let fields: Vec<Option<String>> = line
                .split(',')
                .map(|f| {
                    let t = f.trim().trim_matches('\'').trim_matches('"');
                    if t.is_empty() || t == "?" {
                        None
                    } else {
                        Some(t.to_string())
                    }
                })
                .collect();
            if fields.len() != attrs.len() {
                return Err(err(&format!(
                    "{} fields, expected {}",
                    fields.len(),
                    attrs.len()
                )));
            }
            // Validate nominal values against their declared domain.
            for (f, (attr_name, attr_type)) in fields.iter().zip(&attrs) {
                if let (Some(v), AttrType::Nominal(levels)) = (f, attr_type) {
                    if !levels.iter().any(|l| l == v) {
                        return Err(err(&format!(
                            "value '{v}' not in domain of nominal attribute '{attr_name}'"
                        )));
                    }
                }
            }
            rows.push(fields);
        }
    }
    if rows.is_empty() {
        return Err(DatasetError::Parse("no data rows".into()));
    }
    let header: Vec<String> = attrs.iter().map(|(n, _)| n.clone()).collect();
    let target_idx = attrs.len() - 1;
    columns_to_dataset(name, &header, &rows, target_idx)
}

fn strip_comment(line: &str) -> &str {
    match line.find('%') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Extracts a (possibly quoted) attribute name; returns (name, remainder).
fn take_name(s: &str) -> Option<(String, &str)> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('\'') {
        let end = rest.find('\'')?;
        Some((rest[..end].to_string(), &rest[end + 1..]))
    } else {
        let end = s.find(char::is_whitespace)?;
        Some((s[..end].to_string(), &s[end..]))
    }
}

fn parse_attr_type(s: &str) -> Option<AttrType> {
    let lower = s.to_ascii_lowercase();
    if lower == "numeric" || lower == "real" || lower == "integer" {
        return Some(AttrType::Numeric);
    }
    if s.starts_with('{') && s.ends_with('}') {
        let levels = s[1..s.len() - 1]
            .split(',')
            .map(|v| v.trim().trim_matches('\'').trim_matches('"').to_string())
            .collect();
        return Some(AttrType::Nominal(levels));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Feature;

    const SAMPLE: &str = "\
% weather toy data
@relation weather
@attribute outlook {sunny, overcast, rainy}
@attribute temperature numeric
@attribute 'wind speed' real
@attribute play {yes, no}
@data
sunny, 85, 3.2, no
overcast, 83, ?, yes
rainy, 70, 12.0, yes  % inline comment
";

    #[test]
    fn parses_weather() {
        let d = parse_arff("weather", SAMPLE).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.feature(0).name(), "outlook");
        assert!(!d.feature(0).is_numeric());
        assert!(d.feature(1).is_numeric());
        assert_eq!(d.feature(2).name(), "wind speed");
        assert_eq!(d.missing_cells(), 1);
        assert_eq!(d.class_names(), &["no".to_string(), "yes".to_string()]);
    }

    #[test]
    fn rejects_out_of_domain_nominal() {
        let bad = SAMPLE.replace("rainy, 70", "snowy, 70");
        assert!(parse_arff("w", &bad).is_err());
    }

    #[test]
    fn rejects_sparse_rows() {
        let text = "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n{0 1, 1 x}\n";
        assert!(parse_arff("s", text).is_err());
    }

    #[test]
    fn rejects_string_attribute() {
        let text = "@relation r\n@attribute a string\n@attribute c {x,y}\n@data\nfoo,x\n";
        assert!(parse_arff("s", text).is_err());
    }

    #[test]
    fn rejects_field_count_mismatch() {
        let text = "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,x,extra\n";
        assert!(parse_arff("m", text).is_err());
    }

    #[test]
    fn rejects_empty_data() {
        let text = "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n";
        assert!(parse_arff("e", text).is_err());
    }

    #[test]
    fn comment_only_lines_skipped() {
        let text = "% hi\n@relation r\n% mid\n@attribute a numeric\n@attribute c {x,y}\n@data\n% before\n1,x\n2,y\n";
        let d = parse_arff("c", text).unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn numeric_column_values() {
        let d = parse_arff("weather", SAMPLE).unwrap();
        match d.feature(1) {
            Feature::Numeric { values, .. } => assert_eq!(values, &[85.0, 83.0, 70.0]),
            _ => panic!("expected numeric"),
        }
    }
}
