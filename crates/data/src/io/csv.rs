//! Minimal CSV reader with type inference.
//!
//! Supports quoted fields (RFC-4180 double-quote escaping), a header row,
//! and `?` / empty cells as missing values. Each column is inferred as
//! numeric when every non-missing cell parses as `f64`, otherwise
//! categorical with levels in first-appearance order. The last column (or a
//! caller-chosen one) is the class label.

use crate::dataset::{Dataset, DatasetError, Feature, MISSING_CODE};

/// Parses CSV text into a [`Dataset`].
///
/// `target` selects the label column by name; `None` uses the last column.
pub fn parse_csv(name: &str, text: &str, target: Option<&str>) -> Result<Dataset, DatasetError> {
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    let mut header: Option<Vec<String>> = None;
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line)
            .map_err(|e| DatasetError::Parse(format!("line {}: {e}", line_no + 1)))?;
        if header.is_none() {
            header = Some(fields.into_iter().map(|f| f.unwrap_or_default()).collect());
            continue;
        }
        rows.push(fields);
    }
    let header = header.ok_or_else(|| DatasetError::Parse("empty file".into()))?;
    if rows.is_empty() {
        return Err(DatasetError::Parse("no data rows".into()));
    }
    let n_cols = header.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n_cols {
            return Err(DatasetError::Parse(format!(
                "row {} has {} fields, expected {n_cols}",
                i + 2,
                row.len()
            )));
        }
    }
    let target_idx = match target {
        Some(t) => header
            .iter()
            .position(|h| h == t)
            .ok_or_else(|| DatasetError::Parse(format!("target column '{t}' not found")))?,
        None => n_cols - 1,
    };
    columns_to_dataset(name, &header, &rows, target_idx)
}

/// Splits one CSV line honouring quotes. `?` and empty fields become `None`.
fn split_csv_line(line: &str) -> Result<Vec<Option<String>>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() => in_quotes = true,
            Some('"') => return Err("unexpected quote mid-field".into()),
            Some(',') if !in_quotes => {
                fields.push(finish_field(std::mem::take(&mut cur)));
            }
            Some(c) => cur.push(c),
            None => {
                if in_quotes {
                    return Err("unterminated quote".into());
                }
                fields.push(finish_field(cur));
                return Ok(fields);
            }
        }
    }
}

fn finish_field(s: String) -> Option<String> {
    let t = s.trim();
    if t.is_empty() || t == "?" {
        None
    } else {
        Some(t.to_string())
    }
}

/// Shared column-builder used by both the CSV and ARFF readers.
pub(crate) fn columns_to_dataset(
    name: &str,
    header: &[String],
    rows: &[Vec<Option<String>>],
    target_idx: usize,
) -> Result<Dataset, DatasetError> {
    let n_cols = header.len();
    let mut features = Vec::with_capacity(n_cols - 1);
    for c in 0..n_cols {
        if c == target_idx {
            continue;
        }
        features.push(infer_column(&header[c], rows, c));
    }
    // Label column: categorical code table over first-appearance order.
    let mut class_names: Vec<String> = Vec::new();
    let mut labels = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cell = row[target_idx]
            .as_deref()
            .ok_or_else(|| DatasetError::Parse(format!("row {}: missing class label", i + 1)))?;
        let code = match class_names.iter().position(|c| c == cell) {
            Some(p) => p as u32,
            None => {
                class_names.push(cell.to_string());
                (class_names.len() - 1) as u32
            }
        };
        labels.push(code);
    }
    Dataset::new(name, features, labels, class_names)
}

fn infer_column(name: &str, rows: &[Vec<Option<String>>], col: usize) -> Feature {
    let all_numeric = rows
        .iter()
        .filter_map(|r| r[col].as_deref())
        .all(|v| v.parse::<f64>().is_ok());
    if all_numeric {
        let values = rows
            .iter()
            .map(|r| r[col].as_deref().map_or(f64::NAN, |v| v.parse().unwrap()))
            .collect();
        Feature::Numeric { name: name.to_string(), values }
    } else {
        let mut levels: Vec<String> = Vec::new();
        let codes = rows
            .iter()
            .map(|r| match r[col].as_deref() {
                None => MISSING_CODE,
                Some(v) => match levels.iter().position(|l| l == v) {
                    Some(p) => p as u32,
                    None => {
                        levels.push(v.to_string());
                        (levels.len() - 1) as u32
                    }
                },
            })
            .collect();
        Feature::Categorical { name: name.to_string(), codes, levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
sepal,petal,color,species
5.1,1.4,red,setosa
4.9,?,blue,setosa
6.2,4.5,red,virginica
";

    #[test]
    fn parses_types_and_missing() {
        let d = parse_csv("iris", SAMPLE, None).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes(), 2);
        assert!(d.feature(0).is_numeric());
        assert!(d.feature(1).is_numeric());
        assert!(!d.feature(2).is_numeric());
        assert_eq!(d.missing_cells(), 1);
        assert_eq!(d.class_names(), &["setosa".to_string(), "virginica".to_string()]);
        assert_eq!(d.labels(), &[0, 0, 1]);
    }

    #[test]
    fn explicit_target_column() {
        let d = parse_csv("iris", SAMPLE, Some("color")).unwrap();
        assert_eq!(d.n_classes(), 2); // red, blue
        assert_eq!(d.n_features(), 3); // sepal, petal, species
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    fn missing_target_column_errors() {
        assert!(parse_csv("x", SAMPLE, Some("nope")).is_err());
    }

    #[test]
    fn quoted_fields_with_commas() {
        let text = "a,b\n\"hello, world\",1\n\"say \"\"hi\"\"\",0\n";
        let d = parse_csv("q", text, None).unwrap();
        match d.feature(0) {
            Feature::Categorical { levels, .. } => {
                assert_eq!(levels[0], "hello, world");
                assert_eq!(levels[1], "say \"hi\"");
            }
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let text = "a,b,y\n1,2,0\n1,0\n";
        assert!(matches!(parse_csv("r", text, None), Err(DatasetError::Parse(_))));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(parse_csv("e", "", None).is_err());
        assert!(parse_csv("e", "a,b\n", None).is_err());
    }

    #[test]
    fn missing_label_rejected() {
        let text = "a,y\n1,0\n2,?\n";
        assert!(parse_csv("m", text, None).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let text = "a,y\n\"oops,0\n";
        assert!(parse_csv("u", text, None).is_err());
    }
}
