//! Dataset writers: serialise a [`Dataset`] back to CSV or ARFF text.
//! Round-trips with the readers in this module (modulo float formatting).

use crate::dataset::{Dataset, Feature, MISSING_CODE};

/// Serialises a dataset to CSV with a header row; the label column comes
/// last, named `class`. Missing values are written as `?`.
pub fn write_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = data.features().iter().map(|f| f.name().to_string()).collect();
    header.push("class".into());
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..data.n_rows() {
        for feature in data.features() {
            match feature {
                Feature::Numeric { values, .. } => {
                    if values[row].is_nan() {
                        out.push('?');
                    } else {
                        out.push_str(&format!("{}", values[row]));
                    }
                }
                Feature::Categorical { codes, levels, .. } => {
                    if codes[row] == MISSING_CODE {
                        out.push('?');
                    } else {
                        out.push_str(&levels[codes[row] as usize]);
                    }
                }
            }
            out.push(',');
        }
        out.push_str(&data.class_names()[data.label(row) as usize]);
        out.push('\n');
    }
    out
}

/// Serialises a dataset to ARFF; the label attribute comes last, named
/// `class`. Missing values are written as `?`.
pub fn write_arff(data: &Dataset) -> String {
    let mut out = format!("@relation {}\n", sanitise(&data.name));
    for feature in data.features() {
        match feature {
            Feature::Numeric { name, .. } => {
                out.push_str(&format!("@attribute {} numeric\n", sanitise(name)));
            }
            Feature::Categorical { name, levels, .. } => {
                out.push_str(&format!(
                    "@attribute {} {{{}}}\n",
                    sanitise(name),
                    levels.join(",")
                ));
            }
        }
    }
    out.push_str(&format!("@attribute class {{{}}}\n@data\n", data.class_names().join(",")));
    for row in 0..data.n_rows() {
        let mut cells: Vec<String> = Vec::with_capacity(data.n_features() + 1);
        for feature in data.features() {
            match feature {
                Feature::Numeric { values, .. } => {
                    cells.push(if values[row].is_nan() {
                        "?".into()
                    } else {
                        format!("{}", values[row])
                    });
                }
                Feature::Categorical { codes, levels, .. } => {
                    cells.push(if codes[row] == MISSING_CODE {
                        "?".into()
                    } else {
                        levels[codes[row] as usize].clone()
                    });
                }
            }
        }
        cells.push(data.class_names()[data.label(row) as usize].clone());
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Replaces whitespace in attribute/relation names (readers treat names as
/// single tokens).
fn sanitise(name: &str) -> String {
    name.replace(char::is_whitespace, "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{parse_arff, parse_csv};
    use crate::synth::categorical_mixture;

    fn with_missing() -> Dataset {
        let base = categorical_mixture("writer test", 40, 2, 2, 2, 3, 1);
        let features = base
            .features()
            .iter()
            .enumerate()
            .map(|(fi, f)| match f {
                Feature::Numeric { name, values } => Feature::Numeric {
                    name: name.clone(),
                    values: values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| if (i + fi) % 7 == 0 { f64::NAN } else { v })
                        .collect(),
                },
                Feature::Categorical { name, codes, levels } => Feature::Categorical {
                    name: name.clone(),
                    codes: codes
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| if (i + fi) % 7 == 0 { MISSING_CODE } else { c })
                        .collect(),
                    levels: levels.clone(),
                },
            })
            .collect();
        base.with_features(features)
    }

    #[test]
    fn csv_roundtrip_preserves_shape_and_labels() {
        let d = with_missing();
        let text = write_csv(&d);
        let back = parse_csv("rt", &text, None).unwrap();
        assert_eq!(back.n_rows(), d.n_rows());
        assert_eq!(back.n_features(), d.n_features());
        assert_eq!(back.n_classes(), d.n_classes());
        assert_eq!(back.missing_cells(), d.missing_cells());
        // Labels survive (class names may reorder by first appearance, so
        // compare via names).
        for row in 0..d.n_rows() {
            assert_eq!(
                back.class_names()[back.label(row) as usize],
                d.class_names()[d.label(row) as usize],
                "row {row}"
            );
        }
    }

    #[test]
    fn arff_roundtrip_preserves_types() {
        let d = with_missing();
        let text = write_arff(&d);
        let back = parse_arff("rt", &text).unwrap();
        assert_eq!(back.n_rows(), d.n_rows());
        assert_eq!(back.n_features(), d.n_features());
        assert_eq!(
            back.categorical_feature_indices().len(),
            d.categorical_feature_indices().len()
        );
        assert_eq!(back.missing_cells(), d.missing_cells());
    }

    #[test]
    fn numeric_values_roundtrip_exactly() {
        use crate::synth::gaussian_blobs;
        let d = gaussian_blobs("exact", 30, 3, 2, 1.0, 2);
        let back = parse_csv("rt", &write_csv(&d), None).unwrap();
        for (fa, fb) in d.features().iter().zip(back.features()) {
            if let (Feature::Numeric { values: va, .. }, Feature::Numeric { values: vb, .. }) =
                (fa, fb)
            {
                // `{}` float formatting is shortest-roundtrip in Rust.
                assert_eq!(va, vb);
            }
        }
    }

    #[test]
    fn relation_name_sanitised() {
        let d = with_missing();
        let text = write_arff(&d);
        assert!(text.starts_with("@relation writer_test\n"));
    }
}
