//! Classification metrics.
//!
//! The paper reports plain accuracy (Table 4); balanced accuracy, macro-F1,
//! log-loss and the confusion matrix are additionally provided because the
//! ensembling and interpretability phases use them.
//!
//! Degenerate inputs (an empty validation fold, predictions covering no
//! true class) return `0.0` instead of `NaN` or a panic: a `NaN` accuracy
//! silently poisons model selection (every comparison is false), and a
//! panic would take down the whole run for one bad fold. Each coercion
//! bumps a process-wide counter ([`degenerate_metric_count`]) so the
//! pipeline can attach a warning to the run report.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide count of metric evaluations that hit a degenerate input
/// and were coerced to a defined value.
static DEGENERATE: AtomicUsize = AtomicUsize::new(0);

fn note_degenerate() {
    DEGENERATE.fetch_add(1, Ordering::Relaxed);
}

/// How many metric evaluations were coerced to `0.0` on degenerate input
/// since process start. Snapshot before/after a run to attach a warning.
pub fn degenerate_metric_count() -> usize {
    DEGENERATE.load(Ordering::Relaxed)
}

/// Fraction of predictions equal to the truth. An empty fold scores `0.0`
/// (and is counted as degenerate), never `NaN`.
///
/// # Panics
/// Panics on length mismatch.
pub fn accuracy(truth: &[u32], pred: &[u32]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    if truth.is_empty() {
        note_degenerate();
        return 0.0;
    }
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Confusion matrix `m[true][pred]` with `n_classes` rows and columns.
pub fn confusion_matrix(truth: &[u32], pred: &[u32], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Mean per-class recall. Classes absent from `truth` are skipped.
pub fn balanced_accuracy(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let m = confusion_matrix(truth, pred, n_classes);
    let mut total = 0.0;
    let mut present = 0usize;
    for (c, row) in m.iter().enumerate() {
        let support: usize = row.iter().sum();
        if support > 0 {
            total += row[c] as f64 / support as f64;
            present += 1;
        }
    }
    if present == 0 {
        note_degenerate();
        0.0
    } else {
        total / present as f64
    }
}

/// Macro-averaged F1 score. A class with no support and no predictions
/// contributes nothing; a class with zero precision+recall contributes 0.
pub fn macro_f1(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let m = confusion_matrix(truth, pred, n_classes);
    let mut f1_sum = 0.0;
    let mut counted = 0usize;
    for c in 0..n_classes {
        let tp = m[c][c] as f64;
        let support: usize = m[c].iter().sum();
        let predicted: usize = (0..n_classes).map(|t| m[t][c]).sum();
        if support == 0 && predicted == 0 {
            continue;
        }
        counted += 1;
        if tp == 0.0 {
            continue; // f1 = 0 for this class
        }
        let precision = tp / predicted as f64;
        let recall = tp / support as f64;
        f1_sum += 2.0 * precision * recall / (precision + recall);
    }
    if counted == 0 {
        note_degenerate();
        0.0
    } else {
        f1_sum / counted as f64
    }
}

/// Multiclass logarithmic loss given per-row class probability vectors.
/// An empty fold scores `0.0` (counted as degenerate), never `NaN`.
///
/// Probabilities are clipped to `[1e-15, 1 - 1e-15]` for numerical safety.
///
/// # Panics
/// Panics on length mismatch or when a probability row is shorter than the
/// largest label.
pub fn log_loss(truth: &[u32], proba: &[Vec<f64>]) -> f64 {
    assert_eq!(truth.len(), proba.len(), "length mismatch");
    if truth.is_empty() {
        note_degenerate();
        return 0.0;
    }
    let mut total = 0.0;
    for (&t, row) in truth.iter().zip(proba) {
        let p = row[t as usize].clamp(1e-15, 1.0 - 1e-15);
        total -= p.ln();
    }
    total / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    fn confusion_known() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
    }

    #[test]
    fn balanced_accuracy_handles_imbalance() {
        // 9 of class 0 all right, 1 of class 1 wrong → acc 0.9, bacc 0.5.
        let truth: Vec<u32> = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred: Vec<u32> = vec![0; 10];
        assert_eq!(accuracy(&truth, &pred), 0.9);
        assert_eq!(balanced_accuracy(&truth, &pred, 2), 0.5);
    }

    #[test]
    fn balanced_accuracy_skips_absent_classes() {
        let truth = vec![0, 0];
        let pred = vec![0, 0];
        assert_eq!(balanced_accuracy(&truth, &pred, 3), 1.0);
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        assert_eq!(macro_f1(&[0, 1, 2], &[0, 1, 2], 3), 1.0);
        assert_eq!(macro_f1(&[0, 0], &[1, 1], 2), 0.0);
    }

    #[test]
    fn macro_f1_known_value() {
        // class 0: p=1, r=0.5 → f1 = 2/3; class 1: p=0.5, r=1 → f1 = 2/3.
        let truth = vec![0, 0, 1];
        let pred = vec![0, 1, 1];
        let f1 = macro_f1(&truth, &pred, 2);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_loss_perfect_prediction_near_zero() {
        let l = log_loss(&[0, 1], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(l < 1e-10);
    }

    #[test]
    fn log_loss_uniform_is_ln_k() {
        let l = log_loss(&[0, 1, 2], &vec![vec![1.0 / 3.0; 3]; 3]);
        assert!((l - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clips_zeros() {
        let l = log_loss(&[0], &[vec![0.0, 1.0]]);
        assert!(l.is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0, 1], &[0]);
    }

    #[test]
    fn degenerate_inputs_return_zero_not_nan() {
        let before = degenerate_metric_count();
        let a = accuracy(&[], &[]);
        assert_eq!(a, 0.0);
        assert!(!a.is_nan());
        let l = log_loss(&[], &[]);
        assert_eq!(l, 0.0);
        // Predictions covering no true class: n_classes with zero support
        // everywhere is impossible via confusion_matrix (truth indexes
        // rows), so drive the counted==0 path with an empty fold.
        let f1 = macro_f1(&[], &[], 2);
        assert_eq!(f1, 0.0);
        let b = balanced_accuracy(&[], &[], 2);
        assert_eq!(b, 0.0);
        assert!(degenerate_metric_count() >= before + 4);
    }
}
