//! Dataset substrate for SmartML.
//!
//! Provides the columnar [`Dataset`] type the whole workspace operates on,
//! CSV and ARFF parsers (the two input formats the paper accepts), stratified
//! train/validation splitting and k-fold cross validation, classification
//! metrics, and — because the paper's OpenML/UCI/Kaggle corpora are not
//! available here — a family of deterministic synthetic dataset generators
//! that reproduce the *shape and difficulty profile* of each evaluation
//! dataset (see `DESIGN.md`, substitution 1).

pub mod dataset;
pub mod io;
pub mod metrics;
pub mod split;
pub mod synth;

pub use dataset::{Dataset, DatasetError, Feature};
pub use metrics::{
    accuracy, balanced_accuracy, confusion_matrix, degenerate_metric_count, log_loss, macro_f1,
};
pub use split::{kfold_indices, stratified_kfold, train_valid_split};
