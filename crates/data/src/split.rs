//! Train/validation splitting and cross-validation folds.
//!
//! SmartML's preprocessing phase "randomly splits the dataset into training
//! and validation partitions"; the SMAC intensification loop additionally
//! races configurations on incrementally many CV folds. Both splitters here
//! are stratified so small or imbalanced classes stay represented, and both
//! are deterministic given a seed.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stratified train/validation split of all rows of `data`.
///
/// `valid_fraction` of each class (rounded down, but at least one row when
/// the class has ≥ 2 rows) goes to the validation set. Returns
/// `(train_rows, valid_rows)`.
///
/// # Panics
/// Panics if `valid_fraction` is outside `(0, 1)`.
pub fn train_valid_split(data: &Dataset, valid_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        valid_fraction > 0.0 && valid_fraction < 1.0,
        "valid_fraction must be in (0,1), got {valid_fraction}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for (row, &label) in data.labels().iter().enumerate() {
        by_class[label as usize].push(row);
    }
    let mut train = Vec::new();
    let mut valid = Vec::new();
    for rows in &mut by_class {
        rows.shuffle(&mut rng);
        let n = rows.len();
        let mut n_valid = (n as f64 * valid_fraction).floor() as usize;
        if n_valid == 0 && n >= 2 {
            n_valid = 1;
        }
        valid.extend_from_slice(&rows[..n_valid]);
        train.extend_from_slice(&rows[n_valid..]);
    }
    train.sort_unstable();
    valid.sort_unstable();
    (train, valid)
}

/// Plain (unstratified) k-fold partition of `n` indices.
///
/// Returns `k` disjoint folds covering `0..n`; fold sizes differ by at most 1.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k must be >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, row) in idx.into_iter().enumerate() {
        folds[i % k].push(row);
    }
    folds
}

/// Stratified k-fold over a row subset of `data`.
///
/// Each fold preserves the class proportions of `rows` as closely as
/// possible. Returns `k` disjoint folds whose union is `rows`.
pub fn stratified_kfold(data: &Dataset, rows: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k must be >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for &row in rows {
        by_class[data.label(row) as usize].push(row);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Round-robin each class's shuffled rows across folds, rotating the
    // starting fold per class so small classes don't all pile into fold 0.
    for (class, class_rows) in by_class.iter_mut().enumerate() {
        class_rows.shuffle(&mut rng);
        for (i, &row) in class_rows.iter().enumerate() {
            folds[(i + class) % k].push(row);
        }
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    folds
}

/// Train rows for CV: every row in `rows` not in `fold`.
pub fn complement(rows: &[usize], fold: &[usize]) -> Vec<usize> {
    let in_fold: std::collections::HashSet<usize> = fold.iter().copied().collect();
    rows.iter().copied().filter(|r| !in_fold.contains(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Feature;

    fn dataset(labels: Vec<u32>, n_classes: usize) -> Dataset {
        let n = labels.len();
        Dataset::new(
            "t",
            vec![Feature::Numeric { name: "x".into(), values: vec![0.0; n] }],
            labels,
            (0..n_classes).map(|c| format!("c{c}")).collect(),
        )
        .unwrap()
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = dataset(vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 1], 2);
        let (train, valid) = train_valid_split(&d, 0.3, 7);
        let mut all: Vec<usize> = train.iter().chain(&valid).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_stratified() {
        let d = dataset(vec![0; 80].into_iter().chain(vec![1; 20]).collect(), 2);
        let (_, valid) = train_valid_split(&d, 0.25, 3);
        let counts = d.class_counts_for(&valid);
        assert_eq!(counts[0], 20);
        assert_eq!(counts[1], 5);
    }

    #[test]
    fn split_small_class_gets_validation_row() {
        let d = dataset(vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1], 2);
        let (_, valid) = train_valid_split(&d, 0.2, 1);
        assert!(d.class_counts_for(&valid)[1] >= 1);
    }

    #[test]
    fn split_deterministic_per_seed() {
        let d = dataset(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        assert_eq!(train_valid_split(&d, 0.25, 42), train_valid_split(&d, 0.25, 42));
        assert_ne!(train_valid_split(&d, 0.25, 42).1, train_valid_split(&d, 0.25, 43).1);
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold_indices(10, 3, 5);
        assert_eq!(folds.len(), 3);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 3 || f.len() == 4);
        }
    }

    #[test]
    fn stratified_kfold_preserves_proportions() {
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i % 5 == 0)).collect();
        let d = dataset(labels, 2);
        let rows = d.all_rows();
        let folds = stratified_kfold(&d, &rows, 4, 11);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, rows);
        for fold in &folds {
            let counts = d.class_counts_for(fold);
            assert_eq!(counts[0], 20);
            assert_eq!(counts[1], 5);
        }
    }

    #[test]
    fn complement_excludes_fold() {
        let rows = vec![0, 1, 2, 3, 4];
        let fold = vec![1, 3];
        assert_eq!(complement(&rows, &fold), vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "valid_fraction")]
    fn bad_fraction_panics() {
        let d = dataset(vec![0, 1], 2);
        train_valid_split(&d, 1.5, 0);
    }
}
