//! Algorithm selection by weighted nearest-neighbour retrieval.

use crate::store::{KnowledgeBase, KbEntry};
use serde::{Deserialize, Serialize};
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_metafeatures::{Landmarkers, MetaFeatures, N_META_FEATURES};

/// Query knobs. Serialisable because a remote `smartmld` query carries
/// them over the wire (a request that omits the options object gets
/// [`QueryOptions::default`]; one that sends it must send every knob).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// How many algorithms to nominate.
    pub top_n: usize,
    /// How many nearest datasets participate in the vote.
    pub n_neighbors: usize,
    /// Weight of the performance-magnitude factor relative to similarity
    /// (the paper's second factor): 0 = similarity only.
    pub performance_weight: f64,
    /// Extend the distance with landmarker accuracies when both the query
    /// and an entry carry them (extended-similarity ablation).
    pub use_landmarkers: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { top_n: 3, n_neighbors: 5, performance_weight: 1.0, use_landmarkers: false }
    }
}

/// Per-meta-feature z-score statistics over a whole KB — the quantity a
/// long-lived serving process caches between writes so that concurrent
/// readers skip the full O(entries × features) re-normalisation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormStats {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (constant features pinned to 1).
    pub stds: Vec<f64>,
}

/// One nominated algorithm with its warm-start configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmRecommendation {
    /// The nominated classifier.
    pub algorithm: Algorithm,
    /// Vote score (similarity × performance mass).
    pub score: f64,
    /// Best stored configurations from the supporting neighbours,
    /// most-similar dataset first — SMAC's initial design.
    pub warm_starts: Vec<ParamConfig>,
}

/// Result of an algorithm-selection query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Nominated algorithms, best first.
    pub algorithms: Vec<AlgorithmRecommendation>,
    /// The neighbour datasets consulted: `(dataset_id, distance)`.
    pub neighbors: Vec<(String, f64)>,
}

impl KnowledgeBase {
    /// Nominates algorithms for a dataset with the given meta-features.
    ///
    /// Implements the paper's two-factor weighted mechanism: each neighbour
    /// dataset votes for its algorithms with weight
    /// `similarity(dataset) × accuracy^performance_weight`, where similarity
    /// is `1 / (1 + distance)` over z-score-normalised meta-features.
    /// An empty KB yields an empty recommendation (caller falls back to all
    /// algorithms).
    pub fn recommend(&self, meta_features: &MetaFeatures, options: &QueryOptions) -> Recommendation {
        self.recommend_extended(meta_features, None, options)
    }

    /// [`KnowledgeBase::recommend`] with an optional landmarker vector for
    /// the query dataset. When `options.use_landmarkers` is set and both
    /// sides carry landmarkers, the two landmarker accuracies join the
    /// distance computation (scaled to comparable magnitude, ×3 since they
    /// are in `[0,1]` while z-scores spread wider).
    pub fn recommend_extended(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        if self.is_empty() {
            return Recommendation { algorithms: Vec::new(), neighbors: Vec::new() };
        }
        let stats = self.normalisation_stats();
        self.recommend_extended_with_stats(meta_features, query_landmarkers, options, &stats)
    }

    /// [`KnowledgeBase::recommend_extended`] with the z-score statistics
    /// supplied by the caller. A serving layer computes
    /// [`KnowledgeBase::normalisation_stats`] once per write generation and
    /// reuses it across every concurrent read, so this is the hot-path
    /// entry point; results are bit-identical to `recommend_extended` as
    /// long as `stats` matches the current entries.
    pub fn recommend_extended_with_stats(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
        stats: &NormStats,
    ) -> Recommendation {
        if self.is_empty() {
            return Recommendation { algorithms: Vec::new(), neighbors: Vec::new() };
        }
        let NormStats { means, stds } = stats;
        let query = normalise(&meta_features.values, means, stds);
        // Rank datasets by distance.
        let mut ranked: Vec<(&KbEntry, f64)> = self
            .entries()
            .iter()
            .map(|e| {
                let z = normalise(&e.meta_features.values, means, stds);
                let dist = entry_distance(&query, &z, e.landmarkers, query_landmarkers, options);
                (e, dist)
            })
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        ranked.truncate(options.n_neighbors.max(1));
        vote_ranked(&ranked, options)
    }

    /// Per-meta-feature mean and std over all entries (for z-scoring).
    /// Callers that serve many queries between writes should cache the
    /// result and pass it to
    /// [`KnowledgeBase::recommend_extended_with_stats`].
    pub fn normalisation_stats(&self) -> NormStats {
        let features: Vec<&[f64]> =
            self.entries().iter().map(|e| e.meta_features.values.as_slice()).collect();
        normalisation_stats_over(&features)
    }
}

/// [`KnowledgeBase::normalisation_stats`] over an explicit feature
/// sequence. Float summation follows slice order, so a sharded index
/// that assembles features in global insertion order gets statistics
/// bit-identical to a single monolithic KB holding the same entries.
pub fn normalisation_stats_over(features: &[&[f64]]) -> NormStats {
    let n = features.len() as f64;
    let mut means = vec![0.0; N_META_FEATURES];
    for values in features {
        for (m, &v) in means.iter_mut().zip(*values) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut stds = vec![0.0; N_META_FEATURES];
    for values in features {
        for ((s, &v), &m) in stds.iter_mut().zip(*values).zip(&means) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0; // constant meta-feature carries no signal
        }
    }
    NormStats { means, stds }
}

/// Z-scores a feature vector against per-feature `means`/`stds`.
/// Exported so a serving index can pre-normalise entries once per write
/// generation instead of on every query.
pub fn normalise(values: &[f64], means: &[f64], stds: &[f64]) -> Vec<f64> {
    values
        .iter()
        .zip(means)
        .zip(stds)
        .map(|((v, m), s)| (v - m) / s)
        .collect()
}

/// Distance between a z-scored query and a z-scored entry, optionally
/// extended with landmarker accuracies (the `use_landmarkers` ablation:
/// the two accuracies join the distance scaled ×3, since they live in
/// `[0,1]` while z-scores spread wider).
pub fn entry_distance(
    query_z: &[f64],
    entry_z: &[f64],
    entry_landmarkers: Option<Landmarkers>,
    query_landmarkers: Option<Landmarkers>,
    options: &QueryOptions,
) -> f64 {
    let mut dist = euclidean(query_z, entry_z);
    if options.use_landmarkers {
        if let (Some(q), Some(el)) = (query_landmarkers, entry_landmarkers) {
            let dl = ((q.decision_stump - el.decision_stump).powi(2)
                + (q.nearest_centroid - el.nearest_centroid).powi(2))
            .sqrt();
            dist = (dist * dist + (3.0 * dl) * (3.0 * dl)).sqrt();
        }
    }
    dist
}

/// The paper's two-factor vote over an already-ranked neighbour set
/// (nearest first, already truncated to `n_neighbors`). Factored out of
/// [`KnowledgeBase::recommend_extended_with_stats`] so a sharded index
/// can rank per shard, merge, and still produce byte-identical
/// recommendations: given the same ranked entries in the same order,
/// every float operation here runs in the same sequence.
pub fn vote_ranked(ranked: &[(&KbEntry, f64)], options: &QueryOptions) -> Recommendation {
    let mut votes: Vec<(Algorithm, f64)> = Vec::new();
    for (entry, dist) in ranked {
        let similarity = 1.0 / (1.0 + dist);
        for run in &entry.runs {
            let magnitude = run.accuracy.max(0.0).powf(options.performance_weight.max(0.0));
            let weight = similarity * magnitude;
            match votes.iter_mut().find(|(a, _)| *a == run.algorithm) {
                Some((_, v)) => *v += weight,
                None => votes.push((run.algorithm, weight)),
            }
        }
    }
    votes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    votes.truncate(options.top_n.max(1));

    let algorithms = votes
        .into_iter()
        .map(|(algorithm, score)| {
            // Warm starts: best config for this algorithm from each
            // neighbour, nearest neighbour first.
            let warm_starts = ranked
                .iter()
                .filter_map(|(entry, _)| entry.best_run_for(algorithm).map(|r| r.config.clone()))
                .collect();
            AlgorithmRecommendation { algorithm, score, warm_starts }
        })
        .collect();
    Recommendation {
        algorithms,
        neighbors: ranked.iter().map(|(e, d)| (e.dataset_id.clone(), *d)).collect(),
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    // Lane-chunked kernel: breaks the serial add dependency chain the
    // naive fold has, which is most of the per-entry query cost. Every
    // caller of `entry_distance` (monolithic KB and sharded index alike)
    // goes through here, so backends stay byte-identical to each other.
    smartml_linalg::kernels::squared_distance(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AlgorithmRun;
    use smartml_data::synth::{gaussian_blobs, sparse_counts, xor_parity};
    use smartml_metafeatures::extract;

    fn mf_of(d: &smartml_data::Dataset) -> MetaFeatures {
        extract(d, &d.all_rows())
    }

    fn run(alg: Algorithm, acc: f64) -> AlgorithmRun {
        AlgorithmRun { algorithm: alg, config: ParamConfig::default(), accuracy: acc }
    }

    /// KB with two distinct regions: blob-like datasets where LDA wins and
    /// xor-like datasets where RandomForest wins.
    fn regional_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for seed in 0..4 {
            let d = gaussian_blobs(&format!("blob{seed}"), 200, 4, 2, 0.8, seed);
            kb.record_runs(
                &d.name.clone(),
                &mf_of(&d),
                [run(Algorithm::Lda, 0.95), run(Algorithm::Knn, 0.9), run(Algorithm::J48, 0.8)],
            );
            let x = xor_parity(&format!("xor{seed}"), 300, 3, 20, 0.02, seed);
            kb.record_runs(
                &x.name.clone(),
                &mf_of(&x),
                [run(Algorithm::RandomForest, 0.85), run(Algorithm::DeepBoost, 0.82), run(Algorithm::Lda, 0.5)],
            );
        }
        kb
    }

    #[test]
    fn empty_kb_recommends_nothing() {
        let kb = KnowledgeBase::new();
        let d = gaussian_blobs("q", 100, 4, 2, 0.8, 9);
        let rec = kb.recommend(&mf_of(&d), &QueryOptions::default());
        assert!(rec.algorithms.is_empty());
        assert!(rec.neighbors.is_empty());
    }

    #[test]
    fn recommends_regional_winner_for_blobs() {
        let kb = regional_kb();
        let q = gaussian_blobs("query", 220, 4, 2, 0.9, 99);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions::default());
        assert_eq!(rec.algorithms[0].algorithm, Algorithm::Lda, "{:?}", rec.algorithms);
    }

    #[test]
    fn recommends_regional_winner_for_xor() {
        let kb = regional_kb();
        let q = xor_parity("query", 320, 3, 22, 0.02, 99);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions::default());
        assert_eq!(rec.algorithms[0].algorithm, Algorithm::RandomForest, "{:?}", rec.algorithms);
    }

    #[test]
    fn nearest_neighbors_are_from_the_right_region() {
        let kb = regional_kb();
        let q = xor_parity("query", 320, 3, 22, 0.02, 123);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions { n_neighbors: 3, ..Default::default() });
        assert_eq!(rec.neighbors.len(), 3);
        for (id, _) in &rec.neighbors {
            assert!(id.starts_with("xor"), "unexpected neighbour {id}");
        }
    }

    #[test]
    fn warm_starts_come_from_neighbors() {
        let mut kb = KnowledgeBase::new();
        let d = gaussian_blobs("src", 150, 4, 2, 0.8, 3);
        let tuned = ParamConfig::default().with("k", smartml_classifiers::ParamValue::Int(17));
        kb.record_run(
            "src",
            &mf_of(&d),
            AlgorithmRun { algorithm: Algorithm::Knn, config: tuned.clone(), accuracy: 0.93 },
        );
        let q = gaussian_blobs("query", 160, 4, 2, 0.8, 4);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions::default());
        assert_eq!(rec.algorithms[0].algorithm, Algorithm::Knn);
        assert_eq!(rec.algorithms[0].warm_starts, vec![tuned]);
    }

    #[test]
    fn top_n_limits_nominations() {
        let kb = regional_kb();
        let q = gaussian_blobs("query", 200, 4, 2, 0.8, 55);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions { top_n: 2, ..Default::default() });
        assert_eq!(rec.algorithms.len(), 2);
        // Scores sorted descending.
        assert!(rec.algorithms[0].score >= rec.algorithms[1].score);
    }

    #[test]
    fn performance_weight_zero_ignores_accuracy_magnitude() {
        // One neighbour has a low-accuracy run of SVM and a high-accuracy
        // run of KNN; with performance_weight = 0 both get equal vote.
        let mut kb = KnowledgeBase::new();
        let d = sparse_counts("s", 100, 30, 3, 20, 1);
        kb.record_runs(
            "s",
            &mf_of(&d),
            [run(Algorithm::Svm, 0.2), run(Algorithm::Knn, 0.9)],
        );
        let rec = kb.recommend(
            &mf_of(&d),
            &QueryOptions { performance_weight: 0.0, top_n: 2, ..Default::default() },
        );
        assert!((rec.algorithms[0].score - rec.algorithms[1].score).abs() < 1e-12);
    }

    #[test]
    fn landmarkers_tighten_similarity_when_present() {
        use smartml_metafeatures::Landmarkers;
        // Two entries with *identical* meta-features but opposite landmark
        // behaviour; the query carries landmarkers matching entry B.
        let mut kb = KnowledgeBase::new();
        let d = gaussian_blobs("base", 100, 4, 2, 1.0, 1);
        let meta = mf_of(&d);
        kb.record_run("entry-a", &meta, run(Algorithm::Lda, 0.9));
        kb.set_landmarkers(
            "entry-a",
            Landmarkers { decision_stump: 0.95, nearest_centroid: 0.95 },
        );
        kb.record_run("entry-b", &meta, run(Algorithm::RandomForest, 0.9));
        kb.set_landmarkers(
            "entry-b",
            Landmarkers { decision_stump: 0.55, nearest_centroid: 0.50 },
        );
        let query_marks = Landmarkers { decision_stump: 0.55, nearest_centroid: 0.52 };
        let extended = kb.recommend_extended(
            &meta,
            Some(query_marks),
            &QueryOptions { top_n: 1, n_neighbors: 1, use_landmarkers: true, ..Default::default() },
        );
        assert_eq!(extended.neighbors[0].0, "entry-b", "{:?}", extended.neighbors);
        assert_eq!(extended.algorithms[0].algorithm, Algorithm::RandomForest);
        // Without landmarkers the two entries are indistinguishable and the
        // first wins on tie order.
        let plain = kb.recommend(
            &meta,
            &QueryOptions { top_n: 1, n_neighbors: 1, ..Default::default() },
        );
        assert_eq!(plain.neighbors[0].0, "entry-a");
    }

    #[test]
    fn missing_landmarkers_fall_back_to_plain_distance() {
        use smartml_metafeatures::Landmarkers;
        let mut kb = KnowledgeBase::new();
        let d = gaussian_blobs("nl", 80, 3, 2, 1.0, 2);
        let meta = mf_of(&d);
        kb.record_run("no-marks", &meta, run(Algorithm::Knn, 0.8));
        let rec = kb.recommend_extended(
            &meta,
            Some(Landmarkers { decision_stump: 0.5, nearest_centroid: 0.5 }),
            &QueryOptions { use_landmarkers: true, ..Default::default() },
        );
        // Entry has no landmarkers: distance is plain (0 for identical meta).
        assert!(rec.neighbors[0].1 < 1e-9, "{:?}", rec.neighbors);
    }

    #[test]
    fn cached_stats_path_matches_recompute_path() {
        let kb = regional_kb();
        let stats = kb.normalisation_stats();
        let q = xor_parity("query", 320, 3, 22, 0.02, 5);
        let mf = mf_of(&q);
        let opts = QueryOptions::default();
        let fresh = kb.recommend_extended(&mf, None, &opts);
        let cached = kb.recommend_extended_with_stats(&mf, None, &opts, &stats);
        assert_eq!(fresh, cached, "stats injection must not change results");
        // JSON round-trip: the recommendation is a wire type for the
        // KB service.
        let json = serde_json::to_string(&fresh).unwrap();
        let back: Recommendation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fresh);
    }

    #[test]
    fn single_very_similar_dataset_outvotes_many_weak_ones() {
        // The paper's motivating case: a near-identical dataset's top-n
        // should beat algorithms that merely appear on several far datasets.
        let mut kb = KnowledgeBase::new();
        let twin = gaussian_blobs("twin", 200, 4, 2, 0.8, 7);
        kb.record_runs(
            "twin",
            &mf_of(&twin),
            [run(Algorithm::Plsda, 0.96), run(Algorithm::Rda, 0.94)],
        );
        for seed in 0..4 {
            let far = sparse_counts(&format!("far{seed}"), 150, 60, 8, 40, seed);
            kb.record_run(&far.name.clone(), &mf_of(&far), run(Algorithm::NaiveBayes, 0.75));
        }
        let q = gaussian_blobs("query", 210, 4, 2, 0.85, 8);
        let rec = kb.recommend(&mf_of(&q), &QueryOptions { top_n: 2, ..Default::default() });
        let picks: Vec<Algorithm> = rec.algorithms.iter().map(|a| a.algorithm).collect();
        assert!(picks.contains(&Algorithm::Plsda), "{picks:?}");
        assert!(picks.contains(&Algorithm::Rda), "{picks:?}");
    }
}
