//! Knowledge-base storage: entries, runs, persistence.

use serde::{Deserialize, Serialize};
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One recorded (algorithm, configuration) → performance observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmRun {
    /// Which classifier.
    pub algorithm: Algorithm,
    /// The (tuned) configuration that was evaluated.
    pub config: ParamConfig,
    /// Validation accuracy achieved.
    pub accuracy: f64,
}

/// Everything the KB knows about one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KbEntry {
    /// Dataset identifier (name or hash).
    pub dataset_id: String,
    /// The dataset's 25 meta-features.
    pub meta_features: MetaFeatures,
    /// Optional landmarker accuracies (extended-similarity mode).
    #[serde(default)]
    pub landmarkers: Option<Landmarkers>,
    /// All recorded runs, best first is NOT guaranteed — query sorts.
    pub runs: Vec<AlgorithmRun>,
}

impl KbEntry {
    /// The entry's best run, if any.
    pub fn best_run(&self) -> Option<&AlgorithmRun> {
        self.runs
            .iter()
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
    }

    /// Best run for a specific algorithm.
    pub fn best_run_for(&self, algorithm: Algorithm) -> Option<&AlgorithmRun> {
        self.runs
            .iter()
            .filter(|r| r.algorithm == algorithm)
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
    }
}

/// Errors from KB persistence and KB backends.
#[derive(Debug)]
pub enum KbError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Stored data could not be parsed. `path` names the offending file
    /// when the data came from disk (`None` for in-memory strings), so a
    /// user with several KB files knows which one to repair — a missing
    /// file is *not* corruption and loads as an empty KB instead.
    Corrupt {
        /// The file that failed to parse, when known.
        path: Option<PathBuf>,
        /// Parser diagnostics.
        detail: String,
    },
    /// A remote or service-backed knowledge base failed (connection,
    /// protocol, or server-side error).
    Backend(String),
}

impl std::fmt::Display for KbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KbError::Io(e) => write!(f, "knowledge base I/O error: {e}"),
            KbError::Corrupt { path: Some(p), detail } => {
                write!(f, "knowledge base file `{}` is corrupt: {detail}", p.display())
            }
            KbError::Corrupt { path: None, detail } => {
                write!(f, "knowledge base is corrupt: {detail}")
            }
            KbError::Backend(msg) => write!(f, "knowledge base backend error: {msg}"),
        }
    }
}

impl std::error::Error for KbError {}

impl From<std::io::Error> for KbError {
    fn from(e: std::io::Error) -> Self {
        KbError::Io(e)
    }
}

/// The knowledge base: a growing collection of [`KbEntry`] values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    entries: Vec<KbEntry>,
}

impl KnowledgeBase {
    /// An empty KB.
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// A KB holding exactly `entries`, in that order. Entry order is
    /// load-bearing (normalisation statistics sum in entry order and
    /// nearest-neighbour ties break by position), so callers
    /// reassembling a KB — e.g. a sharded index folding its shards into
    /// a snapshot — must pass entries in original insertion order.
    pub fn from_entries(entries: Vec<KbEntry>) -> Self {
        KnowledgeBase { entries }
    }

    /// Number of datasets known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no datasets are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow all entries.
    pub fn entries(&self) -> &[KbEntry] {
        &self.entries
    }

    /// Consumes the KB, yielding its entries in insertion order.
    pub fn into_entries(self) -> Vec<KbEntry> {
        self.entries
    }

    /// Entry by dataset id.
    pub fn get(&self, dataset_id: &str) -> Option<&KbEntry> {
        self.entries.iter().find(|e| e.dataset_id == dataset_id)
    }

    /// Records a run, creating or extending the dataset's entry — the
    /// continuous-update loop of Figure 1. Meta-features are overwritten
    /// with the latest extraction for an existing id.
    pub fn record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) {
        match self.entries.iter_mut().find(|e| e.dataset_id == dataset_id) {
            Some(entry) => {
                entry.meta_features = meta_features.clone();
                entry.runs.push(run);
            }
            None => self.entries.push(KbEntry {
                dataset_id: dataset_id.to_string(),
                meta_features: meta_features.clone(),
                landmarkers: None,
                runs: vec![run],
            }),
        }
    }

    /// Records many runs for one dataset at once.
    pub fn record_runs(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        runs: impl IntoIterator<Item = AlgorithmRun>,
    ) {
        for run in runs {
            self.record_run(dataset_id, meta_features, run);
        }
    }

    /// Attaches landmarker accuracies to a dataset's entry (no-op when the
    /// dataset is unknown). Landmarkers extend the similarity metric when
    /// [`crate::QueryOptions::use_landmarkers`] is set.
    pub fn set_landmarkers(&mut self, dataset_id: &str, landmarkers: Landmarkers) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.dataset_id == dataset_id) {
            entry.landmarkers = Some(landmarkers);
        }
    }

    /// Merges another knowledge base into this one: runs for known dataset
    /// ids are appended, unknown ids are adopted wholesale. Landmarkers are
    /// taken from `other` when this side has none. Supports building the KB
    /// on several machines and combining the shards.
    pub fn merge(&mut self, other: KnowledgeBase) {
        for entry in other.entries {
            match self.entries.iter_mut().find(|e| e.dataset_id == entry.dataset_id) {
                Some(existing) => {
                    existing.runs.extend(entry.runs);
                    if existing.landmarkers.is_none() {
                        existing.landmarkers = entry.landmarkers;
                    }
                }
                None => self.entries.push(entry),
            }
        }
    }

    /// Total recorded runs across all datasets.
    pub fn n_runs(&self) -> usize {
        self.entries.iter().map(|e| e.runs.len()).sum()
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("KB serialisation cannot fail")
    }

    /// Parses a KB from JSON.
    pub fn from_json(json: &str) -> Result<Self, KbError> {
        serde_json::from_str(json)
            .map_err(|e| KbError::Corrupt { path: None, detail: e.to_string() })
    }

    /// Saves atomically: write the full JSON to a sibling `<name>.tmp`
    /// file, fsync it, then rename over `path` and fsync the directory.
    /// A crash at any point leaves either the old KB or the new one —
    /// never a truncated file. The temporary name *appends* `.tmp`
    /// (rather than replacing the extension) so `kb.json` and `kb.bin`
    /// in the same directory never race on one temp file.
    pub fn save(&self, path: &Path) -> Result<(), KbError> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "kb".into());
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Durable rename: fsync the containing directory so a power loss
        // cannot roll the directory entry back to the old file.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads from disk. A *missing* file is the normal first-run state and
    /// yields an empty KB; a file that exists but fails to parse is a real
    /// fault and surfaces as [`KbError::Corrupt`] naming the path, instead
    /// of being silently reinterpreted as "no experience yet".
    pub fn load(path: &Path) -> Result<Self, KbError> {
        match std::fs::read_to_string(path) {
            Ok(json) => serde_json::from_str(&json).map_err(|e| KbError::Corrupt {
                path: Some(path.to_path_buf()),
                detail: e.to_string(),
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(KnowledgeBase::new()),
            Err(e) => Err(KbError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::ParamValue;
    use smartml_metafeatures::extract;
    use smartml_data::synth::gaussian_blobs;

    fn mf() -> MetaFeatures {
        let d = gaussian_blobs("b", 50, 3, 2, 1.0, 1);
        extract(&d, &d.all_rows())
    }

    fn run(alg: Algorithm, acc: f64) -> AlgorithmRun {
        AlgorithmRun {
            algorithm: alg,
            config: ParamConfig::default().with("k", ParamValue::Int(7)),
            accuracy: acc,
        }
    }

    #[test]
    fn record_creates_and_extends() {
        let mut kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        kb.record_run("d1", &mf(), run(Algorithm::Knn, 0.8));
        kb.record_run("d1", &mf(), run(Algorithm::Svm, 0.9));
        kb.record_run("d2", &mf(), run(Algorithm::J48, 0.7));
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.n_runs(), 3);
        assert_eq!(kb.get("d1").unwrap().runs.len(), 2);
    }

    #[test]
    fn best_run_selection() {
        let mut kb = KnowledgeBase::new();
        kb.record_runs(
            "d",
            &mf(),
            [run(Algorithm::Knn, 0.8), run(Algorithm::Svm, 0.95), run(Algorithm::Knn, 0.85)],
        );
        let entry = kb.get("d").unwrap();
        assert_eq!(entry.best_run().unwrap().algorithm, Algorithm::Svm);
        assert_eq!(entry.best_run_for(Algorithm::Knn).unwrap().accuracy, 0.85);
        assert!(entry.best_run_for(Algorithm::Lda).is_none());
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = KnowledgeBase::new();
        a.record_run("shared", &mf(), run(Algorithm::Knn, 0.8));
        a.record_run("only-a", &mf(), run(Algorithm::Svm, 0.7));
        let mut b = KnowledgeBase::new();
        b.record_run("shared", &mf(), run(Algorithm::Lda, 0.9));
        b.record_run("only-b", &mf(), run(Algorithm::J48, 0.6));
        b.set_landmarkers(
            "shared",
            smartml_metafeatures::Landmarkers { decision_stump: 0.5, nearest_centroid: 0.6 },
        );
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.n_runs(), 4);
        let shared = a.get("shared").unwrap();
        assert_eq!(shared.runs.len(), 2);
        assert!(shared.landmarkers.is_some(), "landmarkers adopted from shard b");
    }

    #[test]
    fn json_roundtrip() {
        let mut kb = KnowledgeBase::new();
        kb.record_run("d1", &mf(), run(Algorithm::DeepBoost, 0.77));
        let back = KnowledgeBase::from_json(&kb.to_json()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get("d1").unwrap().runs[0].algorithm, Algorithm::DeepBoost);
        assert_eq!(back.get("d1").unwrap().runs[0].config.i64_or("k", 0), 7);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("smartml-kb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        let mut kb = KnowledgeBase::new();
        kb.record_run("d1", &mf(), run(Algorithm::Rpart, 0.66));
        kb.save(&path).unwrap();
        let loaded = KnowledgeBase::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_is_empty() {
        let kb = KnowledgeBase::load(Path::new("/nonexistent/kb.json")).unwrap();
        assert!(kb.is_empty());
    }

    #[test]
    fn corrupt_json_rejected() {
        assert!(matches!(
            KnowledgeBase::from_json("{not json"),
            Err(KbError::Corrupt { path: None, .. })
        ));
    }

    #[test]
    fn corrupt_file_error_names_the_path() {
        let dir = std::env::temp_dir().join("smartml-kb-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{definitely not a KB").unwrap();
        match KnowledgeBase::load(&path) {
            Err(KbError::Corrupt { path: Some(p), .. }) => assert_eq!(p, path),
            other => panic!("expected Corrupt with path, got {other:?}"),
        }
        // The rendered message points the user at the file.
        let msg = KnowledgeBase::load(&path).unwrap_err().to_string();
        assert!(msg.contains("broken.json"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_appends_tmp_suffix_instead_of_replacing_extension() {
        let dir = std::env::temp_dir().join("smartml-kb-tmpname-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A sibling file that `with_extension("tmp")` would have clobbered.
        let decoy = dir.join("kb.tmp");
        std::fs::write(&decoy, "precious").unwrap();
        let path = dir.join("kb.json");
        let mut kb = KnowledgeBase::new();
        kb.record_run("d1", &mf(), run(Algorithm::Knn, 0.5));
        kb.save(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&decoy).unwrap(), "precious");
        assert!(!dir.join("kb.json.tmp").exists(), "temp file must not linger");
        assert_eq!(KnowledgeBase::load(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
