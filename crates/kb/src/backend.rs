//! Pluggable knowledge-base backends.
//!
//! The pipeline's Phase 3 (algorithm selection) and Phase 5 (KB update)
//! only need four capabilities: recommend, record a run, attach
//! landmarkers, and report size. [`KbBackend`] captures exactly that
//! surface so a SmartML run can be wired to
//!
//! - the in-process [`KnowledgeBase`] (this crate — the default),
//! - a WAL-backed durable store (`smartml-kbd::DurableKb`), or
//! - a remote `smartmld` server (`smartml-kbd::KbClient`),
//!
//! without the pipeline knowing which. Local backends are infallible and
//! wrap every result in `Ok`; remote backends surface transport and
//! server-side failures as [`KbError::Backend`].
//!
//! Method names carry a `kb_` prefix so they never shadow (or get
//! shadowed by) the inherent `KnowledgeBase` methods of the same spirit.

use crate::query::{QueryOptions, Recommendation};
use crate::store::{AlgorithmRun, KbError, KnowledgeBase};
use smartml_metafeatures::{Landmarkers, MetaFeatures};

/// The knowledge-base operations a SmartML run performs, abstracted over
/// where the KB lives (in memory, on a WAL, behind a socket).
pub trait KbBackend: Send {
    /// Nominates algorithms for the given meta-features (Phase 3).
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError>;

    /// Records one `(algorithm, config) → accuracy` observation (Phase 5).
    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError>;

    /// Attaches landmarker accuracies to a dataset's entry (Phase 5,
    /// extended-similarity mode).
    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError>;

    /// Number of datasets the backend knows (best effort for remote
    /// backends: a failed stats call reports 0 rather than aborting the
    /// run — the value only feeds progress traces).
    fn kb_len(&self) -> usize;

    /// Total recorded runs (same best-effort contract as [`Self::kb_len`]).
    fn kb_n_runs(&self) -> usize;

    /// True when no datasets are known.
    fn kb_is_empty(&self) -> bool {
        self.kb_len() == 0
    }

    /// Short human-readable description for run traces and CLI banners.
    fn kb_describe(&self) -> String;

    /// Drains health warnings the backend accumulated (reconnects, retry
    /// storms, degraded modes) so the run report can surface them. Local
    /// backends have nothing to say; remote backends log their backoff
    /// schedules here.
    fn kb_health_warnings(&self) -> Vec<String> {
        Vec::new()
    }
}

impl<T: KbBackend + ?Sized> KbBackend for Box<T> {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        (**self).kb_recommend(meta_features, query_landmarkers, options)
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        (**self).kb_record_run(dataset_id, meta_features, run)
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        (**self).kb_set_landmarkers(dataset_id, landmarkers)
    }

    fn kb_len(&self) -> usize {
        (**self).kb_len()
    }

    fn kb_n_runs(&self) -> usize {
        (**self).kb_n_runs()
    }

    fn kb_describe(&self) -> String {
        (**self).kb_describe()
    }

    fn kb_health_warnings(&self) -> Vec<String> {
        (**self).kb_health_warnings()
    }
}

impl KbBackend for KnowledgeBase {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        Ok(self.recommend_extended(meta_features, query_landmarkers, options))
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run);
        Ok(())
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers);
        Ok(())
    }

    fn kb_len(&self) -> usize {
        self.len()
    }

    fn kb_n_runs(&self) -> usize {
        self.n_runs()
    }

    fn kb_describe(&self) -> String {
        "in-memory".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::gaussian_blobs;
    use smartml_metafeatures::extract;

    #[test]
    fn knowledge_base_backend_is_infallible_and_consistent() {
        let d = gaussian_blobs("b", 60, 3, 2, 1.0, 1);
        let mf = extract(&d, &d.all_rows());
        let mut kb = KnowledgeBase::new();
        assert!(kb.kb_is_empty());
        kb.kb_record_run(
            "b",
            &mf,
            AlgorithmRun {
                algorithm: Algorithm::Knn,
                config: ParamConfig::default(),
                accuracy: 0.9,
            },
        )
        .unwrap();
        kb.kb_set_landmarkers(
            "b",
            Landmarkers { decision_stump: 0.5, nearest_centroid: 0.6 },
        )
        .unwrap();
        assert_eq!(kb.kb_len(), 1);
        assert_eq!(kb.kb_n_runs(), 1);
        let rec = kb.kb_recommend(&mf, None, &QueryOptions::default()).unwrap();
        assert_eq!(rec, kb.recommend(&mf, &QueryOptions::default()));
        assert_eq!(kb.kb_describe(), "in-memory");
    }
}
