//! The SmartML knowledge base — the meta-learning store at the heart of the
//! paper's contribution.
//!
//! The KB holds, per processed dataset, its 25 meta-features together with
//! the performance and tuned configuration of every classifier run on it.
//! For a new dataset it answers two questions:
//!
//! 1. **Algorithm selection** — which classifiers should be tried, found by
//!    a weighted nearest-neighbour vote over meta-feature space. The paper's
//!    two-factor weighting is implemented exactly: a similarity factor
//!    (Euclidean distance over z-score-normalised meta-features) times a
//!    performance-magnitude factor, so "it may be better to select the top n
//!    performing algorithms on a single very similar dataset than selecting
//!    the first outperforming algorithm of n similar datasets".
//! 2. **Warm starts** — the best stored configurations of the nominated
//!    algorithms, used to initialise SMAC.
//!
//! The KB is continuously updated: every SmartML run calls
//! [`KnowledgeBase::record_run`], so the system "gets smarter by getting
//! more experience" (paper §1). Persistence is JSON on disk.

//! ```
//! use smartml_kb::{AlgorithmRun, KnowledgeBase, QueryOptions};
//! use smartml_classifiers::{Algorithm, ParamConfig};
//! use smartml_metafeatures::extract;
//! use smartml_data::synth::gaussian_blobs;
//!
//! let mut kb = KnowledgeBase::new();
//! let past = gaussian_blobs("past-task", 120, 4, 2, 0.8, 1);
//! let meta = extract(&past, &past.all_rows());
//! kb.record_run("past-task", &meta, AlgorithmRun {
//!     algorithm: Algorithm::Lda,
//!     config: ParamConfig::default(),
//!     accuracy: 0.94,
//! });
//!
//! // A similar new task: the KB nominates LDA with its stored config.
//! let new_task = gaussian_blobs("new-task", 130, 4, 2, 0.8, 2);
//! let query = extract(&new_task, &new_task.all_rows());
//! let rec = kb.recommend(&query, &QueryOptions::default());
//! assert_eq!(rec.algorithms[0].algorithm, Algorithm::Lda);
//! assert_eq!(rec.algorithms[0].warm_starts.len(), 1);
//! ```

mod backend;
mod query;
mod store;

pub use backend::KbBackend;
pub use query::{
    entry_distance, normalisation_stats_over, normalise, vote_ranked, AlgorithmRecommendation,
    NormStats, QueryOptions, Recommendation,
};
pub use store::{AlgorithmRun, KbEntry, KbError, KnowledgeBase};
