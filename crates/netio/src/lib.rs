//! `smartml-netio`: a zero-dependency event-driven I/O layer for Linux.
//!
//! The KB service (`smartmld`) moved from thread-per-connection blocking
//! I/O to event loops; this crate is the foundation it stands on. It is
//! deliberately small — four modules, no external crates, no `libc`:
//!
//! - [`sys`]: raw `epoll`/`eventfd`/`read`/`write`/`close` syscalls via
//!   inline assembly, with `-errno` folded into `io::Error`.
//! - [`poller`]: safe level-triggered readiness ([`Poller`], [`Token`],
//!   [`Interest`], [`Events`]).
//! - [`waker`]: cross-thread loop wakeup over an `eventfd` ([`Waker`]).
//! - [`timer`]: a hashed [`TimerWheel`] with lazy cancellation for idle
//!   and request deadlines.
//!
//! Sockets stay plain `std::net` types put into non-blocking mode; this
//! crate never owns them, it only watches their file descriptors. That
//! keeps the unsafe surface confined to `sys` and lets the server code
//! above read and write through the standard library.
//!
//! Only Linux is supported (epoll is Linux-specific); compiling the
//! crate elsewhere fails loudly rather than at first use.

#[cfg(not(target_os = "linux"))]
compile_error!("smartml-netio uses epoll/eventfd and only supports Linux targets");

pub mod poller;
pub mod sys;
pub mod timer;
pub mod waker;

pub use poller::{Event, Events, Interest, Poller, Token};
pub use timer::{CatchUpPacer, TimerId, TimerWheel};
pub use waker::Waker;
