//! Hashed timer wheel for connection deadlines.
//!
//! Each event loop owns one wheel and uses it for two things: idle
//! timeouts (kick connections that go silent) and request deadlines
//! (kick connections whose request has been in flight too long). The
//! loop asks [`TimerWheel::next_deadline`] how long `epoll_pwait` may
//! sleep, and calls [`TimerWheel::expire`] after every wait to collect
//! fired tokens.
//!
//! Cancellation is eager: the [`TimerId`] handle carries the tick it was
//! filed under, so cancelling is one short search of that slot. With the
//! re-arm-per-request pattern the wheel would otherwise accumulate one
//! stale entry per request for a whole timeout window (tens of seconds),
//! and every entry — stale or not — is weight that `next_deadline` and
//! slot scans drag along on every loop iteration.

use crate::poller::Token;
use std::time::{Duration, Instant};

/// Handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    id: u64,
    /// The (clamped) tick the entry was filed under — locates its slot
    /// so cancellation does not search the whole wheel.
    tick: u64,
}

struct Entry {
    /// Absolute tick at which the timer fires.
    tick: u64,
    id: u64,
    token: Token,
}

/// A fixed-slot hashed timer wheel. Resolution is `tick`; timers fire
/// at most one tick late (plus however long the loop takes to call
/// [`TimerWheel::expire`]).
pub struct TimerWheel {
    base: Instant,
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// Last tick fully processed by `expire`.
    cursor: u64,
    next_id: u64,
    live: usize,
}

impl TimerWheel {
    /// A wheel with the given resolution and slot count. Slot count
    /// only affects collision rates, not correctness.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        TimerWheel {
            base: Instant::now(),
            tick,
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            cursor: 0,
            next_id: 0,
            live: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.base);
        (since.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules `token` to fire at `deadline` (clamped to the next
    /// unprocessed tick, so deadlines in the past still fire — once).
    pub fn schedule(&mut self, deadline: Instant, token: Token) -> TimerId {
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { tick, id, token });
        self.live += 1;
        TimerId { id, tick }
    }

    /// Removes a timer from its slot. Safe to call for already-fired
    /// ids — the entry is gone, so this is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        let slot = (id.tick % self.slots.len() as u64) as usize;
        if let Some(pos) = self.slots[slot].iter().position(|e| e.id == id.id) {
            self.slots[slot].swap_remove(pos);
            self.live -= 1;
        }
    }

    /// Collects every timer due at or before `now` into `fired`.
    /// Returns the number of tokens appended.
    pub fn expire(&mut self, now: Instant, fired: &mut Vec<Token>) -> usize {
        let target = self.tick_of(now);
        if target <= self.cursor && self.cursor != 0 {
            return 0;
        }
        let before = fired.len();
        let nslots = self.slots.len() as u64;
        // A long sleep can skip more ticks than the wheel has slots; one
        // pass over every slot then covers all of them.
        let span = (target - self.cursor).min(nslots);
        for step in 0..=span {
            let tick = self.cursor + step;
            let slot = (tick % nslots) as usize;
            self.slots[slot].retain(|entry| {
                if entry.tick > target {
                    return true;
                }
                fired.push(entry.token);
                self.live -= 1;
                false
            });
        }
        self.cursor = target;
        fired.len() - before
    }

    /// Earliest live deadline, as an `Instant`, or `None` when the
    /// wheel is empty. The loop turns this into its epoll timeout.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.live == 0 {
            return None;
        }
        let mut min_tick: Option<u64> = None;
        for slot in &self.slots {
            for entry in slot {
                if min_tick.map_or(true, |m| entry.tick < m) {
                    min_tick = Some(entry.tick);
                }
            }
        }
        min_tick.map(|t| self.base + self.tick.mul_f64(t as f64))
    }

    /// Number of scheduled, un-cancelled timers.
    pub fn live(&self) -> usize {
        self.live
    }
}

/// Paces a replication catch-up loop.
///
/// Two concerns, one clock: a hard per-round deadline (a replica that
/// cannot catch up within it reports stale rather than spinning
/// forever), and an idle-poll delay that grows geometrically from
/// `min_poll` to `max_poll` while the primary is quiet, snapping back to
/// `min_poll` the moment a pull makes progress. The caller drives it:
/// [`CatchUpPacer::progressed`] after applying bytes,
/// [`CatchUpPacer::idle_delay`] when a pull returned nothing new, and
/// [`CatchUpPacer::expired`] before each pull.
#[derive(Debug)]
pub struct CatchUpPacer {
    deadline: Option<Instant>,
    min_poll: Duration,
    max_poll: Duration,
    current: Duration,
}

impl CatchUpPacer {
    /// A pacer for one catch-up round starting `now`. `round` of `None`
    /// never expires. `min_poll` must be non-zero; `max_poll` is clamped
    /// up to at least `min_poll`.
    pub fn new(
        now: Instant,
        round: Option<Duration>,
        min_poll: Duration,
        max_poll: Duration,
    ) -> CatchUpPacer {
        assert!(!min_poll.is_zero(), "catch-up pacer needs a non-zero minimum poll");
        CatchUpPacer {
            deadline: round.map(|r| now + r),
            min_poll,
            max_poll: max_poll.max(min_poll),
            current: min_poll,
        }
    }

    /// Has the round's deadline passed?
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|dl| now >= dl)
    }

    /// A pull applied new bytes: snap the idle delay back to the floor.
    pub fn progressed(&mut self) {
        self.current = self.min_poll;
    }

    /// A pull found nothing new: how long to sleep before the next one.
    /// Returns the current delay (clipped so it never overshoots the
    /// deadline), or `None` when the deadline leaves no room to sleep.
    /// Each idle call doubles the next delay, up to `max_poll`.
    pub fn idle_delay(&mut self, now: Instant) -> Option<Duration> {
        let delay = self.current;
        self.current = (self.current * 2).min(self.max_poll);
        match self.deadline {
            None => Some(delay),
            Some(dl) => {
                let room = dl.saturating_duration_since(now);
                if room.is_zero() {
                    None
                } else {
                    Some(delay.min(room))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel_ms() -> TimerWheel {
        TimerWheel::new(Duration::from_millis(1), 64)
    }

    #[test]
    fn catch_up_pacer_backs_off_while_idle_and_snaps_back_on_progress() {
        let start = Instant::now();
        let mut pacer = CatchUpPacer::new(
            start,
            None,
            Duration::from_millis(10),
            Duration::from_millis(80),
        );
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(10)));
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(20)));
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(40)));
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(80)));
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(80)), "capped");
        pacer.progressed();
        assert_eq!(pacer.idle_delay(start), Some(Duration::from_millis(10)), "snap back");
        assert!(!pacer.expired(start + Duration::from_secs(3600)), "no deadline, never expires");
    }

    #[test]
    fn catch_up_pacer_deadline_bounds_the_round() {
        let start = Instant::now();
        let mut pacer = CatchUpPacer::new(
            start,
            Some(Duration::from_millis(100)),
            Duration::from_millis(40),
            Duration::from_millis(400),
        );
        assert!(!pacer.expired(start + Duration::from_millis(99)));
        assert!(pacer.expired(start + Duration::from_millis(100)));
        // Sleeps are clipped to the remaining room, then refused.
        assert_eq!(pacer.idle_delay(start + Duration::from_millis(90)), Some(Duration::from_millis(10)));
        assert_eq!(pacer.idle_delay(start + Duration::from_millis(100)), None);
    }

    #[test]
    fn timers_fire_in_deadline_order_and_only_once() {
        let mut wheel = wheel_ms();
        let start = Instant::now();
        wheel.schedule(start + Duration::from_millis(5), Token(2));
        wheel.schedule(start + Duration::from_millis(2), Token(1));
        wheel.schedule(start + Duration::from_millis(500), Token(3));

        let mut fired = Vec::new();
        assert_eq!(wheel.expire(start + Duration::from_millis(1), &mut fired), 0);
        assert_eq!(wheel.expire(start + Duration::from_millis(3), &mut fired), 1);
        assert_eq!(fired, vec![Token(1)]);
        assert_eq!(wheel.expire(start + Duration::from_millis(10), &mut fired), 1);
        assert_eq!(fired, vec![Token(1), Token(2)]);
        // Nothing re-fires.
        assert_eq!(wheel.expire(start + Duration::from_millis(20), &mut fired), 0);
        assert_eq!(wheel.live(), 1);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut wheel = wheel_ms();
        let start = Instant::now();
        let id = wheel.schedule(start + Duration::from_millis(2), Token(1));
        wheel.schedule(start + Duration::from_millis(2), Token(2));
        wheel.cancel(id);
        assert_eq!(wheel.live(), 1);
        let mut fired = Vec::new();
        wheel.expire(start + Duration::from_millis(5), &mut fired);
        assert_eq!(fired, vec![Token(2)]);
    }

    #[test]
    fn wrap_around_far_future_and_long_sleeps() {
        // 8 slots × 1ms: a 100ms timer wraps the wheel many times and
        // must not fire early; a long gap between expire calls must
        // still collect everything exactly once.
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let start = Instant::now();
        wheel.schedule(start + Duration::from_millis(100), Token(9));
        wheel.schedule(start + Duration::from_millis(3), Token(1));
        let mut fired = Vec::new();
        wheel.expire(start + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec![Token(1)], "far timer must not fire on wrap collision");
        wheel.expire(start + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![Token(1), Token(9)]);
        assert_eq!(wheel.live(), 0);
    }

    #[test]
    fn next_deadline_tracks_earliest_live_timer() {
        let mut wheel = wheel_ms();
        let start = Instant::now();
        assert!(wheel.next_deadline().is_none());
        let early = wheel.schedule(start + Duration::from_millis(3), Token(1));
        wheel.schedule(start + Duration::from_millis(30), Token(2));
        let dl = wheel.next_deadline().unwrap();
        assert!(dl <= start + Duration::from_millis(4));
        wheel.cancel(early);
        let dl = wheel.next_deadline().unwrap();
        assert!(dl >= start + Duration::from_millis(29));
    }

    #[test]
    fn rearm_churn_leaves_no_stale_entries() {
        // The serving pattern: every request cancels the connection's
        // deadline and schedules a new one. The wheel must not retain
        // the cancelled entries — they would otherwise pile up for a
        // whole timeout window and slow every loop iteration.
        let mut wheel = wheel_ms();
        let start = Instant::now();
        let mut id = wheel.schedule(start + Duration::from_secs(10), Token(1));
        for _ in 0..50_000 {
            wheel.cancel(id);
            id = wheel.schedule(start + Duration::from_secs(10), Token(1));
        }
        assert_eq!(wheel.live(), 1);
        let entries: usize = wheel.slots.iter().map(Vec::len).sum();
        assert_eq!(entries, 1, "cancelled entries must be removed eagerly");
    }

    #[test]
    fn cancel_after_fire_keeps_live_count_exact() {
        let mut wheel = wheel_ms();
        let start = Instant::now();
        let fired_id = wheel.schedule(start + Duration::from_millis(1), Token(1));
        wheel.schedule(start + Duration::from_millis(500), Token(2));
        let mut fired = Vec::new();
        wheel.expire(start + Duration::from_millis(5), &mut fired);
        assert_eq!(fired, vec![Token(1)]);
        // Cancelling the already-fired timer must not decrement `live`
        // for the still-scheduled one (which next_deadline relies on).
        wheel.cancel(fired_id);
        assert_eq!(wheel.live(), 1);
        assert!(wheel.next_deadline().is_some());
    }

    #[test]
    fn past_deadlines_fire_on_next_expire() {
        let mut wheel = wheel_ms();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(3));
        wheel.expire(Instant::now(), &mut Vec::new());
        wheel.schedule(start, Token(7)); // already in the past
        let mut fired = Vec::new();
        std::thread::sleep(Duration::from_millis(2));
        wheel.expire(Instant::now(), &mut fired);
        assert_eq!(fired, vec![Token(7)]);
    }
}
