//! [`Poller`]: a safe, level-triggered readiness queue over `epoll`.
//!
//! Level-triggered on purpose: a socket that still holds unread bytes
//! (or unflushed writable space) keeps reporting ready, so a handler
//! that processes *some* of the work and returns is never silently
//! starved — the simplest correctness contract for a from-scratch event
//! loop. The cost (spurious wakeups if a handler ignores readiness) is
//! handled by registering interest only in what the connection actually
//! wants: `EPOLLOUT` is armed only while a write buffer is non-empty.

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and returned
/// with every event for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Write-only interest — a connection paused by read backpressure
    /// that still has a response backlog to flush.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Both directions — a connection mid-flush that may also pipeline.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither direction. The fd stays registered (hangups still
    /// surface) but produces no read/write events.
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn bits(self) -> u32 {
        // RDHUP is always on: a peer closing its write half must wake
        // the loop even when the handler paused reads, or the teardown
        // would wait for the idle timer.
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// Bytes are waiting (or the peer hung up with data pending).
    pub readable: bool,
    /// The socket can accept writes.
    pub writable: bool,
    /// Error or hangup: the connection is dead or dying; handlers
    /// should read to EOF (readable is usually also set) and tear down.
    pub closed: bool,
}

/// Reusable event buffer for [`Poller::wait`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: vec![sys::EpollEvent::zeroed(); capacity.max(1)], len: 0 }
    }

    /// Events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (packed on x86_64) kernel struct before use.
            let bits = e.events;
            Event {
                token: Token(e.data),
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the last wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance owning its fd.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh epoll instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { epfd: sys::epoll_create()? })
    }

    /// Registers `fd` with the given interest. The fd must stay open
    /// until [`Poller::deregister`] (the kernel auto-removes closed fds,
    /// but relying on that hides bugs).
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: interest.bits(), data: token.0 };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd.as_raw_fd(), &mut ev)
    }

    /// Replaces the interest set of an already-registered fd.
    pub fn reregister(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: interest.bits(), data: token.0 };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd.as_raw_fd(), &mut ev)
    }

    /// Removes an fd from the interest list.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent::zeroed();
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), &mut ev)
    }

    /// Blocks until at least one event arrives or `timeout` elapses
    /// (`None` = wait forever). Returns the number of events captured
    /// into `events`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 100µs deadline does not spin on timeout 0.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32 + i32::from(t.subsec_nanos() % 1_000_000 != 0),
            None => -1,
        };
        events.len = sys::epoll_wait(self.epfd, &mut events.buf, timeout_ms)?;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

impl AsRawFd for Poller {
    fn as_raw_fd(&self) -> RawFd {
        self.epfd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_is_level_triggered_until_drained() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(7), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short wait times out.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        a.write_all(b"ping").unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, Token(7));
        assert!(ev.readable && !ev.closed);

        // Level-triggered: un-drained bytes keep reporting.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap(), 1);
        let mut buf = [0u8; 16];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn interest_changes_take_effect() {
        let (mut a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(1), Interest::NONE).unwrap();
        let mut events = Events::with_capacity(8);
        a.write_all(b"x").unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        poller.reregister(&b, Token(1), Interest::READABLE).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        poller.deregister(&b).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
    }

    #[test]
    fn writable_reported_for_fresh_socket_and_hangup_on_close() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(&b, Token(2), Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(events.iter().next().unwrap().writable);

        // Peer close surfaces even with write-only interest (RDHUP).
        drop(a);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(events.iter().next().unwrap().closed);
    }
}
