//! Cross-thread event-loop wakeup via `eventfd`.
//!
//! A shard loop sleeps in `epoll_pwait`; any other thread (the acceptor
//! handing off a connection, a writer routing a record, the shutdown
//! path) needs a way to interrupt that sleep. The eventfd is registered
//! with the loop's poller like any socket; writing to it makes the loop
//! runnable, and because the fd is non-blocking and counts coalesce,
//! `wake` is cheap, lock-free, and safe to call from many threads at
//! once.

use crate::poller::{Interest, Poller, Token};
use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// A cloneable handle that can interrupt a sleeping [`Poller::wait`].
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates an eventfd and registers it with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let fd = sys::eventfd()?;
        let waker = Waker { fd };
        poller.register(&waker, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Makes the owning loop's next (or current) `wait` return. Multiple
    /// wakes before the loop drains coalesce into one readable event.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write(self.fd, &1u64.to_ne_bytes()) {
            Ok(_) => Ok(()),
            // Counter saturated (u64::MAX - 1 pending wakes): the loop
            // is certainly already runnable, nothing to do.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wake counts. Call from the loop when the waker's
    /// token reports readable; under level-triggered epoll an un-drained
    /// eventfd would wake the loop forever.
    pub fn drain(&self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        match sys::read(self.fd, &mut buf) {
            Ok(_) => Ok(u64::from_ne_bytes(buf)),
            // Raced with another drain, or a spurious wakeup: fine.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close(self.fd);
    }
}

// The fd is just written from other threads; eventfd writes are atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::Events;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_interrupts_wait_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller, Token(0)).unwrap());
        let mut events = Events::with_capacity(4);

        let w = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake().unwrap();
            w.wake().unwrap();
            w.wake().unwrap();
        });

        // Would block forever if the wake never lands.
        assert_eq!(poller.wait(&mut events, None).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, Token(0));
        handle.join().unwrap();
        assert_eq!(waker.drain().unwrap(), 3, "three wakes coalesce into one event");

        // Drained: the loop goes back to sleep.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
        assert_eq!(waker.drain().unwrap(), 0);
    }
}
