//! Raw Linux syscalls for the event loop: `epoll`, `eventfd`, and the
//! `read`/`write`/`close` trio needed to service them.
//!
//! The repo's discipline is zero external dependencies, so there is no
//! `libc` to lean on; each syscall is issued directly with inline
//! assembly (`syscall` on x86_64, `svc 0` on aarch64). The surface is
//! deliberately tiny — exactly the five calls the poller and waker need
//! — and every wrapper converts the kernel's `-errno` convention into
//! `std::io::Error` at the boundary so nothing above this module ever
//! sees a raw return value.

#![allow(clippy::missing_safety_doc)]

use std::io;

/// `epoll_event.events` bit: readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` bit: writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` bit: error condition.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` bit: hangup.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` bit: peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

/// `epoll_create1` flag: close-on-exec (same value as `O_CLOEXEC`).
const EPOLL_CLOEXEC: usize = 0o2000000;
/// `eventfd2` flags: close-on-exec + non-blocking.
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

/// The kernel's `struct epoll_event`. x86_64 packs it to 4-byte
/// alignment (a wart inherited from the 32-bit ABI); every other
/// architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

// Syscall numbers differ per architecture; aarch64 dropped the plain
// `epoll_wait`/`eventfd` variants, so the flag-taking successors are
// used everywhere.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Folds the kernel's `-errno` return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `EINTR`-retrying wrapper: interrupted calls are repeated, everything
/// else surfaces. Used for the blocking-capable calls (`epoll_pwait`).
fn check_eintr(mut call: impl FnMut() -> isize) -> io::Result<usize> {
    loop {
        match check(call()) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)` → epoll fd.
pub fn epoll_create() -> io::Result<i32> {
    let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
    Ok(fd as i32)
}

/// `epoll_ctl(epfd, op, fd, &event)`. `event` is ignored for `DEL` but
/// passed anyway (pre-2.6.9 kernels required it; harmless since).
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: &mut EpollEvent) -> io::Result<()> {
    check(unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op as usize,
            fd as usize,
            event as *mut EpollEvent as usize,
            0,
            0,
        )
    })?;
    Ok(())
}

/// `epoll_pwait(epfd, events, maxevents, timeout_ms, NULL, 0)` → number
/// of ready events. `timeout_ms = -1` blocks indefinitely; interrupted
/// waits are retried.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    check_eintr(|| unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0, // sigmask: NULL (plain epoll_wait semantics)
            8, // sigsetsize, ignored for a NULL mask but validated ≥ 0
        )
    })
}

/// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)` → eventfd.
pub fn eventfd() -> io::Result<i32> {
    let fd = check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
    Ok(fd as i32)
}

/// `read(fd, buf)`.
pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    check(unsafe { syscall6(nr::READ, fd as usize, buf.as_mut_ptr() as usize, buf.len(), 0, 0, 0) })
}

/// `write(fd, buf)`.
pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
    check(unsafe { syscall6(nr::WRITE, fd as usize, buf.as_ptr() as usize, buf.len(), 0, 0, 0) })
}

/// `close(fd)`. Errors are swallowed — the fd is gone either way, and
/// the callers are `Drop` impls.
pub fn close(fd: i32) {
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close() {
        let fd = epoll_create().expect("epoll_create1");
        assert!(fd >= 0);
        close(fd);
    }

    #[test]
    fn eventfd_read_write_roundtrip() {
        let fd = eventfd().expect("eventfd2");
        // Non-blocking read of an empty eventfd: EAGAIN.
        let mut buf = [0u8; 8];
        let err = read(fd, &mut buf).expect_err("empty eventfd must not be readable");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Write a count, read it back.
        write(fd, &1u64.to_ne_bytes()).expect("eventfd write");
        write(fd, &2u64.to_ne_bytes()).expect("eventfd write");
        assert_eq!(read(fd, &mut buf).expect("eventfd read"), 8);
        assert_eq!(u64::from_ne_bytes(buf), 3, "eventfd accumulates counts");
        close(fd);
    }

    #[test]
    fn bad_fd_surfaces_as_io_error() {
        let mut ev = EpollEvent::zeroed();
        let err = epoll_ctl(-1, EPOLL_CTL_ADD, 0, &mut ev).expect_err("bad epfd");
        assert_eq!(err.raw_os_error(), Some(9), "EBADF expected, got {err}");
    }

    #[test]
    fn epoll_wait_times_out() {
        let fd = epoll_create().unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let started = std::time::Instant::now();
        let n = epoll_wait(fd, &mut events, 20).expect("wait");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= std::time::Duration::from_millis(15));
        close(fd);
    }
}
