//! Knowledge-base bootstrapping — the paper seeds SmartML's KB with 50
//! datasets "from various sources including OpenML, UCI repository and
//! Kaggle"; here the 50-dataset synthetic corpus plays that role
//! (`DESIGN.md`, substitution 1).

use smartml_classifiers::Algorithm;
use smartml_data::{accuracy, train_valid_split, Dataset};
use smartml_kb::{AlgorithmRun, KnowledgeBase};
use smartml_metafeatures::{extract, landmarkers, Landmarkers, MetaFeatures};
use smartml_runtime::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How thoroughly each corpus dataset is explored during bootstrap.
#[derive(Debug, Clone)]
pub struct BootstrapProfile {
    /// Algorithms evaluated per dataset.
    pub algorithms: Vec<Algorithm>,
    /// Configurations per algorithm (first is always the default).
    pub configs_per_algorithm: usize,
    /// Validation fraction for the holdout evaluation.
    pub valid_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for BootstrapProfile {
    fn default() -> Self {
        BootstrapProfile {
            algorithms: Algorithm::ALL.to_vec(),
            configs_per_algorithm: 3,
            valid_fraction: 0.3,
            seed: 2019,
        }
    }
}

impl BootstrapProfile {
    /// A cheap profile for tests: few fast algorithms, default configs only.
    pub fn fast() -> Self {
        BootstrapProfile {
            algorithms: vec![
                Algorithm::Knn,
                Algorithm::NaiveBayes,
                Algorithm::Rpart,
                Algorithm::Lda,
            ],
            configs_per_algorithm: 1,
            valid_fraction: 0.3,
            seed: 2019,
        }
    }
}

/// One corpus dataset's bootstrap result, computed on the side so several
/// datasets can be evaluated concurrently and merged in corpus order.
struct DatasetEvaluation {
    name: String,
    meta: MetaFeatures,
    runs: Vec<AlgorithmRun>,
    marks: Landmarkers,
}

impl DatasetEvaluation {
    fn record_into(self, kb: &mut KnowledgeBase) {
        for run in self.runs {
            kb.record_run(&self.name, &self.meta, run);
        }
        kb.set_landmarkers(&self.name, self.marks);
    }
}

/// Evaluates the profile's algorithm × configuration grid on one dataset.
/// All randomness derives from `profile.seed` and the dataset itself, so
/// evaluations of different datasets are order-independent.
fn evaluate_dataset(data: &Dataset, profile: &BootstrapProfile) -> DatasetEvaluation {
    let (train, valid) = train_valid_split(data, profile.valid_fraction, profile.seed);
    let meta = extract(data, &train);
    let marks = landmarkers(data, &train);
    let mut rng = StdRng::seed_from_u64(profile.seed ^ data.n_rows() as u64);
    let mut runs = Vec::new();
    for &algorithm in &profile.algorithms {
        let space = algorithm.param_space();
        let mut configs = vec![space.default_config()];
        for _ in 1..profile.configs_per_algorithm {
            configs.push(space.sample(&mut rng));
        }
        for config in configs {
            let clf = algorithm.build(&config);
            let Ok(model) = clf.fit(data, &train) else { continue };
            let acc = accuracy(&data.labels_for(&valid), &model.predict(data, &valid));
            runs.push(AlgorithmRun { algorithm, config, accuracy: acc });
        }
    }
    DatasetEvaluation { name: data.name.clone(), meta, runs, marks }
}

/// Evaluates the profile's algorithm × configuration grid on one dataset and
/// records every successful run into `kb`.
pub fn bootstrap_dataset(kb: &mut KnowledgeBase, data: &Dataset, profile: &BootstrapProfile) {
    evaluate_dataset(data, profile).record_into(kb);
}

/// Bootstraps a KB over the standard 50-dataset corpus, using every
/// available core. The KB content is identical to a serial bootstrap.
pub fn bootstrap_kb(profile: &BootstrapProfile) -> KnowledgeBase {
    bootstrap_kb_with(profile, Pool::auto())
}

/// [`bootstrap_kb`] with an explicit worker pool. Corpus datasets are
/// generated and evaluated concurrently — each from its own seed — and the
/// results are merged in corpus order, so the KB is identical for any pool
/// width.
pub fn bootstrap_kb_with(profile: &BootstrapProfile, pool: Pool) -> KnowledgeBase {
    let corpus = smartml_data::synth::kb_bootstrap_corpus();
    let evaluations = pool.map_indexed(corpus, |i, (name, spec)| {
        let data = spec.generate(&name, profile.seed ^ i as u64);
        evaluate_dataset(&data, profile)
    });
    let mut kb = KnowledgeBase::new();
    for evaluation in evaluations {
        evaluation.record_into(&mut kb);
    }
    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn bootstrap_one_dataset_records_runs() {
        let mut kb = KnowledgeBase::new();
        let d = gaussian_blobs("boot", 120, 3, 2, 0.8, 1);
        bootstrap_dataset(&mut kb, &d, &BootstrapProfile::fast());
        assert_eq!(kb.len(), 1);
        assert_eq!(kb.n_runs(), 4); // 4 fast algorithms x 1 config
        let entry = kb.get("boot").unwrap();
        assert!(entry.best_run().unwrap().accuracy > 0.5);
        // Landmarkers travel with the entry (extended-similarity mode).
        let marks = entry.landmarkers.expect("landmarkers recorded");
        assert!((0.0..=1.0).contains(&marks.decision_stump));
        assert!((0.0..=1.0).contains(&marks.nearest_centroid));
    }

    #[test]
    fn multiple_configs_recorded() {
        let mut kb = KnowledgeBase::new();
        let d = gaussian_blobs("boot2", 100, 3, 2, 1.0, 2);
        let profile = BootstrapProfile {
            algorithms: vec![Algorithm::Knn],
            configs_per_algorithm: 3,
            ..BootstrapProfile::fast()
        };
        bootstrap_dataset(&mut kb, &d, &profile);
        assert_eq!(kb.n_runs(), 3);
    }
}
