//! The language-agnostic request/response API.
//!
//! The paper exposes SmartML "as a Web application … designed to be
//! programming-language agnostic so that it can be embedded in any
//! programming language using its available REST APIs". This module is that
//! surface without the HTTP transport: JSON in, JSON out
//! (`DESIGN.md`, substitution 4). Any web framework can mount
//! [`handle_json`] directly.

use crate::options::{Budget, SmartMlOptions};
use crate::pipeline::SmartML;
use crate::report::RunReport;
use serde::{Deserialize, Serialize};
use smartml_data::io::{parse_arff, parse_csv};
use smartml_kb::{KnowledgeBase, QueryOptions};
use smartml_metafeatures::{MetaFeatures, N_META_FEATURES, NAMES};
use smartml_preprocess::Op;

/// Dataset payload formats the paper accepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DatasetPayload {
    /// CSV text; last column (or `target`) is the label.
    Csv { content: String, target: Option<String> },
    /// ARFF text; last attribute is the label.
    Arff { content: String },
}

impl DatasetPayload {
    fn parse(&self, name: &str) -> Result<smartml_data::Dataset, String> {
        match self {
            DatasetPayload::Csv { content, target } => {
                parse_csv(name, content, target.as_deref()).map_err(|e| e.to_string())
            }
            DatasetPayload::Arff { content } => parse_arff(name, content).map_err(|e| e.to_string()),
        }
    }
}

/// Experiment options mirroring the Figure-2 configuration screen.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ExperimentOptions {
    /// Preprocessing op names (paper Table 2: "center", "pca", …).
    #[serde(default)]
    pub preprocessing: Vec<String>,
    /// Keep only the top-k features (feature selection toggle).
    #[serde(default)]
    pub feature_selection: Option<usize>,
    /// Tuning budget in trials.
    #[serde(default)]
    pub budget_trials: Option<usize>,
    /// Tuning budget in seconds (overrides trials when set).
    #[serde(default)]
    pub budget_seconds: Option<f64>,
    /// Number of algorithms to nominate.
    #[serde(default)]
    pub top_n_algorithms: Option<usize>,
    /// Request a weighted ensemble.
    #[serde(default)]
    pub ensembling: bool,
    /// Request permutation feature importance.
    #[serde(default)]
    pub interpretability: bool,
    /// Random seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Worker threads (`0` or absent = all cores, `1` = serial). The
    /// result is identical for any thread count at a fixed seed.
    #[serde(default)]
    pub n_threads: Option<usize>,
    /// Per-trial watchdog deadline in seconds (absent = no limit).
    #[serde(default)]
    pub trial_timeout_seconds: Option<f64>,
    /// Circuit-breaker threshold: consecutive faulted trials before an
    /// algorithm is tripped (absent = default, `0` = disabled).
    #[serde(default)]
    pub breaker_threshold: Option<usize>,
    /// Phase-4 optimiser: `smac` (default), `grid`, `random`, `tpe`,
    /// `halving`, `hyperband` or `asha`.
    #[serde(default)]
    pub optimizer: Option<String>,
    /// Multi-fidelity reduction factor η (≥ 2) for `halving`,
    /// `hyperband` and `asha`.
    #[serde(default)]
    pub halving_eta: Option<usize>,
    /// Span-ring capacity while tracing (absent = `SMARTML_TRACE_RING`
    /// env, then the obs default).
    #[serde(default)]
    pub trace_ring_capacity: Option<usize>,
}

impl ExperimentOptions {
    /// Lowers the wire-level options into validated [`SmartMlOptions`].
    /// Public so other front-ends (the job service) resolve a request
    /// through exactly the same defaults as this API and the CLI.
    pub fn build(&self) -> Result<SmartMlOptions, String> {
        let mut ops = Vec::new();
        for name in &self.preprocessing {
            match Op::parse(name) {
                Some(op) => ops.push(op),
                None => return Err(format!("unknown preprocessing op '{name}'")),
            }
        }
        if ops.is_empty() {
            ops.push(Op::Zv);
        }
        let mut options = SmartMlOptions::default().with_preprocessing(ops);
        options.feature_selection = self.feature_selection;
        if let Some(secs) = self.budget_seconds {
            if !secs.is_finite() {
                return Err(format!("budget_seconds must be finite, got {secs}"));
            }
            options.budget = Budget::Time(std::time::Duration::from_secs_f64(secs.max(0.1)));
        } else if let Some(trials) = self.budget_trials {
            options.budget = Budget::Trials(trials.max(3));
        }
        if let Some(secs) = self.trial_timeout_seconds {
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!(
                    "trial_timeout_seconds must be positive and finite, got {secs}"
                ));
            }
            options.trial_timeout = Some(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(k) = self.breaker_threshold {
            options.breaker_threshold = k;
        }
        if let Some(n) = self.top_n_algorithms {
            options = options.with_top_n(n);
        }
        options.ensembling = self.ensembling;
        options.interpretability = self.interpretability;
        if let Some(seed) = self.seed {
            options = options.with_seed(seed);
        }
        if let Some(n) = self.n_threads {
            options = options.with_n_threads(n);
        }
        if let Some(name) = &self.optimizer {
            options = options.with_optimizer(crate::options::OptimizerChoice::parse(name)?);
        }
        if let Some(eta) = self.halving_eta {
            if eta < 2 {
                return Err(format!("halving_eta must be at least 2, got {eta}"));
            }
            options = options.with_halving_eta(eta);
        }
        if let Some(cap) = self.trace_ring_capacity {
            if cap == 0 {
                return Err("trace_ring_capacity must be non-zero".into());
            }
            options = options.with_trace_ring_capacity(Some(cap));
        }
        Ok(options)
    }
}

/// API requests (the REST endpoint set).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum Request {
    /// Full pipeline: selection + tuning (the main endpoint).
    RunExperiment {
        /// Dataset name.
        name: String,
        /// Dataset content.
        dataset: DatasetPayload,
        /// Experiment options.
        #[serde(default)]
        options: ExperimentOptions,
    },
    /// Extract the 25 meta-features only.
    ExtractMetaFeatures {
        /// Dataset name.
        name: String,
        /// Dataset content.
        dataset: DatasetPayload,
    },
    /// Algorithm selection only, from a meta-features vector (the paper:
    /// "it is possible to upload only the dataset meta-features file
    /// instead of the whole dataset").
    SelectAlgorithms {
        /// The 25 meta-feature values, in canonical order.
        meta_features: Vec<f64>,
        /// How many algorithms to nominate.
        #[serde(default)]
        top_n: Option<usize>,
    },
    /// Knowledge-base statistics.
    KbInfo,
    /// The classifier registry (paper Table 3) — what a UI's algorithm
    /// picker shows.
    ListAlgorithms,
    /// The preprocessing operations (paper Table 2) — what a UI's
    /// preprocessing picker shows.
    ListPreprocessing,
}

/// API responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum Response {
    /// A completed experiment.
    Experiment {
        /// The full run report.
        report: Box<RunReport>,
    },
    /// Extracted meta-features, `(name, value)` pairs.
    MetaFeatures {
        /// Named values in canonical order.
        features: Vec<(String, f64)>,
    },
    /// Nominated algorithms with scores.
    Algorithms {
        /// `(paper name, vote score)`, best first.
        nominated: Vec<(String, f64)>,
    },
    /// KB statistics.
    Kb {
        /// Datasets known.
        datasets: usize,
        /// Total recorded runs.
        runs: usize,
    },
    /// The classifier registry.
    AlgorithmList {
        /// `(paper name, categorical params, numeric params)`.
        algorithms: Vec<(String, usize, usize)>,
    },
    /// The preprocessing registry.
    PreprocessingList {
        /// `(paper name, description)`.
        operations: Vec<(String, String)>,
    },
    /// A failure.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Dispatches one request against an engine state.
pub fn handle(kb: &mut KnowledgeBase, request: Request) -> Response {
    match request {
        Request::RunExperiment { name, dataset, options } => {
            let data = match dataset.parse(&name) {
                Ok(d) => d,
                Err(message) => return Response::Error { message },
            };
            let opts = match options.build() {
                Ok(o) => o,
                Err(message) => return Response::Error { message },
            };
            let mut engine = SmartML::with_kb(std::mem::take(kb), opts);
            let result = engine.run(&data);
            *kb = engine.into_kb();
            match result {
                Ok(outcome) => Response::Experiment { report: Box::new(outcome.report) },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::ExtractMetaFeatures { name, dataset } => match dataset.parse(&name) {
            Ok(data) => {
                let mf = smartml_metafeatures::extract(&data, &data.all_rows());
                Response::MetaFeatures {
                    features: NAMES
                        .iter()
                        .map(|s| s.to_string())
                        .zip(mf.values.iter().copied())
                        .collect(),
                }
            }
            Err(message) => Response::Error { message },
        },
        Request::SelectAlgorithms { meta_features, top_n } => {
            if meta_features.len() != N_META_FEATURES {
                return Response::Error {
                    message: format!(
                        "expected {N_META_FEATURES} meta-features, got {}",
                        meta_features.len()
                    ),
                };
            }
            let mf = MetaFeatures { values: meta_features };
            let rec = kb.recommend(
                &mf,
                &QueryOptions { top_n: top_n.unwrap_or(3), ..Default::default() },
            );
            Response::Algorithms {
                nominated: rec
                    .algorithms
                    .iter()
                    .map(|a| (a.algorithm.paper_name().to_string(), a.score))
                    .collect(),
            }
        }
        Request::KbInfo => Response::Kb { datasets: kb.len(), runs: kb.n_runs() },
        Request::ListAlgorithms => Response::AlgorithmList {
            algorithms: smartml_classifiers::Algorithm::ALL
                .iter()
                .map(|a| {
                    let spec = a.spec();
                    (a.paper_name().to_string(), spec.n_categorical, spec.n_numeric)
                })
                .collect(),
        },
        Request::ListPreprocessing => Response::PreprocessingList {
            operations: Op::ALL
                .iter()
                .map(|op| (op.paper_name().to_string(), op.description().to_string()))
                .collect(),
        },
    }
}

/// JSON-in / JSON-out entry point (the "REST" surface).
pub fn handle_json(kb: &mut KnowledgeBase, request_json: &str) -> String {
    let response = match serde_json::from_str::<Request>(request_json) {
        Ok(request) => handle(kb, request),
        Err(e) => Response::Error { message: format!("bad request: {e}") },
    };
    serde_json::to_string_pretty(&response).expect("response serialisation cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
a,b,y
1.0,2.0,x
1.1,2.2,x
4.8,5.2,z
5.0,5.0,z
1.2,2.1,x
4.9,5.1,z
1.3,1.9,x
5.1,4.9,z
0.9,2.3,x
5.2,5.3,z
1.0,2.4,x
4.7,5.4,z
1.4,2.2,x
4.6,4.8,z
1.1,1.8,x
5.3,5.2,z
0.8,2.0,x
4.5,5.0,z
1.2,2.3,x
5.0,4.7,z
1.05,2.15,x
4.85,5.05,z
1.15,2.05,x
4.95,5.15,z
";

    #[test]
    fn metafeatures_endpoint() {
        let mut kb = KnowledgeBase::new();
        let resp = handle(
            &mut kb,
            Request::ExtractMetaFeatures {
                name: "toy".into(),
                dataset: DatasetPayload::Csv { content: CSV.into(), target: None },
            },
        );
        match resp {
            Response::MetaFeatures { features } => {
                assert_eq!(features.len(), N_META_FEATURES);
                assert_eq!(features[0].0, "n_instances");
                assert_eq!(features[0].1, 24.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_experiment_endpoint_and_kb_update() {
        let mut kb = KnowledgeBase::new();
        let resp = handle(
            &mut kb,
            Request::RunExperiment {
                name: "toy".into(),
                dataset: DatasetPayload::Csv { content: CSV.into(), target: None },
                options: ExperimentOptions {
                    budget_trials: Some(6),
                    top_n_algorithms: Some(2),
                    n_threads: Some(2),
                    ..Default::default()
                },
            },
        );
        match resp {
            Response::Experiment { report } => {
                assert!(report.best.validation_accuracy > 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The KB grew (Figure 1's update arrow crossed the API boundary).
        match handle(&mut kb, Request::KbInfo) {
            Response::Kb { datasets, runs } => {
                assert_eq!(datasets, 1);
                assert!(runs >= 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_algorithms_validates_length() {
        let mut kb = KnowledgeBase::new();
        let resp = handle(
            &mut kb,
            Request::SelectAlgorithms { meta_features: vec![1.0; 3], top_n: None },
        );
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn bad_json_yields_error_response() {
        let mut kb = KnowledgeBase::new();
        let out = handle_json(&mut kb, "{nope");
        assert!(out.contains("\"status\""));
        assert!(out.contains("error"));
    }

    #[test]
    fn json_roundtrip_endpoint() {
        let mut kb = KnowledgeBase::new();
        let req = serde_json::json!({
            "action": "extract_meta_features",
            "name": "toy",
            "dataset": {"csv": {"content": CSV, "target": null}},
        });
        let out = handle_json(&mut kb, &req.to_string());
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["status"], "meta_features");
    }

    #[test]
    fn registry_endpoints_list_paper_tables() {
        let mut kb = KnowledgeBase::new();
        match handle(&mut kb, Request::ListAlgorithms) {
            Response::AlgorithmList { algorithms } => {
                assert_eq!(algorithms.len(), 15);
                assert_eq!(algorithms[0], ("SVM".to_string(), 1, 4));
            }
            other => panic!("unexpected {other:?}"),
        }
        match handle(&mut kb, Request::ListPreprocessing) {
            Response::PreprocessingList { operations } => {
                assert_eq!(operations.len(), 8);
                assert_eq!(operations[0].0, "center");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_budgets_and_timeouts_rejected_not_panicking() {
        for options in [
            ExperimentOptions { budget_seconds: Some(f64::INFINITY), ..Default::default() },
            ExperimentOptions { budget_seconds: Some(f64::NAN), ..Default::default() },
            ExperimentOptions {
                trial_timeout_seconds: Some(f64::INFINITY),
                ..Default::default()
            },
            ExperimentOptions { trial_timeout_seconds: Some(-1.0), ..Default::default() },
        ] {
            let mut kb = KnowledgeBase::new();
            let resp = handle(
                &mut kb,
                Request::RunExperiment {
                    name: "toy".into(),
                    dataset: DatasetPayload::Csv { content: CSV.into(), target: None },
                    options,
                },
            );
            assert!(matches!(resp, Response::Error { .. }));
        }
    }

    #[test]
    fn optimizer_options_parse_and_validate() {
        let opts = ExperimentOptions {
            optimizer: Some("asha".into()),
            halving_eta: Some(3),
            ..Default::default()
        }
        .build()
        .unwrap();
        assert_eq!(opts.optimizer, crate::options::OptimizerChoice::Asha);
        assert_eq!(opts.halving_eta, 3);
        assert!(ExperimentOptions { optimizer: Some("bogus".into()), ..Default::default() }
            .build()
            .is_err());
        assert!(ExperimentOptions { halving_eta: Some(1), ..Default::default() }
            .build()
            .is_err());
    }

    #[test]
    fn run_experiment_with_asha_optimizer() {
        let mut kb = KnowledgeBase::new();
        let resp = handle(
            &mut kb,
            Request::RunExperiment {
                name: "toy".into(),
                dataset: DatasetPayload::Csv { content: CSV.into(), target: None },
                options: ExperimentOptions {
                    budget_trials: Some(6),
                    top_n_algorithms: Some(2),
                    n_threads: Some(2),
                    optimizer: Some("asha".into()),
                    ..Default::default()
                },
            },
        );
        match resp {
            Response::Experiment { report } => {
                assert!(report.best.validation_accuracy > 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_preprocessing_op_rejected() {
        let mut kb = KnowledgeBase::new();
        let resp = handle(
            &mut kb,
            Request::RunExperiment {
                name: "toy".into(),
                dataset: DatasetPayload::Csv { content: CSV.into(), target: None },
                options: ExperimentOptions {
                    preprocessing: vec!["bogus".into()],
                    ..Default::default()
                },
            },
        );
        assert!(matches!(resp, Response::Error { .. }));
    }
}
