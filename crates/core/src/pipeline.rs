//! The SmartML pipeline: the five phases of paper Figure 1.

use crate::budget::{apportion_secs, apportion_trials, divide_budget};
use crate::ensemble::WeightedEnsemble;
use crate::interpret::permutation_importance_with;
use crate::options::{Budget, OptimizerChoice, SmartMlOptions};
use crate::report::{
    AlgorithmFailures, AlgorithmTuning, BestModel, EnsembleReport, FailureReport, PhaseTrace,
    RunReport, TimeAttribution,
};
use smartml_classifiers::{Algorithm, ParamConfig, TrainedModel};
use smartml_data::{accuracy, degenerate_metric_count, train_valid_split, Dataset};
use smartml_kb::{AlgorithmRun, KbBackend, KbError, KnowledgeBase, QueryOptions, Recommendation};
use smartml_metafeatures::{extract, landmarkers};
use smartml_preprocess::{pipeline_from_ops, MutualInfoSelect, PreprocessError, Transform};
use smartml_obs::{record_interval, span, Timeline, Trace};
use smartml_runtime::faults::{run_trial, GuardOutcome, TrialToken};
use smartml_runtime::{Deadline, Pool};
use smartml_smac::{
    Asha, ClassifierObjective, GridSearch, Hyperband, OptOptions, Optimizer, RandomSearch, Smac,
    SuccessiveHalving, Tpe,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Errors from a SmartML run.
#[derive(Debug)]
pub enum SmartMlError {
    /// Preprocessing failed (e.g. PCA on all-categorical data).
    Preprocess(PreprocessError),
    /// No algorithm produced a usable model.
    NoModel,
    /// The dataset is unusable (too small / single class).
    BadDataset(String),
    /// The run options are malformed (rejected before any work starts).
    BadOptions(String),
    /// The knowledge-base backend failed (durable store or remote server).
    Kb(KbError),
}

impl std::fmt::Display for SmartMlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmartMlError::Preprocess(e) => write!(f, "preprocessing failed: {e}"),
            SmartMlError::NoModel => write!(f, "no algorithm produced a usable model"),
            SmartMlError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
            SmartMlError::BadOptions(msg) => write!(f, "bad options: {msg}"),
            SmartMlError::Kb(e) => write!(f, "knowledge base failed: {e}"),
        }
    }
}

impl std::error::Error for SmartMlError {}

impl From<PreprocessError> for SmartMlError {
    fn from(e: PreprocessError) -> Self {
        SmartMlError::Preprocess(e)
    }
}

impl From<KbError> for SmartMlError {
    fn from(e: KbError) -> Self {
        SmartMlError::Kb(e)
    }
}

/// Result of [`SmartML::run`]: the report plus live models for prediction.
pub struct RunOutcome {
    /// The structured report (Figure-3 content).
    pub report: RunReport,
    /// The winning model, refit on the training split of the preprocessed
    /// dataset. Predict with the dataset stored in `preprocessed`.
    pub model: Box<dyn TrainedModel>,
    /// The ensemble, when ensembling was enabled.
    pub ensemble: Option<WeightedEnsemble>,
    /// The preprocessed dataset the models operate on.
    pub preprocessed: Dataset,
    /// Validation rows (indices into `preprocessed`).
    pub valid_rows: Vec<usize>,
    /// Training rows (indices into `preprocessed`).
    pub train_rows: Vec<usize>,
    /// The raw span trace of the run, when tracing was enabled — the CLI
    /// exports it as a Chrome-trace file (`--trace-out`). `None` when
    /// `options.trace` was off.
    pub trace: Option<Trace>,
}

/// Serialises traced runs: the span ring is process-global, so two
/// concurrent traced runs would interleave their spans and corrupt both
/// timelines. Holding this mutex for the duration of a traced run makes
/// `SmartML::run` re-entrant from any number of threads (the job
/// service runs many pipelines at once): untraced runs never touch it,
/// traced runs queue behind each other and each gets a private ring.
static TRACE_GATE: Mutex<()> = Mutex::new(());

/// Scopes global span recording to one `SmartML::run`: enables tracing on
/// construction (when requested) and guarantees it is switched off again
/// on every exit path, including errors — otherwise an early `NoModel`
/// return would leave the process recording spans forever.
struct TracingSession {
    active: bool,
    /// Held while tracing so concurrent traced runs serialise instead of
    /// mixing spans in the shared ring.
    _gate: Option<MutexGuard<'static, ()>>,
}

impl TracingSession {
    fn start(trace: bool, ring_capacity: Option<usize>) -> TracingSession {
        let gate = trace.then(|| {
            // A run that panicked mid-trace poisons the gate; the lock
            // itself is still a valid exclusion token.
            TRACE_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        });
        if trace {
            // Discard anything left in the ring by an earlier run that
            // errored out before draining.
            let _ = smartml_obs::drain_trace();
            smartml_obs::enable_tracing(ring_capacity);
        }
        TracingSession { active: trace, _gate: gate }
    }

    /// Drains the recorded spans on the success path (tracing stays off
    /// afterwards via `Drop`).
    fn finish(&self) -> Option<Trace> {
        self.active.then(smartml_obs::drain_trace)
    }
}

impl Drop for TracingSession {
    fn drop(&mut self) {
        if self.active {
            smartml_obs::disable_tracing();
        }
    }
}

/// The SmartML engine: a knowledge base plus run options.
///
/// Generic over where the knowledge base lives: the default `B` is the
/// in-process [`KnowledgeBase`], but any [`KbBackend`] works — a
/// WAL-backed durable store or a remote `smartmld` client plug in via
/// [`SmartML::with_backend`] without changing the pipeline.
pub struct SmartML<B: KbBackend = KnowledgeBase> {
    kb: B,
    options: SmartMlOptions,
}

impl SmartML<KnowledgeBase> {
    /// Engine with an empty knowledge base (cold start).
    pub fn new(options: SmartMlOptions) -> Self {
        SmartML { kb: KnowledgeBase::new(), options }
    }

    /// Engine with an existing (e.g. bootstrapped) knowledge base.
    pub fn with_kb(kb: KnowledgeBase, options: SmartMlOptions) -> Self {
        SmartML { kb, options }
    }
}

impl<B: KbBackend> SmartML<B> {
    /// Engine over any knowledge-base backend (durable store, remote
    /// `smartmld`, shared in-process index).
    pub fn with_backend(kb: B, options: SmartMlOptions) -> Self {
        SmartML { kb, options }
    }

    /// Borrow the knowledge base (it grows with every run).
    pub fn kb(&self) -> &B {
        &self.kb
    }

    /// Take the knowledge base out (e.g. to persist it).
    pub fn into_kb(self) -> B {
        self.kb
    }

    /// Borrow the options.
    pub fn options(&self) -> &SmartMlOptions {
        &self.options
    }

    /// Runs the full pipeline on a dataset.
    pub fn run(&mut self, data: &Dataset) -> Result<RunOutcome, SmartMlError> {
        let opts = self.options.clone();
        opts.validate().map_err(SmartMlError::BadOptions)?;
        let tracing = TracingSession::start(opts.trace, opts.resolved_trace_ring_capacity());
        let run_start = Instant::now();
        let mut phases: Vec<PhaseTrace> = Vec::new();
        let mut kb_warnings: Vec<String> = Vec::new();
        let degenerate_metrics_before = degenerate_metric_count();

        if data.n_rows() < 20 {
            return Err(SmartMlError::BadDataset(format!(
                "need at least 20 rows, got {}",
                data.n_rows()
            )));
        }
        if data.n_classes() < 2 {
            return Err(SmartMlError::BadDataset("need at least 2 classes".into()));
        }

        // ------ Phase 2: dataset preprocessing -------------------------
        let t = Instant::now();
        let (train_rows, valid_rows) = train_valid_split(data, opts.valid_fraction, opts.seed);
        let pipeline = pipeline_from_ops(&opts.preprocessing);
        let fitted = pipeline.fit(data, &train_rows)?;
        let mut preprocessed = fitted.apply(data);
        if let Some(k) = opts.feature_selection {
            let selector = MutualInfoSelect::new(k);
            let fitted_sel = selector.fit(&preprocessed, &train_rows)?;
            preprocessed = fitted_sel.apply(&preprocessed);
        }
        // Shared from here on: Phase 4 tunes several algorithms
        // concurrently against the same dataset, so it lives in an `Arc`
        // instead of being cloned per objective (unwrapped again before
        // the outcome is returned).
        let preprocessed = Arc::new(preprocessed);
        let meta_features = extract(&preprocessed, &train_rows);
        let query_landmarkers = opts
            .use_landmarkers
            .then(|| landmarkers(&preprocessed, &train_rows));
        record_interval("phase2.preprocess", String::new(), t, t.elapsed());
        phases.push(PhaseTrace {
            phase: "Dataset Preprocessing".into(),
            secs: t.elapsed().as_secs_f64(),
            detail: format!(
                "ops=[{}] selection={:?} split={}train/{}valid, 25 meta-features",
                opts.preprocessing
                    .iter()
                    .map(|o| o.paper_name())
                    .collect::<Vec<_>>()
                    .join(","),
                opts.feature_selection,
                train_rows.len(),
                valid_rows.len()
            ),
        });

        // ------ Phase 3: algorithm selection ----------------------------
        let t = Instant::now();
        // A dead KB backend degrades the run to the cold-start portfolio
        // (recorded as a warning) instead of aborting it: selection
        // quality suffers, the user still gets a model.
        let recommendation = match self.kb.kb_recommend(
            &meta_features,
            query_landmarkers.clone(),
            &QueryOptions {
                top_n: opts.top_n_algorithms,
                n_neighbors: opts.n_neighbors,
                performance_weight: 1.0,
                use_landmarkers: opts.use_landmarkers,
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                kb_warnings.push(format!(
                    "KB recommendation unavailable ({e}); continuing with the cold-start portfolio"
                ));
                Recommendation { algorithms: Vec::new(), neighbors: Vec::new() }
            }
        };
        // Cold start (empty KB): fall back to a diverse default portfolio.
        let nominations: Vec<(Algorithm, f64, Vec<ParamConfig>)> =
            if recommendation.algorithms.is_empty() {
                default_portfolio(opts.top_n_algorithms)
                    .into_iter()
                    .map(|a| (a, 0.0, Vec::new()))
                    .collect()
            } else {
                recommendation
                    .algorithms
                    .iter()
                    .map(|r| (r.algorithm, r.score, r.warm_starts.clone()))
                    .collect()
            };
        record_interval("phase3.select", String::new(), t, t.elapsed());
        phases.push(PhaseTrace {
            phase: "Algorithm Selection".into(),
            secs: t.elapsed().as_secs_f64(),
            detail: format!(
                "KB({}, {} datasets) nominated [{}]",
                self.kb.kb_describe(),
                self.kb.kb_len(),
                nominations
                    .iter()
                    .map(|(a, _, _)| a.paper_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });

        // ------ Phase 4: hyper-parameter tuning -------------------------
        let t = Instant::now();
        let algorithms: Vec<Algorithm> = nominations.iter().map(|(a, _, _)| *a).collect();
        let shares = divide_budget(opts.budget, &algorithms);
        let pool = Pool::new(opts.n_threads);
        let tasks: Vec<(Algorithm, f64, Vec<ParamConfig>, Budget)> = nominations
            .iter()
            .zip(&shares)
            .map(|((a, s, w), (_, share))| (*a, *s, w.clone(), *share))
            .collect();
        // Serial runs slice a time budget per algorithm; concurrent runs
        // give every algorithm the whole window under one absolute
        // deadline (per-algorithm slices would depend on finish order).
        let shared_deadline = match (pool.n_threads() > 1, opts.budget) {
            (true, Budget::Time(total)) => Deadline::after(total),
            _ => Deadline::none(),
        };
        // Split the worker budget between the algorithm level and the
        // fold/surrogate level inside each optimiser; widths only affect
        // speed, never results.
        let inner_pool = Pool::new(pool.n_threads().div_ceil(tasks.len().max(1)));
        // Round 1: every algorithm tunes on its initial proportional
        // share. Optimisers stop early when the circuit breaker trips
        // (`breaker_threshold` consecutive faulted trials).
        let mut round1 = pool.map_indexed(tasks, |_, (algorithm, score, warm_starts, share)| {
            let objective = ClassifierObjective::new_shared(
                algorithm,
                Arc::clone(&preprocessed),
                &train_rows,
                opts.cv_folds,
                opts.seed,
            );
            let (max_trials, wall_clock) = match share {
                Budget::Trials(n) => (n, None),
                Budget::Time(_) if shared_deadline.is_some() => (usize::MAX, None),
                Budget::Time(d) => (usize::MAX, Some(d)),
            };
            let _tune_span = span!("phase4.tune", algo = algorithm.paper_name());
            let result = make_optimizer(&opts).optimize(
                &algorithm.param_space(),
                &objective,
                &OptOptions {
                    max_trials,
                    wall_clock,
                    seed: opts.seed ^ (algorithm as u64) << 8,
                    initial_configs: warm_starts.clone(),
                    pool: inner_pool,
                    deadline: shared_deadline,
                    trial_timeout: opts.trial_timeout,
                    breaker_threshold: opts.breaker_threshold,
                    trace_tag: algorithm.paper_name().to_string(),
                },
            );
            (algorithm, score, warm_starts, share, result)
        });

        // Circuit-breaker reallocation: budget a tripped algorithm left
        // unused flows to the survivors by the same #params rule as the
        // initial split. Trial budgets reapportion by largest remainder
        // (nothing lost to rounding); serial time budgets move the unused
        // seconds; under a shared concurrent deadline there is nothing to
        // move — every survivor already owns the whole wall-clock window.
        let tripped_count = round1.iter().filter(|r| r.4.tripped).count();
        let survivors: Vec<Algorithm> =
            round1.iter().filter(|r| !r.4.tripped).map(|r| r.0).collect();
        let mut extra_trials: Vec<usize> = vec![0; round1.len()];
        let mut extra_secs: Vec<f64> = vec![0.0; round1.len()];
        if tripped_count > 0 && !survivors.is_empty() {
            match opts.budget {
                Budget::Trials(_) => {
                    let freed: usize = round1
                        .iter()
                        .filter(|r| r.4.tripped)
                        .map(|r| r.3.trials().unwrap_or(0).saturating_sub(r.4.history.len()))
                        .sum();
                    for (algorithm, extra) in apportion_trials(freed, &survivors) {
                        if let Some(i) = round1.iter().position(|r| r.0 == algorithm) {
                            extra_trials[i] = extra;
                        }
                    }
                }
                Budget::Time(_) if shared_deadline.is_some() => {}
                Budget::Time(_) => {
                    let freed: f64 = round1
                        .iter()
                        .filter(|r| r.4.tripped)
                        .map(|r| {
                            let share = r.3.duration().map_or(0.0, |d| d.as_secs_f64());
                            let used = r.4.history.last().map_or(0.0, |t| t.elapsed_secs);
                            (share - used).max(0.0)
                        })
                        .sum();
                    for (algorithm, extra) in apportion_secs(freed, &survivors) {
                        if let Some(i) = round1.iter().position(|r| r.0 == algorithm) {
                            extra_secs[i] = extra;
                        }
                    }
                }
            }
        }

        // Round 2: survivors spend the reallocated budget on a salted
        // deterministic seed stream, warm-started from their round-1 best.
        let round2_tasks: Vec<(usize, Algorithm, usize, f64, ParamConfig)> = round1
            .iter()
            .enumerate()
            .filter(|(i, r)| !r.4.tripped && (extra_trials[*i] > 0 || extra_secs[*i] > 0.05))
            .map(|(i, r)| (i, r.0, extra_trials[i], extra_secs[i], r.4.best_config.clone()))
            .collect();
        let round2 = pool.map_indexed(round2_tasks, |_, (idx, algorithm, trials, secs, warm)| {
            let objective = ClassifierObjective::new_shared(
                algorithm,
                Arc::clone(&preprocessed),
                &train_rows,
                opts.cv_folds,
                opts.seed,
            );
            let (max_trials, wall_clock) = if trials > 0 {
                (trials, None)
            } else {
                (usize::MAX, Some(Duration::from_secs_f64(secs)))
            };
            let _tune_span = span!("phase4.tune", algo = algorithm.paper_name());
            let result = make_optimizer(&opts).optimize(
                &algorithm.param_space(),
                &objective,
                &OptOptions {
                    max_trials,
                    wall_clock,
                    seed: opts.seed ^ (algorithm as u64) << 8 ^ 0x9E37_79B9_7F4A_7C15,
                    initial_configs: vec![warm],
                    pool: inner_pool,
                    deadline: shared_deadline,
                    trial_timeout: opts.trial_timeout,
                    breaker_threshold: opts.breaker_threshold,
                    trace_tag: algorithm.paper_name().to_string(),
                },
            );
            (idx, result)
        });
        for (idx, r2) in round2 {
            let r1 = &mut round1[idx].4;
            if r2.history.iter().any(|t| t.is_success()) && r2.best_score > r1.best_score {
                r1.best_score = r2.best_score;
                r1.best_config = r2.best_config;
            }
            r1.failures.merge(&r2.failures);
            r1.history.extend(r2.history);
            r1.tripped = r1.tripped || r2.tripped;
        }

        // Refit each algorithm's best configuration on the full training
        // split and measure held-out validation accuracy. The refit runs
        // under the same guard as a trial: a panicking or overrunning
        // refit loses its finalist slot instead of taking down the run.
        let outcomes =
            pool.map_indexed(round1, |i, (algorithm, score, warm_starts, _share, mut result)| {
                let clf = algorithm.build(&result.best_config);
                let token = TrialToken::bounded(opts.trial_timeout, Deadline::none());
                let fit = run_trial(&token, || clf.fit(&preprocessed, &train_rows));
                let finalist = match fit {
                    GuardOutcome::Completed(Ok(model)) => {
                        let acc = accuracy(
                            &preprocessed.labels_for(&valid_rows),
                            &model.predict(&preprocessed, &valid_rows),
                        );
                        Some((algorithm, result.best_config.clone(), model, acc))
                    }
                    GuardOutcome::Completed(Err(_)) => None,
                    GuardOutcome::Panicked { .. } => {
                        result.failures.panicked += 1;
                        None
                    }
                    GuardOutcome::TimedOut { .. } => {
                        result.failures.timed_out += 1;
                        None
                    }
                };
                let valid_acc = finalist.as_ref().map_or(0.0, |f| f.3);
                let tune = AlgorithmTuning {
                    algorithm,
                    selection_score: score,
                    trials: result.history.len(),
                    best_cv_accuracy: result.best_score,
                    best_config: result.best_config,
                    validation_accuracy: valid_acc,
                    n_warm_starts: warm_starts.len(),
                };
                let faults = AlgorithmFailures {
                    algorithm,
                    counts: result.failures,
                    tripped: result.tripped,
                    reallocated_trials: extra_trials[i],
                    reallocated_secs: extra_secs[i],
                };
                (tune, finalist, faults)
            });
        let mut tuning: Vec<AlgorithmTuning> = Vec::with_capacity(outcomes.len());
        let mut finalists: Vec<(Algorithm, ParamConfig, Box<dyn TrainedModel>, f64)> = Vec::new();
        let mut algorithm_failures: Vec<AlgorithmFailures> = Vec::with_capacity(outcomes.len());
        for (tune, finalist, faults) in outcomes {
            tuning.push(tune);
            finalists.extend(finalist);
            algorithm_failures.push(faults);
        }
        record_interval("phase4.tune_all", String::new(), t, t.elapsed());
        phases.push(PhaseTrace {
            phase: "Hyper-parameter Tuning".into(),
            secs: t.elapsed().as_secs_f64(),
            detail: format!(
                "budget {:?} divided by #params -> {} trials total{}",
                opts.budget,
                tuning.iter().map(|t| t.trials).sum::<usize>(),
                if tripped_count > 0 {
                    format!(", {tripped_count} breaker(s) tripped")
                } else {
                    String::new()
                }
            ),
        });

        // ------ Phase 5: output + KB update ------------------------------
        let t = Instant::now();
        if finalists.is_empty() {
            return Err(SmartMlError::NoModel);
        }
        let best_idx = finalists
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .3.partial_cmp(&b.1 .3).unwrap())
            .map(|(i, _)| i)
            .expect("finalists nonempty");
        let best = BestModel {
            algorithm: finalists[best_idx].0,
            config: finalists[best_idx].1.clone(),
            validation_accuracy: finalists[best_idx].3,
        };

        // Ensemble (optional): all finalists weighted by validation accuracy.
        let mut ensemble_report = None;
        let mut ensemble_model = None;
        if opts.ensembling && finalists.len() >= 2 {
            let member_info: Vec<(Algorithm, f64)> =
                finalists.iter().map(|(a, _, _, acc)| (*a, *acc)).collect();
            let members: Vec<(Box<dyn TrainedModel>, f64)> = std::mem::take(&mut finalists)
                .into_iter()
                .map(|(_, _, m, acc)| (m, acc))
                .collect();
            let ens = WeightedEnsemble::new(members, preprocessed.n_classes());
            let ens_acc = accuracy(
                &preprocessed.labels_for(&valid_rows),
                &ens.predict(&preprocessed, &valid_rows),
            );
            let weights = ens.weights();
            ensemble_report = Some(EnsembleReport {
                members: member_info
                    .iter()
                    .zip(&weights)
                    .map(|((a, _), &w)| (*a, w))
                    .collect(),
                validation_accuracy: ens_acc,
            });
            ensemble_model = Some(ens);
        }

        // The winner model: if the ensemble consumed the finalists, refit.
        let model: Box<dyn TrainedModel> = if let Some((_, _, m, _)) =
            (!finalists.is_empty()).then(|| finalists.swap_remove(best_idx))
        {
            m
        } else {
            best.algorithm
                .build(&best.config)
                .fit(&preprocessed, &train_rows)
                .map_err(|_| SmartMlError::NoModel)?
        };

        // Interpretability (optional).
        let importance = if opts.interpretability {
            Some(permutation_importance_with(
                model.as_ref(),
                &preprocessed,
                &valid_rows,
                3,
                opts.seed,
                pool,
            ))
        } else {
            None
        };

        // Continuous KB update (Figure 1's "Update" arrow). A failing
        // backend costs the KB this run's observations — worth a warning,
        // never the run itself.
        if opts.update_kb {
            'update: {
                for tune in &tuning {
                    if let Err(e) = self.kb.kb_record_run(
                        &data.name,
                        &meta_features,
                        AlgorithmRun {
                            algorithm: tune.algorithm,
                            config: tune.best_config.clone(),
                            accuracy: tune.validation_accuracy,
                        },
                    ) {
                        kb_warnings.push(format!(
                            "KB update failed ({e}); this run's results were not recorded"
                        ));
                        break 'update;
                    }
                }
                if let Some(marks) = query_landmarkers {
                    if let Err(e) = self.kb.kb_set_landmarkers(&data.name, marks) {
                        kb_warnings
                            .push(format!("KB landmarker update failed ({e})"));
                    }
                }
            }
        }
        kb_warnings.extend(self.kb.kb_health_warnings());
        record_interval("phase5.output", String::new(), t, t.elapsed());
        phases.push(PhaseTrace {
            phase: "Output & KB Update".into(),
            secs: t.elapsed().as_secs_f64(),
            detail: format!(
                "winner {} @ {:.4}; KB now {} datasets / {} runs",
                best.algorithm.paper_name(),
                best.validation_accuracy,
                self.kb.kb_len(),
                self.kb.kb_n_runs()
            ),
        });

        let metric_warnings = {
            let coerced = degenerate_metric_count().saturating_sub(degenerate_metrics_before);
            if coerced > 0 {
                vec![format!(
                    "{coerced} degenerate metric evaluation(s) (empty fold or no supported \
                     class) coerced to 0.0"
                )]
            } else {
                Vec::new()
            }
        };
        let failures = FailureReport {
            algorithms: algorithm_failures,
            kb_warnings,
            metric_warnings,
        };

        // Close the trace: record the root span covering the whole run,
        // drain the ring, and aggregate the phase/algorithm timeline.
        record_interval("run", String::new(), run_start, run_start.elapsed());
        let trace = tracing.finish();
        let timeline = trace
            .as_ref()
            .map(|t| TimeAttribution::from_timeline(&Timeline::from_trace(t)));

        // Every objective (and its Arc clone) is gone by now; only the
        // clone fallback runs if a caller-side reference still lives.
        let preprocessed = Arc::try_unwrap(preprocessed).unwrap_or_else(|arc| (*arc).clone());
        let report = RunReport {
            dataset: data.name.clone(),
            n_rows: preprocessed.n_rows(),
            n_features: preprocessed.n_features(),
            n_classes: preprocessed.n_classes(),
            phases,
            meta_features,
            kb_neighbors: recommendation.neighbors,
            tuning,
            best,
            ensemble: ensemble_report,
            importance,
            failures,
            timeline,
        };
        Ok(RunOutcome {
            report,
            model,
            ensemble: ensemble_model,
            preprocessed,
            valid_rows,
            train_rows,
            trace,
        })
    }
}

/// Cold-start portfolio: a family-diverse subset in fixed priority order,
/// used when the knowledge base has nothing to say.
/// Builds the Phase-4 optimiser selected in the run options. Boxed fresh
/// at each use site: optimisers are stateless between calls, and the
/// trait object keeps the tuning loop generic over all seven choices.
fn make_optimizer(opts: &SmartMlOptions) -> Box<dyn Optimizer> {
    match opts.optimizer {
        OptimizerChoice::Smac => Box::new(Smac::default()),
        OptimizerChoice::Grid => Box::new(GridSearch),
        OptimizerChoice::Random => Box::new(RandomSearch),
        OptimizerChoice::Tpe => Box::new(Tpe::default()),
        OptimizerChoice::Halving => Box::new(SuccessiveHalving::new(opts.halving_eta)),
        OptimizerChoice::Hyperband => Box::new(Hyperband::new(opts.halving_eta)),
        OptimizerChoice::Asha => Box::new(Asha::new(opts.halving_eta)),
    }
}

pub fn default_portfolio(n: usize) -> Vec<Algorithm> {
    const PRIORITY: [Algorithm; 15] = [
        Algorithm::RandomForest,
        Algorithm::Svm,
        Algorithm::NaiveBayes,
        Algorithm::Knn,
        Algorithm::J48,
        Algorithm::Lda,
        Algorithm::DeepBoost,
        Algorithm::NeuralNet,
        Algorithm::Rpart,
        Algorithm::C50,
        Algorithm::Bagging,
        Algorithm::Plsda,
        Algorithm::Rda,
        Algorithm::Lmt,
        Algorithm::Part,
    ];
    PRIORITY.iter().copied().take(n.clamp(1, 15)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;
    use smartml_preprocess::Op;

    fn quick_options() -> SmartMlOptions {
        SmartMlOptions {
            budget: Budget::Trials(8),
            top_n_algorithms: 2,
            cv_folds: 2,
            preprocessing: vec![Op::Zv],
            ..Default::default()
        }
    }

    #[test]
    fn cold_start_run_completes() {
        let d = gaussian_blobs("cold", 150, 3, 2, 0.8, 1);
        let mut engine = SmartML::new(quick_options());
        let outcome = engine.run(&d).unwrap();
        assert!(outcome.report.best.validation_accuracy > 0.7);
        assert_eq!(outcome.report.phases.len(), 4);
        assert_eq!(outcome.report.tuning.len(), 2);
        // KB was updated.
        assert_eq!(engine.kb().len(), 1);
        assert_eq!(engine.kb().n_runs(), 2);
    }

    #[test]
    fn model_predicts_on_validation_rows() {
        let d = gaussian_blobs("pred", 160, 3, 2, 0.6, 2);
        let mut engine = SmartML::new(quick_options());
        let outcome = engine.run(&d).unwrap();
        let preds = outcome.model.predict(&outcome.preprocessed, &outcome.valid_rows);
        assert_eq!(preds.len(), outcome.valid_rows.len());
        let acc = accuracy(&outcome.preprocessed.labels_for(&outcome.valid_rows), &preds);
        assert!((acc - outcome.report.best.validation_accuracy).abs() < 1e-9);
    }

    #[test]
    fn warm_kb_changes_selection() {
        let d1 = gaussian_blobs("first", 150, 4, 2, 0.8, 3);
        let mut engine = SmartML::new(quick_options());
        engine.run(&d1).unwrap();
        // Second run on a similar dataset: KB has neighbours now.
        let d2 = gaussian_blobs("second", 150, 4, 2, 0.8, 4);
        let outcome = engine.run(&d2).unwrap();
        assert!(!outcome.report.kb_neighbors.is_empty());
    }

    #[test]
    fn ensembling_produces_report_and_model() {
        let d = gaussian_blobs("ens", 180, 3, 3, 1.0, 5);
        let mut engine = SmartML::new(quick_options().with_ensembling(true));
        let outcome = engine.run(&d).unwrap();
        let ens = outcome.report.ensemble.expect("ensemble requested");
        assert_eq!(ens.members.len(), 2);
        assert!(outcome.ensemble.is_some());
        assert!(ens.validation_accuracy > 0.5);
    }

    #[test]
    fn interpretability_lists_all_features() {
        let d = gaussian_blobs("imp", 150, 4, 2, 0.8, 6);
        let mut engine = SmartML::new(quick_options().with_interpretability(true));
        let outcome = engine.run(&d).unwrap();
        let imp = outcome.report.importance.expect("importance requested");
        assert_eq!(imp.len(), outcome.report.n_features);
    }

    #[test]
    fn n_threads_does_not_change_the_outcome() {
        let d = gaussian_blobs("par", 160, 4, 2, 0.9, 9);
        let run = |threads: usize| {
            let mut opts = quick_options().with_interpretability(true);
            opts.n_threads = threads;
            SmartML::new(opts).run(&d).unwrap().report
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.best.algorithm, par.best.algorithm);
        assert_eq!(serial.best.validation_accuracy, par.best.validation_accuracy);
        assert_eq!(serial.tuning.len(), par.tuning.len());
        for (a, b) in serial.tuning.iter().zip(&par.tuning) {
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.best_cv_accuracy, b.best_cv_accuracy);
            assert_eq!(a.best_config, b.best_config);
            assert_eq!(a.validation_accuracy, b.validation_accuracy);
        }
        let imp = |r: &RunReport| {
            r.importance
                .as_ref()
                .unwrap()
                .iter()
                .map(|f| (f.feature.clone(), f.importance))
                .collect::<Vec<_>>()
        };
        assert_eq!(imp(&serial), imp(&par));
    }

    #[test]
    fn rejects_tiny_or_single_class_data() {
        let tiny = gaussian_blobs("tiny", 10, 2, 2, 0.5, 7);
        let mut engine = SmartML::new(quick_options());
        assert!(matches!(engine.run(&tiny), Err(SmartMlError::BadDataset(_))));
    }

    #[test]
    fn update_kb_false_keeps_kb_frozen() {
        let d = gaussian_blobs("frozen", 140, 3, 2, 0.8, 8);
        let mut opts = quick_options();
        opts.update_kb = false;
        let mut engine = SmartML::new(opts);
        engine.run(&d).unwrap();
        assert!(engine.kb().is_empty());
    }

    #[test]
    fn default_portfolio_is_diverse_and_bounded() {
        assert_eq!(default_portfolio(3).len(), 3);
        assert_eq!(default_portfolio(100).len(), 15);
        assert_eq!(default_portfolio(0).len(), 1);
        let p = default_portfolio(15);
        let mut sorted = p.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15, "portfolio must cover all algorithms");
    }
}
