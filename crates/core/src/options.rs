//! Run options — the knobs of the paper's input-definition screen
//! (Figure 2): preprocessing, feature selection, ensembling,
//! interpretability, time budget, validation split.

use smartml_preprocess::Op;
use std::path::PathBuf;
use std::time::Duration;

/// Where a knowledge base lives, parsed from a CLI/user spec string:
///
/// - `path/to/kb.json` — single-file JSON store (the default),
/// - `wal:DIR` — durable write-ahead-logged store in `DIR`,
/// - `tcp:HOST:PORT[,HOST:PORT...]` — remote `smartmld` server, with
///   optional read replicas after the primary for client failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbSource {
    /// Single-file JSON persistence (`KnowledgeBase::load`/`save`).
    File(PathBuf),
    /// WAL-backed durable store directory (`smartml-kbd::DurableKb`).
    Wal(PathBuf),
    /// Remote `smartmld` endpoints — primary first, then read replicas —
    /// as one comma-separated string (`smartml-kbd::KbClient` syntax).
    Remote(String),
}

impl KbSource {
    /// Parses a spec string. `wal:` and `tcp:` prefixes select the
    /// durable and remote backends; anything else is a plain file path.
    /// A `tcp:` spec may list several comma-separated `HOST:PORT`
    /// endpoints; each is validated, the first is the write primary.
    pub fn parse(spec: &str) -> Result<KbSource, String> {
        if let Some(dir) = spec.strip_prefix("wal:") {
            if dir.is_empty() {
                return Err("wal: spec needs a directory, e.g. wal:kb-dir".into());
            }
            return Ok(KbSource::Wal(PathBuf::from(dir)));
        }
        if let Some(addrs) = spec.strip_prefix("tcp:") {
            let endpoints: Vec<&str> =
                addrs.split(',').map(str::trim).filter(|a| !a.is_empty()).collect();
            if endpoints.is_empty() {
                return Err(
                    "tcp: spec needs HOST:PORT[,HOST:PORT...], e.g. tcp:127.0.0.1:7878".into()
                );
            }
            for addr in &endpoints {
                if addr.rsplit_once(':').map_or(true, |(h, p)| {
                    h.is_empty() || p.parse::<u16>().is_err()
                }) {
                    return Err(format!(
                        "tcp: spec needs HOST:PORT per endpoint, got {addr:?} \
                         (e.g. tcp:127.0.0.1:7878 or tcp:primary:7878,replica:7879)"
                    ));
                }
            }
            return Ok(KbSource::Remote(endpoints.join(",")));
        }
        if spec.is_empty() {
            return Err("empty knowledge-base spec".into());
        }
        Ok(KbSource::File(PathBuf::from(spec)))
    }
}

impl std::fmt::Display for KbSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KbSource::File(p) => write!(f, "{}", p.display()),
            KbSource::Wal(d) => write!(f, "wal:{}", d.display()),
            KbSource::Remote(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Tuning budget: the paper uses wall-clock ("the time budget constraint
/// specified by the end user"); a trial budget gives deterministic tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Total configuration evaluations across all algorithms.
    Trials(usize),
    /// Total wall-clock time across all algorithms.
    Time(Duration),
}

impl Budget {
    /// A per-algorithm share of this budget given its weight fraction.
    pub(crate) fn share(&self, fraction: f64) -> Budget {
        let fraction = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 0.0 };
        match *self {
            Budget::Trials(t) => {
                Budget::Trials(((t as f64 * fraction).round() as usize).max(3))
            }
            Budget::Time(d) => Budget::Time(Duration::from_secs_f64(
                (d.as_secs_f64() * fraction).max(0.05),
            )),
        }
    }

    /// The trial count, for trial budgets.
    pub fn trials(&self) -> Option<usize> {
        match *self {
            Budget::Trials(t) => Some(t),
            Budget::Time(_) => None,
        }
    }

    /// The wall-clock allowance, for time budgets.
    pub fn duration(&self) -> Option<Duration> {
        match *self {
            Budget::Trials(_) => None,
            Budget::Time(d) => Some(d),
        }
    }
}

/// Which hyperparameter optimiser Phase 4 runs for every nominated
/// algorithm. All choices share the `Optimizer` interface, the fault
/// breakers, and the fold-evaluation budget currency, so they are drop-in
/// swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerChoice {
    /// SMAC (the paper's tuner): RF surrogate + expected improvement +
    /// intensification racing.
    #[default]
    Smac,
    /// Exhaustive grid over each dimension.
    Grid,
    /// Pure random search.
    Random,
    /// Tree-structured Parzen estimator.
    Tpe,
    /// Synchronous successive halving: one cohort raced through rungs of
    /// η-increasing fidelity.
    Halving,
    /// Hyperband: a sweep of successive-halving brackets at staggered
    /// starting fidelities.
    Hyperband,
    /// Asynchronous successive halving: barrier-free rung promotion, every
    /// worker busy until the budget is spent.
    Asha,
}

impl OptimizerChoice {
    /// Parses a CLI/JSON name (case-insensitive).
    pub fn parse(name: &str) -> Result<OptimizerChoice, String> {
        match name.to_ascii_lowercase().as_str() {
            "smac" => Ok(OptimizerChoice::Smac),
            "grid" => Ok(OptimizerChoice::Grid),
            "random" => Ok(OptimizerChoice::Random),
            "tpe" => Ok(OptimizerChoice::Tpe),
            "halving" => Ok(OptimizerChoice::Halving),
            "hyperband" => Ok(OptimizerChoice::Hyperband),
            "asha" => Ok(OptimizerChoice::Asha),
            other => Err(format!(
                "unknown optimizer {other:?} \
                 (expected smac, grid, random, tpe, halving, hyperband or asha)"
            )),
        }
    }

    /// The canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerChoice::Smac => "smac",
            OptimizerChoice::Grid => "grid",
            OptimizerChoice::Random => "random",
            OptimizerChoice::Tpe => "tpe",
            OptimizerChoice::Halving => "halving",
            OptimizerChoice::Hyperband => "hyperband",
            OptimizerChoice::Asha => "asha",
        }
    }
}

impl std::fmt::Display for OptimizerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for a SmartML run.
#[derive(Debug, Clone)]
pub struct SmartMlOptions {
    /// Preprocessing operations applied before modelling (paper Table 2).
    pub preprocessing: Vec<Op>,
    /// Keep only the top-k features by mutual information (None = keep all).
    pub feature_selection: Option<usize>,
    /// Fraction of rows held out for validation.
    pub valid_fraction: f64,
    /// Number of algorithms the KB nominates.
    pub top_n_algorithms: usize,
    /// Neighbour datasets consulted during selection.
    pub n_neighbors: usize,
    /// Total tuning budget, divided among nominated algorithms
    /// proportionally to their hyperparameter counts.
    pub budget: Budget,
    /// Inner cross-validation folds used by the tuner.
    pub cv_folds: usize,
    /// Build a validation-weighted ensemble of the finalists.
    pub ensembling: bool,
    /// Compute permutation feature importance for the winner.
    pub interpretability: bool,
    /// Extend KB similarity with landmarker accuracies (extension over the
    /// paper; see the `ablation_similarity` bench).
    pub use_landmarkers: bool,
    /// Record results back into the knowledge base.
    pub update_kb: bool,
    /// Master seed (splits, tuner, ensemble).
    pub seed: u64,
    /// Worker threads for tuning, CV folds, the surrogate and
    /// interpretability (`0` = all available cores, `1` = serial). Every
    /// parallel path is deterministic: results are identical for any
    /// thread count at a fixed seed.
    pub n_threads: usize,
    /// Per-trial watchdog deadline: a single configuration evaluation that
    /// runs longer is marked `TimedOut` and abandoned cooperatively
    /// (`None` = no per-trial limit).
    pub trial_timeout: Option<Duration>,
    /// Circuit breaker: after this many *consecutive* faulted trials
    /// (panic / timeout / non-finite score) an algorithm is tripped and
    /// its remaining budget is reallocated to the survivors (`0` =
    /// breakers disabled).
    pub breaker_threshold: usize,
    /// Record structured spans for the run and attach a "Where the time
    /// went" timeline to the report. Off by default: the disabled path is
    /// a single atomic load per instrumentation site and the report is
    /// byte-identical to a build without observability.
    pub trace: bool,
    /// Hyperparameter optimiser used in Phase 4 (default: SMAC, the
    /// paper's choice).
    pub optimizer: OptimizerChoice,
    /// Reduction factor η for the multi-fidelity optimisers (halving,
    /// Hyperband, ASHA): each rung keeps the top `1/η` of its cohort.
    /// Must be ≥ 2; ignored by the other optimisers.
    pub halving_eta: usize,
    /// Capacity of the span-ring trace buffer while `trace` is on.
    /// `None` falls back to the `SMARTML_TRACE_RING` environment
    /// variable, then to the obs default (262 144 spans). Long-running
    /// resident sessions (the job service) raise this so a whole job's
    /// spans fit; the overwrite-oldest + dropped-counter semantics are
    /// unchanged at any capacity.
    pub trace_ring_capacity: Option<usize>,
}

impl Default for SmartMlOptions {
    fn default() -> Self {
        SmartMlOptions {
            preprocessing: vec![Op::Zv],
            feature_selection: None,
            valid_fraction: 0.25,
            top_n_algorithms: 3,
            n_neighbors: 5,
            budget: Budget::Trials(30),
            cv_folds: 3,
            ensembling: false,
            interpretability: false,
            use_landmarkers: false,
            update_kb: true,
            seed: 42,
            n_threads: 0,
            trial_timeout: None,
            breaker_threshold: 5,
            trace: false,
            optimizer: OptimizerChoice::Smac,
            halving_eta: 2,
            trace_ring_capacity: None,
        }
    }
}

impl SmartMlOptions {
    /// Sets the tuning budget (builder style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the preprocessing pipeline.
    pub fn with_preprocessing(mut self, ops: Vec<Op>) -> Self {
        self.preprocessing = ops;
        self
    }

    /// Enables ensembling.
    pub fn with_ensembling(mut self, on: bool) -> Self {
        self.ensembling = on;
        self
    }

    /// Enables interpretability output.
    pub fn with_interpretability(mut self, on: bool) -> Self {
        self.interpretability = on;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many algorithms are nominated.
    pub fn with_top_n(mut self, n: usize) -> Self {
        self.top_n_algorithms = n.max(1);
        self
    }

    /// Sets the worker-thread count (`0` = all cores, `1` = serial).
    pub fn with_n_threads(mut self, n: usize) -> Self {
        self.n_threads = n;
        self
    }

    /// Sets the per-trial watchdog deadline.
    pub fn with_trial_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.trial_timeout = timeout;
        self
    }

    /// Sets the circuit-breaker threshold (`0` = disabled).
    pub fn with_breaker_threshold(mut self, k: usize) -> Self {
        self.breaker_threshold = k;
        self
    }

    /// Enables span tracing and timeline attribution for the run.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Selects the Phase-4 hyperparameter optimiser.
    pub fn with_optimizer(mut self, optimizer: OptimizerChoice) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets the multi-fidelity reduction factor η (validated ≥ 2).
    pub fn with_halving_eta(mut self, eta: usize) -> Self {
        self.halving_eta = eta;
        self
    }

    /// Sets the span-ring capacity used while tracing (`None` = env /
    /// obs default).
    pub fn with_trace_ring_capacity(mut self, capacity: Option<usize>) -> Self {
        self.trace_ring_capacity = capacity;
        self
    }

    /// The span-ring capacity a run should trace with: the explicit
    /// option wins, then a parseable `SMARTML_TRACE_RING` environment
    /// variable, then `None` (the obs default).
    pub fn resolved_trace_ring_capacity(&self) -> Option<usize> {
        self.trace_ring_capacity.or_else(|| {
            std::env::var("SMARTML_TRACE_RING").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
        })
    }

    /// Checks the options for values that would make a run meaningless or
    /// crash mid-pipeline. Called by `SmartML::run` before any work, so a
    /// malformed request surfaces as an error instead of an abort.
    pub fn validate(&self) -> Result<(), String> {
        if !self.valid_fraction.is_finite() || !(0.0..1.0).contains(&self.valid_fraction) {
            return Err(format!(
                "valid_fraction must be in [0, 1), got {}",
                self.valid_fraction
            ));
        }
        if self.cv_folds < 2 {
            return Err(format!("cv_folds must be at least 2, got {}", self.cv_folds));
        }
        if self.top_n_algorithms == 0 {
            return Err("top_n_algorithms must be at least 1".into());
        }
        match self.budget {
            Budget::Trials(0) => return Err("trial budget must be non-zero".into()),
            Budget::Time(d) if d.is_zero() => {
                return Err("time budget must be non-zero".into());
            }
            _ => {}
        }
        if let Some(t) = self.trial_timeout {
            if t.is_zero() {
                return Err("trial_timeout must be non-zero when set".into());
            }
        }
        if self.halving_eta < 2 {
            return Err(format!(
                "halving_eta must be at least 2, got {}",
                self.halving_eta
            ));
        }
        if self.trace_ring_capacity == Some(0) {
            return Err("trace_ring_capacity must be non-zero when set".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let opts = SmartMlOptions::default()
            .with_budget(Budget::Trials(99))
            .with_ensembling(true)
            .with_top_n(5)
            .with_seed(7)
            .with_n_threads(2);
        assert_eq!(opts.budget, Budget::Trials(99));
        assert!(opts.ensembling);
        assert_eq!(opts.top_n_algorithms, 5);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.n_threads, 2);
    }

    #[test]
    fn trace_ring_capacity_resolution_order() {
        // Explicit option wins over the environment.
        std::env::set_var("SMARTML_TRACE_RING", "1024");
        let explicit = SmartMlOptions::default().with_trace_ring_capacity(Some(64));
        assert_eq!(explicit.resolved_trace_ring_capacity(), Some(64));
        // Without the option the env value is used.
        let from_env = SmartMlOptions::default();
        assert_eq!(from_env.resolved_trace_ring_capacity(), Some(1024));
        // Garbage and zero env values fall through to the obs default.
        std::env::set_var("SMARTML_TRACE_RING", "not-a-number");
        assert_eq!(from_env.resolved_trace_ring_capacity(), None);
        std::env::set_var("SMARTML_TRACE_RING", "0");
        assert_eq!(from_env.resolved_trace_ring_capacity(), None);
        std::env::remove_var("SMARTML_TRACE_RING");
        assert_eq!(from_env.resolved_trace_ring_capacity(), None);
        // A zero capacity is rejected at validation, not at trace time.
        let zero = SmartMlOptions::default().with_trace_ring_capacity(Some(0));
        assert!(zero.validate().is_err());
    }

    #[test]
    fn kb_source_parses_all_schemes() {
        assert_eq!(
            KbSource::parse("kb.json").unwrap(),
            KbSource::File(PathBuf::from("kb.json"))
        );
        assert_eq!(
            KbSource::parse("wal:my-kb").unwrap(),
            KbSource::Wal(PathBuf::from("my-kb"))
        );
        assert_eq!(
            KbSource::parse("tcp:127.0.0.1:7878").unwrap(),
            KbSource::Remote("127.0.0.1:7878".into())
        );
        assert!(KbSource::parse("wal:").is_err());
        assert!(KbSource::parse("tcp:nohost").is_err());
        assert!(KbSource::parse("tcp::99").is_err());
        assert!(KbSource::parse("").is_err());
        assert_eq!(KbSource::parse("wal:d").unwrap().to_string(), "wal:d");
        assert_eq!(
            KbSource::parse("tcp:localhost:1234").unwrap().to_string(),
            "tcp:localhost:1234"
        );
    }

    #[test]
    fn kb_source_parses_replica_sets() {
        assert_eq!(
            KbSource::parse("tcp:primary:7878,replica:7879, replica2:7880").unwrap(),
            KbSource::Remote("primary:7878,replica:7879,replica2:7880".into())
        );
        assert_eq!(
            KbSource::parse("tcp:a:1,b:2").unwrap().to_string(),
            "tcp:a:1,b:2",
            "round-trips through Display"
        );
        // Every endpoint is validated, not just the first.
        assert!(KbSource::parse("tcp:a:1,nohost").is_err());
        assert!(KbSource::parse("tcp:a:1,:9").is_err());
        assert!(KbSource::parse("tcp:,").is_err());
    }

    #[test]
    fn budget_share_floors() {
        assert_eq!(Budget::Trials(100).share(0.5), Budget::Trials(50));
        assert_eq!(Budget::Trials(10).share(0.01), Budget::Trials(3));
        let d = Budget::Time(Duration::from_secs(10))
            .share(0.25)
            .duration()
            .expect("time budgets share into time budgets");
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn budget_share_survives_degenerate_fractions() {
        // A NaN or out-of-range fraction collapses to the floor share
        // instead of panicking inside Duration::from_secs_f64.
        assert_eq!(Budget::Trials(100).share(f64::NAN), Budget::Trials(3));
        assert_eq!(Budget::Trials(100).share(-1.0), Budget::Trials(3));
        let d = Budget::Time(Duration::from_secs(10))
            .share(f64::INFINITY)
            .duration()
            .unwrap();
        assert!((d.as_secs_f64() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn budget_accessors() {
        assert_eq!(Budget::Trials(7).trials(), Some(7));
        assert_eq!(Budget::Trials(7).duration(), None);
        assert_eq!(Budget::Time(Duration::from_secs(3)).trials(), None);
        assert_eq!(
            Budget::Time(Duration::from_secs(3)).duration(),
            Some(Duration::from_secs(3))
        );
    }

    #[test]
    fn validate_rejects_malformed_options() {
        assert!(SmartMlOptions::default().validate().is_ok());
        let mut o = SmartMlOptions::default();
        o.valid_fraction = f64::NAN;
        assert!(o.validate().is_err());
        o.valid_fraction = 1.0;
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.cv_folds = 1;
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.budget = Budget::Trials(0);
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.budget = Budget::Time(Duration::ZERO);
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.trial_timeout = Some(Duration::ZERO);
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.top_n_algorithms = 0;
        assert!(o.validate().is_err());
        let mut o = SmartMlOptions::default();
        o.halving_eta = 1;
        assert!(o.validate().is_err());
        o.halving_eta = 3;
        assert!(o.validate().is_ok());
    }

    #[test]
    fn optimizer_choice_parses_all_names() {
        for (name, choice) in [
            ("smac", OptimizerChoice::Smac),
            ("grid", OptimizerChoice::Grid),
            ("random", OptimizerChoice::Random),
            ("tpe", OptimizerChoice::Tpe),
            ("halving", OptimizerChoice::Halving),
            ("Hyperband", OptimizerChoice::Hyperband),
            ("ASHA", OptimizerChoice::Asha),
        ] {
            assert_eq!(OptimizerChoice::parse(name).unwrap(), choice);
        }
        assert!(OptimizerChoice::parse("bayesopt").is_err());
        assert_eq!(OptimizerChoice::Asha.to_string(), "asha");
        assert_eq!(
            OptimizerChoice::parse(OptimizerChoice::Hyperband.name()).unwrap(),
            OptimizerChoice::Hyperband
        );
    }

    #[test]
    fn optimizer_builders_chain() {
        let opts = SmartMlOptions::default()
            .with_optimizer(OptimizerChoice::Asha)
            .with_halving_eta(3);
        assert_eq!(opts.optimizer, OptimizerChoice::Asha);
        assert_eq!(opts.halving_eta, 3);
    }
}
