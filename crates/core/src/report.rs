//! Run reports — the structured output of a SmartML run (what the paper's
//! Figure 3 result screen displays).

use crate::interpret::FeatureImportance;
use serde::{Deserialize, Serialize};
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_metafeatures::MetaFeatures;
use smartml_smac::FailureCounts;

/// Timing + detail for one pipeline phase (Figure 1 trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTrace {
    /// Phase name as in Figure 1.
    pub phase: String,
    /// Wall-clock seconds spent.
    pub secs: f64,
    /// Human-readable summary of what happened.
    pub detail: String,
}

/// Tuning summary for one nominated algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmTuning {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// KB nomination score.
    pub selection_score: f64,
    /// Trials the tuner evaluated.
    pub trials: usize,
    /// Best inner cross-validation accuracy.
    pub best_cv_accuracy: f64,
    /// The best configuration found.
    pub best_config: ParamConfig,
    /// Accuracy of the refit model on the held-out validation split.
    pub validation_accuracy: f64,
    /// Warm-start configurations the KB provided.
    pub n_warm_starts: usize,
}

/// The recommended model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestModel {
    /// Winning algorithm.
    pub algorithm: Algorithm,
    /// Winning configuration.
    pub config: ParamConfig,
    /// Validation accuracy.
    pub validation_accuracy: f64,
}

/// Ensemble summary (when ensembling was requested).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// Member algorithms with their normalised weights.
    pub members: Vec<(Algorithm, f64)>,
    /// Ensemble validation accuracy.
    pub validation_accuracy: f64,
}

/// Fault accounting for one tuned algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmFailures {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Trial counts per outcome kind (ok / non-finite / panicked /
    /// timed-out / infeasible).
    pub counts: FailureCounts,
    /// True when the circuit breaker tripped (K consecutive faults) and
    /// tuning stopped early.
    pub tripped: bool,
    /// Extra trials this algorithm received from tripped peers.
    #[serde(default)]
    pub reallocated_trials: usize,
    /// Extra wall-clock seconds this algorithm received from tripped peers.
    #[serde(default)]
    pub reallocated_secs: f64,
}

/// The `failures` section of a run report: what went wrong, what was
/// contained, and where freed budget went.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureReport {
    /// Per-algorithm fault accounting, same order as `tuning`.
    #[serde(default)]
    pub algorithms: Vec<AlgorithmFailures>,
    /// Knowledge-base degradations (backend down, retries exhausted, …);
    /// the run continued on the in-memory fallback.
    #[serde(default)]
    pub kb_warnings: Vec<String>,
    /// Metric degradations (empty validation fold, single-class
    /// predictions) that were coerced to defined values.
    #[serde(default)]
    pub metric_warnings: Vec<String>,
}

impl FailureReport {
    /// True when nothing failed anywhere — the section can be omitted
    /// from rendered output.
    pub fn is_clean(&self) -> bool {
        self.kb_warnings.is_empty()
            && self.metric_warnings.is_empty()
            && self
                .algorithms
                .iter()
                .all(|a| !a.tripped && a.counts.total_failures() == 0)
    }

    /// Total faulted trials (panics + timeouts + non-finite) across all
    /// algorithms — what the fault-injection harness reconciles against
    /// its injection counters.
    pub fn total_faults(&self) -> usize {
        self.algorithms
            .iter()
            .map(|a| a.counts.panicked + a.counts.timed_out + a.counts.non_finite)
            .sum()
    }
}

/// Wall-clock attribution for one algorithm's tuning work, derived from
/// the span trace (the serialisable mirror of `smartml_obs::AlgoTimeline`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoTime {
    /// Algorithm paper name (matches `Algorithm::paper_name`).
    pub algorithm: String,
    /// Wall-clock of the algorithm's `phase4.tune` span(s).
    pub tune_secs: f64,
    /// Trials the optimiser ran.
    pub trials: u64,
    /// Summed `smac.trial` span time — may exceed `tune_secs` when folds
    /// run speculatively in parallel.
    pub trial_secs: f64,
    /// Cross-validation folds evaluated (cache misses only).
    pub folds: u64,
    /// Summed `smac.fold` span time.
    pub fold_secs: f64,
    /// Surrogate model refits.
    pub surrogate_fits: u64,
    /// Summed surrogate fit time.
    pub surrogate_secs: f64,
    /// Multi-fidelity rung evaluations (`smac.rung` spans) — 0 for
    /// non-rung optimisers. Absent in reports from older versions.
    #[serde(default)]
    pub rungs: u64,
    /// Summed rung evaluation time.
    #[serde(default)]
    pub rung_secs: f64,
}

/// "Where the time went": per-phase and per-algorithm wall-clock
/// attribution, aggregated from the structured span trace when the run
/// was started with tracing enabled ([`SmartMlOptions::trace`]).
///
/// Invariant: `phases` + `other_secs` sums to `total_secs` (the root
/// `run` span) within measurement noise; per-algorithm numbers overlap
/// under concurrency and are reported separately, not summed.
///
/// [`SmartMlOptions::trace`]: crate::options::SmartMlOptions::trace
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeAttribution {
    /// Duration of the root `run` span, seconds.
    pub total_secs: f64,
    /// `(phase span name, seconds)` in start order.
    pub phases: Vec<(String, f64)>,
    /// Time inside `run` not covered by any phase span.
    pub other_secs: f64,
    /// Per-algorithm attribution, busiest first.
    pub algorithms: Vec<AlgoTime>,
    /// Spans lost to ring-buffer overwrite while recording (0 = the
    /// attribution is complete).
    pub dropped_spans: u64,
}

impl TimeAttribution {
    /// Converts the obs-crate aggregate (which stays serde-free) into the
    /// report's serialisable form.
    pub fn from_timeline(tl: &smartml_obs::Timeline) -> TimeAttribution {
        TimeAttribution {
            total_secs: tl.total_secs,
            phases: tl.phases.clone(),
            other_secs: tl.other_secs,
            algorithms: tl
                .algorithms
                .iter()
                .map(|a| AlgoTime {
                    algorithm: a.name.clone(),
                    tune_secs: a.tune_secs,
                    trials: a.trials,
                    trial_secs: a.trial_secs,
                    folds: a.folds,
                    fold_secs: a.fold_secs,
                    surrogate_fits: a.surrogate_fits,
                    surrogate_secs: a.surrogate_secs,
                    rungs: a.rungs,
                    rung_secs: a.rung_secs,
                })
                .collect(),
            dropped_spans: tl.dropped_spans,
        }
    }
}

/// Escapes characters that would break out of a Markdown table cell:
/// `|` becomes `\|` and embedded newlines become spaces. Algorithm and
/// parameter names flow into `render_markdown` cells verbatim, so any
/// future name containing a pipe must not silently add table columns.
pub fn md_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '|' => out.push_str("\\|"),
            '\n' | '\r' => out.push(' '),
            _ => out.push(c),
        }
    }
    out
}

/// Full report of one SmartML run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Dataset name.
    pub dataset: String,
    /// Rows / features / classes after preprocessing.
    pub n_rows: usize,
    /// Feature count after preprocessing.
    pub n_features: usize,
    /// Class count.
    pub n_classes: usize,
    /// Phase-by-phase trace (Figure 1).
    pub phases: Vec<PhaseTrace>,
    /// The extracted 25 meta-features.
    pub meta_features: MetaFeatures,
    /// Neighbour datasets the KB consulted: `(id, distance)`.
    pub kb_neighbors: Vec<(String, f64)>,
    /// Per-algorithm tuning results, KB-score order.
    pub tuning: Vec<AlgorithmTuning>,
    /// The recommended model.
    pub best: BestModel,
    /// Ensemble result, when requested.
    pub ensemble: Option<EnsembleReport>,
    /// Permutation feature importance of the winner, when requested.
    pub importance: Option<Vec<FeatureImportance>>,
    /// Fault accounting: contained failures, tripped breakers, budget
    /// reallocation, KB/metric degradations. Empty on a clean run.
    #[serde(default)]
    pub failures: FailureReport,
    /// "Where the time went" — span-derived wall-clock attribution.
    /// `None` unless the run was traced ([`SmartMlOptions::trace`]), so
    /// untraced reports stay byte-identical to pre-observability ones
    /// modulo the literal `null` field.
    ///
    /// [`SmartMlOptions::trace`]: crate::options::SmartMlOptions::trace
    #[serde(default)]
    pub timeline: Option<TimeAttribution>,
}

impl RunReport {
    /// Renders the report as the text analogue of the paper's Figure-3
    /// output screen.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("SmartML results for '{}'\n", self.dataset));
        out.push_str(&format!(
            "  {} rows x {} features, {} classes\n",
            self.n_rows, self.n_features, self.n_classes
        ));
        out.push_str("  Phases:\n");
        for p in &self.phases {
            out.push_str(&format!("    {:<28} {:>8.3}s  {}\n", p.phase, p.secs, p.detail));
        }
        out.push_str("  Tuned algorithms:\n");
        for t in &self.tuning {
            out.push_str(&format!(
                "    {:<14} cv={:.4} valid={:.4} trials={} warm-starts={}\n",
                t.algorithm.paper_name(),
                t.best_cv_accuracy,
                t.validation_accuracy,
                t.trials,
                t.n_warm_starts
            ));
        }
        out.push_str(&format!(
            "  Recommended: {} ({:.2}% validation accuracy)\n    {}\n",
            self.best.algorithm.paper_name(),
            self.best.validation_accuracy * 100.0,
            self.best.config.summary()
        ));
        if let Some(e) = &self.ensemble {
            let members: Vec<String> = e
                .members
                .iter()
                .map(|(a, w)| format!("{}({:.2})", a.paper_name(), w))
                .collect();
            out.push_str(&format!(
                "  Ensemble [{}]: {:.2}% validation accuracy\n",
                members.join(", "),
                e.validation_accuracy * 100.0
            ));
        }
        if let Some(imp) = &self.importance {
            out.push_str("  Feature importance (permutation):\n");
            for fi in imp.iter().take(10) {
                out.push_str(&format!("    {:<20} {:+.4}\n", fi.feature, fi.importance));
            }
        }
        if !self.failures.is_clean() {
            out.push_str("  Failures (contained):\n");
            for af in &self.failures.algorithms {
                if !af.tripped && af.counts.total_failures() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<14} panicked={} timed_out={} non_finite={} infeasible={}{}",
                    af.algorithm.paper_name(),
                    af.counts.panicked,
                    af.counts.timed_out,
                    af.counts.non_finite,
                    af.counts.failed,
                    if af.tripped { "  [breaker tripped]" } else { "" },
                ));
                if af.reallocated_trials > 0 {
                    out.push_str(&format!("  (+{} reallocated trials)", af.reallocated_trials));
                }
                if af.reallocated_secs > 0.0 {
                    out.push_str(&format!("  (+{:.2}s reallocated)", af.reallocated_secs));
                }
                out.push('\n');
            }
            for w in &self.failures.kb_warnings {
                out.push_str(&format!("    kb: {w}\n"));
            }
            for w in &self.failures.metric_warnings {
                out.push_str(&format!("    metric: {w}\n"));
            }
        }
        if let Some(tl) = &self.timeline {
            out.push_str("  Where the time went:\n");
            out.push_str(&format!("    total {:>26.3}s\n", tl.total_secs));
            for (phase, secs) in &tl.phases {
                out.push_str(&format!("    {:<28} {:>8.3}s\n", phase, secs));
            }
            out.push_str(&format!("    {:<28} {:>8.3}s\n", "(between phases)", tl.other_secs));
            for a in &tl.algorithms {
                let rungs = if a.rungs > 0 {
                    format!(" rungs={} ({:.3}s)", a.rungs, a.rung_secs)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "    {:<14} tune={:.3}s trials={} ({:.3}s) folds={} ({:.3}s) surrogate={} ({:.3}s){}\n",
                    a.algorithm,
                    a.tune_secs,
                    a.trials,
                    a.trial_secs,
                    a.folds,
                    a.fold_secs,
                    a.surrogate_fits,
                    a.surrogate_secs,
                    rungs,
                ));
            }
            if tl.dropped_spans > 0 {
                out.push_str(&format!(
                    "    ({} spans dropped — attribution is partial)\n",
                    tl.dropped_spans
                ));
            }
        }
        out
    }
}

impl RunReport {
    /// Renders the report as Markdown — for READMEs, issue reports, and
    /// notebook-style summaries.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## SmartML results — `{}`\n\n", self.dataset));
        out.push_str(&format!(
            "{} rows × {} features, {} classes\n\n",
            self.n_rows, self.n_features, self.n_classes
        ));
        out.push_str("| phase | time (s) | detail |\n|---|---:|---|\n");
        for p in &self.phases {
            out.push_str(&format!(
                "| {} | {:.3} | {} |\n",
                md_escape(&p.phase),
                p.secs,
                md_escape(&p.detail)
            ));
        }
        out.push_str("\n| algorithm | cv acc | valid acc | trials | warm starts |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for t in &self.tuning {
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {} | {} |\n",
                md_escape(t.algorithm.paper_name()),
                t.best_cv_accuracy,
                t.validation_accuracy,
                t.trials,
                t.n_warm_starts
            ));
        }
        out.push_str(&format!(
            "\n**Recommended:** `{}` at **{:.2}%** validation accuracy \n`{}`\n",
            self.best.algorithm.paper_name(),
            self.best.validation_accuracy * 100.0,
            self.best.config.summary()
        ));
        if let Some(e) = &self.ensemble {
            let members: Vec<String> = e
                .members
                .iter()
                .map(|(a, w)| format!("{} ({w:.2})", a.paper_name()))
                .collect();
            out.push_str(&format!(
                "\n**Ensemble** [{}]: {:.2}%\n",
                members.join(", "),
                e.validation_accuracy * 100.0
            ));
        }
        if let Some(imp) = &self.importance {
            out.push_str("\n| feature | permutation importance |\n|---|---:|\n");
            for fi in imp.iter().take(10) {
                out.push_str(&format!(
                    "| {} | {:+.4} |\n",
                    md_escape(&fi.feature),
                    fi.importance
                ));
            }
        }
        if !self.failures.is_clean() {
            out.push_str(
                "\n### Failures (contained)\n\n| algorithm | panicked | timed out | non-finite | infeasible | breaker | reallocated |\n|---|---:|---:|---:|---:|---|---|\n",
            );
            for af in &self.failures.algorithms {
                if !af.tripped && af.counts.total_failures() == 0 {
                    continue;
                }
                let realloc = if af.reallocated_trials > 0 {
                    format!("+{} trials", af.reallocated_trials)
                } else if af.reallocated_secs > 0.0 {
                    format!("+{:.2}s", af.reallocated_secs)
                } else {
                    "—".to_string()
                };
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} |\n",
                    md_escape(af.algorithm.paper_name()),
                    af.counts.panicked,
                    af.counts.timed_out,
                    af.counts.non_finite,
                    af.counts.failed,
                    if af.tripped { "tripped" } else { "—" },
                    realloc,
                ));
            }
            for w in &self.failures.kb_warnings {
                out.push_str(&format!("\n> kb: {w}\n"));
            }
            for w in &self.failures.metric_warnings {
                out.push_str(&format!("\n> metric: {w}\n"));
            }
        }
        if let Some(tl) = &self.timeline {
            out.push_str("\n### Where the time went\n\n");
            out.push_str("| phase | time (s) |\n|---|---:|\n");
            for (phase, secs) in &tl.phases {
                out.push_str(&format!("| {} | {:.3} |\n", md_escape(phase), secs));
            }
            out.push_str(&format!("| (between phases) | {:.3} |\n", tl.other_secs));
            out.push_str(&format!("| **total** | **{:.3}** |\n", tl.total_secs));
            if !tl.algorithms.is_empty() {
                out.push_str(
                    "\n| algorithm | tune (s) | trials | trial (s) | folds | fold (s) | surrogate fits | surrogate (s) | rungs | rung (s) |\n|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
                );
                for a in &tl.algorithms {
                    out.push_str(&format!(
                        "| {} | {:.3} | {} | {:.3} | {} | {:.3} | {} | {:.3} | {} | {:.3} |\n",
                        md_escape(&a.algorithm),
                        a.tune_secs,
                        a.trials,
                        a.trial_secs,
                        a.folds,
                        a.fold_secs,
                        a.surrogate_fits,
                        a.surrogate_secs,
                        a.rungs,
                        a.rung_secs,
                    ));
                }
            }
            if tl.dropped_spans > 0 {
                out.push_str(&format!(
                    "\n> {} spans dropped — attribution is partial\n",
                    tl.dropped_spans
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_metafeatures::N_META_FEATURES;

    fn dummy_report() -> RunReport {
        RunReport {
            dataset: "toy".into(),
            n_rows: 10,
            n_features: 2,
            n_classes: 2,
            phases: vec![PhaseTrace {
                phase: "Preprocessing".into(),
                secs: 0.01,
                detail: "zv".into(),
            }],
            meta_features: MetaFeatures { values: vec![0.0; N_META_FEATURES] },
            kb_neighbors: vec![("other".into(), 1.5)],
            tuning: vec![],
            best: BestModel {
                algorithm: Algorithm::Knn,
                config: ParamConfig::default(),
                validation_accuracy: 0.91,
            },
            ensemble: None,
            importance: None,
            failures: FailureReport::default(),
            timeline: None,
        }
    }

    #[test]
    fn render_contains_key_facts() {
        let text = dummy_report().render();
        assert!(text.contains("toy"));
        assert!(text.contains("Recommended: KNN"));
        assert!(text.contains("91.00%"));
    }

    #[test]
    fn markdown_render_contains_tables() {
        let md = dummy_report().render_markdown();
        assert!(md.starts_with("## SmartML results"));
        assert!(md.contains("| phase | time (s) | detail |"));
        assert!(md.contains("**Recommended:** `KNN`"));
    }

    #[test]
    fn serde_roundtrip() {
        let report = dummy_report();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset, "toy");
        assert_eq!(back.best.algorithm, Algorithm::Knn);
    }

    #[test]
    fn legacy_reports_without_failures_still_deserialize() {
        // Pre-fault-containment JSON has no `failures` key.
        let json = serde_json::to_string(&dummy_report()).unwrap();
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        match &mut value {
            serde_json::Value::Object(pairs) => pairs.retain(|(k, _)| k != "failures"),
            other => panic!("report serialises to an object, got {other:?}"),
        }
        let stripped = serde_json::to_string(&value).unwrap();
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert!(back.failures.is_clean());
    }

    #[test]
    fn failure_section_renders_when_dirty() {
        let mut report = dummy_report();
        report.failures.algorithms.push(AlgorithmFailures {
            algorithm: Algorithm::Svm,
            counts: FailureCounts { ok: 3, panicked: 2, timed_out: 1, ..Default::default() },
            tripped: true,
            reallocated_trials: 0,
            reallocated_secs: 0.0,
        });
        report.failures.algorithms.push(AlgorithmFailures {
            algorithm: Algorithm::Knn,
            counts: FailureCounts { ok: 9, ..Default::default() },
            tripped: false,
            reallocated_trials: 6,
            reallocated_secs: 0.0,
        });
        report.failures.kb_warnings.push("backend down".into());
        assert!(!report.failures.is_clean());
        assert_eq!(report.failures.total_faults(), 3);
        let text = report.render();
        assert!(text.contains("Failures (contained)"));
        assert!(text.contains("[breaker tripped]"));
        assert!(text.contains("kb: backend down"));
        let md = report.render_markdown();
        assert!(md.contains("### Failures (contained)"));
        assert!(md.contains("| SVM | 2 | 1 |"));
        // A clean report omits the section entirely.
        let clean = dummy_report();
        assert!(!clean.render().contains("Failures"));
    }

    #[test]
    fn md_escape_neutralises_table_breakers() {
        assert_eq!(md_escape("plain"), "plain");
        assert_eq!(md_escape("a|b"), "a\\|b");
        assert_eq!(md_escape("||"), "\\|\\|");
        assert_eq!(md_escape("multi\nline\rname"), "multi line name");
        assert_eq!(md_escape(""), "");
        // Idempotence is NOT expected (escaping an escape re-escapes the
        // pipe) — callers escape raw names exactly once.
        assert_eq!(md_escape("a\\|b"), "a\\\\|b");
    }

    #[test]
    fn markdown_cells_escape_pipes_in_names() {
        let mut report = dummy_report();
        report.phases[0].detail = "ops=[zv|pca]".into();
        report.importance = Some(vec![crate::interpret::FeatureImportance {
            feature: "f|0".into(),
            importance: 0.5,
        }]);
        let md = report.render_markdown();
        assert!(md.contains("ops=[zv\\|pca]"));
        assert!(md.contains("| f\\|0 |"));
        assert!(!md.contains("| f|0 |"));
    }

    #[test]
    fn timeline_renders_in_both_formats() {
        let mut report = dummy_report();
        report.timeline = Some(TimeAttribution {
            total_secs: 2.0,
            phases: vec![
                ("phase2.preprocess".into(), 0.25),
                ("phase4.tune_all".into(), 1.5),
            ],
            other_secs: 0.25,
            algorithms: vec![AlgoTime {
                algorithm: "RandomForest".into(),
                tune_secs: 1.4,
                trials: 8,
                trial_secs: 1.2,
                folds: 16,
                fold_secs: 1.0,
                surrogate_fits: 4,
                surrogate_secs: 0.1,
                rungs: 6,
                rung_secs: 0.4,
            }],
            dropped_spans: 0,
        });
        let text = report.render();
        assert!(text.contains("Where the time went"));
        assert!(text.contains("phase4.tune_all"));
        assert!(text.contains("RandomForest"));
        let md = report.render_markdown();
        assert!(md.contains("### Where the time went"));
        assert!(md.contains("| phase2.preprocess | 0.250 |"));
        assert!(md.contains("| RandomForest | 1.400 | 8 |"));
        // Untraced reports stay silent.
        assert!(!dummy_report().render().contains("Where the time went"));
        assert!(!dummy_report().render_markdown().contains("Where the time went"));
    }

    #[test]
    fn timeline_phase_rows_sum_to_total() {
        // The invariant the acceptance criteria pin: phases + other == total.
        let tl = TimeAttribution {
            total_secs: 3.0,
            phases: vec![("phase2.preprocess".into(), 1.0), ("phase5.output".into(), 1.5)],
            other_secs: 0.5,
            algorithms: vec![],
            dropped_spans: 0,
        };
        let sum: f64 = tl.phases.iter().map(|(_, s)| s).sum::<f64>() + tl.other_secs;
        assert!((sum - tl.total_secs).abs() <= 0.01 * tl.total_secs);
    }
}
