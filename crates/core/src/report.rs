//! Run reports — the structured output of a SmartML run (what the paper's
//! Figure 3 result screen displays).

use crate::interpret::FeatureImportance;
use serde::{Deserialize, Serialize};
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_metafeatures::MetaFeatures;

/// Timing + detail for one pipeline phase (Figure 1 trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTrace {
    /// Phase name as in Figure 1.
    pub phase: String,
    /// Wall-clock seconds spent.
    pub secs: f64,
    /// Human-readable summary of what happened.
    pub detail: String,
}

/// Tuning summary for one nominated algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmTuning {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// KB nomination score.
    pub selection_score: f64,
    /// Trials the tuner evaluated.
    pub trials: usize,
    /// Best inner cross-validation accuracy.
    pub best_cv_accuracy: f64,
    /// The best configuration found.
    pub best_config: ParamConfig,
    /// Accuracy of the refit model on the held-out validation split.
    pub validation_accuracy: f64,
    /// Warm-start configurations the KB provided.
    pub n_warm_starts: usize,
}

/// The recommended model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestModel {
    /// Winning algorithm.
    pub algorithm: Algorithm,
    /// Winning configuration.
    pub config: ParamConfig,
    /// Validation accuracy.
    pub validation_accuracy: f64,
}

/// Ensemble summary (when ensembling was requested).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// Member algorithms with their normalised weights.
    pub members: Vec<(Algorithm, f64)>,
    /// Ensemble validation accuracy.
    pub validation_accuracy: f64,
}

/// Full report of one SmartML run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Dataset name.
    pub dataset: String,
    /// Rows / features / classes after preprocessing.
    pub n_rows: usize,
    /// Feature count after preprocessing.
    pub n_features: usize,
    /// Class count.
    pub n_classes: usize,
    /// Phase-by-phase trace (Figure 1).
    pub phases: Vec<PhaseTrace>,
    /// The extracted 25 meta-features.
    pub meta_features: MetaFeatures,
    /// Neighbour datasets the KB consulted: `(id, distance)`.
    pub kb_neighbors: Vec<(String, f64)>,
    /// Per-algorithm tuning results, KB-score order.
    pub tuning: Vec<AlgorithmTuning>,
    /// The recommended model.
    pub best: BestModel,
    /// Ensemble result, when requested.
    pub ensemble: Option<EnsembleReport>,
    /// Permutation feature importance of the winner, when requested.
    pub importance: Option<Vec<FeatureImportance>>,
}

impl RunReport {
    /// Renders the report as the text analogue of the paper's Figure-3
    /// output screen.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("SmartML results for '{}'\n", self.dataset));
        out.push_str(&format!(
            "  {} rows x {} features, {} classes\n",
            self.n_rows, self.n_features, self.n_classes
        ));
        out.push_str("  Phases:\n");
        for p in &self.phases {
            out.push_str(&format!("    {:<28} {:>8.3}s  {}\n", p.phase, p.secs, p.detail));
        }
        out.push_str("  Tuned algorithms:\n");
        for t in &self.tuning {
            out.push_str(&format!(
                "    {:<14} cv={:.4} valid={:.4} trials={} warm-starts={}\n",
                t.algorithm.paper_name(),
                t.best_cv_accuracy,
                t.validation_accuracy,
                t.trials,
                t.n_warm_starts
            ));
        }
        out.push_str(&format!(
            "  Recommended: {} ({:.2}% validation accuracy)\n    {}\n",
            self.best.algorithm.paper_name(),
            self.best.validation_accuracy * 100.0,
            self.best.config.summary()
        ));
        if let Some(e) = &self.ensemble {
            let members: Vec<String> = e
                .members
                .iter()
                .map(|(a, w)| format!("{}({:.2})", a.paper_name(), w))
                .collect();
            out.push_str(&format!(
                "  Ensemble [{}]: {:.2}% validation accuracy\n",
                members.join(", "),
                e.validation_accuracy * 100.0
            ));
        }
        if let Some(imp) = &self.importance {
            out.push_str("  Feature importance (permutation):\n");
            for fi in imp.iter().take(10) {
                out.push_str(&format!("    {:<20} {:+.4}\n", fi.feature, fi.importance));
            }
        }
        out
    }
}

impl RunReport {
    /// Renders the report as Markdown — for READMEs, issue reports, and
    /// notebook-style summaries.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## SmartML results — `{}`\n\n", self.dataset));
        out.push_str(&format!(
            "{} rows × {} features, {} classes\n\n",
            self.n_rows, self.n_features, self.n_classes
        ));
        out.push_str("| phase | time (s) | detail |\n|---|---:|---|\n");
        for p in &self.phases {
            out.push_str(&format!("| {} | {:.3} | {} |\n", p.phase, p.secs, p.detail));
        }
        out.push_str("\n| algorithm | cv acc | valid acc | trials | warm starts |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for t in &self.tuning {
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {} | {} |\n",
                t.algorithm.paper_name(),
                t.best_cv_accuracy,
                t.validation_accuracy,
                t.trials,
                t.n_warm_starts
            ));
        }
        out.push_str(&format!(
            "\n**Recommended:** `{}` at **{:.2}%** validation accuracy \n`{}`\n",
            self.best.algorithm.paper_name(),
            self.best.validation_accuracy * 100.0,
            self.best.config.summary()
        ));
        if let Some(e) = &self.ensemble {
            let members: Vec<String> = e
                .members
                .iter()
                .map(|(a, w)| format!("{} ({w:.2})", a.paper_name()))
                .collect();
            out.push_str(&format!(
                "\n**Ensemble** [{}]: {:.2}%\n",
                members.join(", "),
                e.validation_accuracy * 100.0
            ));
        }
        if let Some(imp) = &self.importance {
            out.push_str("\n| feature | permutation importance |\n|---|---:|\n");
            for fi in imp.iter().take(10) {
                out.push_str(&format!("| {} | {:+.4} |\n", fi.feature, fi.importance));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_metafeatures::N_META_FEATURES;

    fn dummy_report() -> RunReport {
        RunReport {
            dataset: "toy".into(),
            n_rows: 10,
            n_features: 2,
            n_classes: 2,
            phases: vec![PhaseTrace {
                phase: "Preprocessing".into(),
                secs: 0.01,
                detail: "zv".into(),
            }],
            meta_features: MetaFeatures { values: vec![0.0; N_META_FEATURES] },
            kb_neighbors: vec![("other".into(), 1.5)],
            tuning: vec![],
            best: BestModel {
                algorithm: Algorithm::Knn,
                config: ParamConfig::default(),
                validation_accuracy: 0.91,
            },
            ensemble: None,
            importance: None,
        }
    }

    #[test]
    fn render_contains_key_facts() {
        let text = dummy_report().render();
        assert!(text.contains("toy"));
        assert!(text.contains("Recommended: KNN"));
        assert!(text.contains("91.00%"));
    }

    #[test]
    fn markdown_render_contains_tables() {
        let md = dummy_report().render_markdown();
        assert!(md.starts_with("## SmartML results"));
        assert!(md.contains("| phase | time (s) | detail |"));
        assert!(md.contains("**Recommended:** `KNN`"));
    }

    #[test]
    fn serde_roundtrip() {
        let report = dummy_report();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset, "toy");
        assert_eq!(back.best.algorithm, Algorithm::Knn);
    }
}
