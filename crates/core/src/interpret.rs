//! Model interpretability — the `iml` package substitute (paper §2:
//! "we have integrated the Interpretable Machine Learning (iml) package in
//! order to explain for the user the most important features").
//!
//! Permutation feature importance: a feature's importance is the validation
//! accuracy lost when its column is randomly permuted, breaking its
//! association with the label while preserving its marginal distribution.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smartml_classifiers::TrainedModel;
use smartml_data::{accuracy, Dataset, Feature};
use smartml_runtime::{task_seed, Pool};

/// One feature's importance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature name.
    pub feature: String,
    /// Mean accuracy drop when the feature is permuted (can be slightly
    /// negative for pure-noise features).
    pub importance: f64,
}

/// Permutation importance of every feature, sorted most-important first.
///
/// `repeats` permutations per feature are averaged to tame shuffle noise.
pub fn permutation_importance(
    model: &dyn TrainedModel,
    data: &Dataset,
    rows: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    permutation_importance_with(model, data, rows, repeats, seed, Pool::serial())
}

/// [`permutation_importance`] with features scored on `pool`.
///
/// Each `(feature, repeat)` permutation draws from its own RNG seeded by
/// `task_seed(seed, feature * repeats + repeat)`, so the importances are
/// identical for any pool width (including the serial path).
pub fn permutation_importance_with(
    model: &dyn TrainedModel,
    data: &Dataset,
    rows: &[usize],
    repeats: usize,
    seed: u64,
    pool: Pool,
) -> Vec<FeatureImportance> {
    let truth = data.labels_for(rows);
    let baseline = accuracy(&truth, &model.predict(data, rows));
    let repeats = repeats.max(1);
    let mut result: Vec<FeatureImportance> = pool.map_indexed(
        data.features().iter().enumerate().collect(),
        |_, (idx, feat)| {
            let mut drop_total = 0.0;
            for rep in 0..repeats {
                let mut rng =
                    StdRng::seed_from_u64(task_seed(seed, (idx * repeats + rep) as u64));
                let permuted = permute_feature(data, rows, idx, &mut rng);
                let permuted_acc = accuracy(&truth, &model.predict(&permuted, rows));
                drop_total += baseline - permuted_acc;
            }
            FeatureImportance {
                feature: feat.name().to_string(),
                importance: drop_total / repeats as f64,
            }
        },
    );
    result.sort_by(|a, b| b.importance.partial_cmp(&a.importance).unwrap());
    result
}

/// Per-prediction explanation: how much each feature contributed to the
/// model's class choice for one row.
///
/// Contribution of feature *j* is the drop in the predicted probability of
/// the chosen class when *j* is replaced by a neutral baseline (the mean of
/// the feature over `background_rows` for numerics, the mode for
/// categoricals) — a fast single-feature ablation in the spirit of iml's
/// Shapley/LIME views. Returned sorted by |contribution|, largest first.
pub fn explain_prediction(
    model: &dyn TrainedModel,
    data: &Dataset,
    row: usize,
    background_rows: &[usize],
) -> Vec<FeatureImportance> {
    let base_proba = model.predict_proba(data, &[row]);
    let chosen = smartml_linalg::vecops::argmax(&base_proba[0]).unwrap_or(0);
    let base_p = base_proba[0][chosen];
    let mut contributions: Vec<FeatureImportance> = data
        .features()
        .iter()
        .enumerate()
        .map(|(idx, feat)| {
            let neutralised = neutralise_feature(data, row, idx, background_rows);
            let p = model.predict_proba(&neutralised, &[row])[0][chosen];
            FeatureImportance { feature: feat.name().to_string(), importance: base_p - p }
        })
        .collect();
    contributions.sort_by(|a, b| b.importance.abs().partial_cmp(&a.importance.abs()).unwrap());
    contributions
}

/// Copy of `data` with feature `idx` of `row` replaced by the background
/// mean/mode.
fn neutralise_feature(
    data: &Dataset,
    row: usize,
    idx: usize,
    background_rows: &[usize],
) -> Dataset {
    use smartml_linalg::vecops;
    let features = data
        .features()
        .iter()
        .enumerate()
        .map(|(i, feat)| {
            if i != idx {
                return feat.clone();
            }
            match feat {
                Feature::Numeric { name, values } => {
                    let background: Vec<f64> = background_rows
                        .iter()
                        .map(|&r| values[r])
                        .filter(|v| !v.is_nan())
                        .collect();
                    let mut new_values = values.clone();
                    new_values[row] = vecops::mean(&background);
                    Feature::Numeric { name: name.clone(), values: new_values }
                }
                Feature::Categorical { name, codes, levels } => {
                    let mut counts = vec![0usize; levels.len()];
                    for &r in background_rows {
                        let c = codes[r];
                        if c != smartml_data::dataset::MISSING_CODE {
                            counts[c as usize] += 1;
                        }
                    }
                    let mode = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map_or(0, |(i, _)| i as u32);
                    let mut new_codes = codes.clone();
                    new_codes[row] = mode;
                    Feature::Categorical {
                        name: name.clone(),
                        codes: new_codes,
                        levels: levels.clone(),
                    }
                }
            }
        })
        .collect();
    data.with_features(features)
}

/// Copy of `data` with feature `idx` permuted **within `rows`** (other rows
/// untouched, so absolute row indices keep working).
fn permute_feature(data: &Dataset, rows: &[usize], idx: usize, rng: &mut StdRng) -> Dataset {
    let mut shuffled = rows.to_vec();
    shuffled.shuffle(rng);
    let features = data
        .features()
        .iter()
        .enumerate()
        .map(|(i, feat)| {
            if i != idx {
                return feat.clone();
            }
            match feat {
                Feature::Numeric { name, values } => {
                    let mut new_values = values.clone();
                    for (&dst, &src) in rows.iter().zip(&shuffled) {
                        new_values[dst] = values[src];
                    }
                    Feature::Numeric { name: name.clone(), values: new_values }
                }
                Feature::Categorical { name, codes, levels } => {
                    let mut new_codes = codes.clone();
                    for (&dst, &src) in rows.iter().zip(&shuffled) {
                        new_codes[dst] = codes[src];
                    }
                    Feature::Categorical {
                        name: name.clone(),
                        codes: new_codes,
                        levels: levels.clone(),
                    }
                }
            }
        })
        .collect();
    data.with_features(features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::xor_parity;

    #[test]
    fn informative_features_rank_first() {
        // 2 informative + 4 noise dimensions; a forest solves it and the
        // informative features should top the importance ranking.
        let d = xor_parity("x", 400, 2, 4, 0.0, 1);
        let rows = d.all_rows();
        let model = Algorithm::RandomForest
            .build(&ParamConfig::default().with("ntree", smartml_classifiers::ParamValue::Int(60)))
            .fit(&d, &rows)
            .unwrap();
        let imp = permutation_importance(model.as_ref(), &d, &rows, 3, 7);
        assert_eq!(imp.len(), 6);
        let top2: Vec<&str> = imp[..2].iter().map(|f| f.feature.as_str()).collect();
        assert!(top2.contains(&"f0") && top2.contains(&"f1"), "{top2:?}");
        // Informative importances clearly above noise importances.
        assert!(imp[0].importance > 0.1);
        assert!(imp[0].importance > imp[3].importance + 0.05);
    }

    #[test]
    fn importances_near_zero_for_pure_noise_model() {
        let d = xor_parity("x", 200, 1, 3, 0.0, 2);
        let rows = d.all_rows();
        let model = Algorithm::Knn.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let imp = permutation_importance(model.as_ref(), &d, &rows, 2, 3);
        // Noise features (f1..f3) hover near zero.
        for fi in imp.iter().filter(|f| f.feature != "f0") {
            assert!(fi.importance.abs() < 0.2, "{}: {}", fi.feature, fi.importance);
        }
    }

    #[test]
    fn explanation_flags_the_informative_feature() {
        let d = xor_parity("x", 300, 1, 4, 0.0, 5);
        let rows = d.all_rows();
        let model = Algorithm::RandomForest
            .build(&ParamConfig::default())
            .fit(&d, &rows)
            .unwrap();
        // Explain several confident predictions; the informative feature f0
        // must dominate most explanations.
        let mut f0_top = 0usize;
        let checked = 10usize;
        for &r in rows.iter().take(checked) {
            let exp = explain_prediction(model.as_ref(), &d, r, &rows);
            assert_eq!(exp.len(), 5);
            if exp[0].feature == "f0" {
                f0_top += 1;
            }
        }
        assert!(f0_top >= 7, "f0 topped only {f0_top}/{checked} explanations");
    }

    #[test]
    fn explanation_contributions_are_bounded() {
        let d = xor_parity("x", 150, 1, 2, 0.0, 6);
        let rows = d.all_rows();
        let model = Algorithm::Knn.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let exp = explain_prediction(model.as_ref(), &d, 0, &rows);
        for fi in &exp {
            assert!((-1.0..=1.0).contains(&fi.importance), "{}: {}", fi.feature, fi.importance);
        }
        // Sorted by |contribution| descending.
        for w in exp.windows(2) {
            assert!(w[0].importance.abs() >= w[1].importance.abs() - 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = xor_parity("x", 150, 1, 2, 0.0, 4);
        let rows = d.all_rows();
        let model = Algorithm::Rpart.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let a = permutation_importance(model.as_ref(), &d, &rows, 2, 9);
        let b = permutation_importance(model.as_ref(), &d, &rows, 2, 9);
        assert_eq!(
            a.iter().map(|f| (f.feature.clone(), f.importance)).collect::<Vec<_>>(),
            b.iter().map(|f| (f.feature.clone(), f.importance)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pool_width_does_not_change_importances() {
        let d = xor_parity("x", 200, 2, 3, 0.0, 8);
        let rows = d.all_rows();
        let model = Algorithm::RandomForest
            .build(&ParamConfig::default())
            .fit(&d, &rows)
            .unwrap();
        let flatten = |v: &[FeatureImportance]| {
            v.iter().map(|f| (f.feature.clone(), f.importance)).collect::<Vec<_>>()
        };
        let serial = permutation_importance_with(model.as_ref(), &d, &rows, 3, 11, Pool::serial());
        for threads in [2, 8] {
            let par =
                permutation_importance_with(model.as_ref(), &d, &rows, 3, 11, Pool::new(threads));
            assert_eq!(flatten(&serial), flatten(&par), "pool width {threads} diverged");
        }
    }
}
