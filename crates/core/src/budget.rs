//! Budget division among nominated algorithms.
//!
//! Paper §2: "this budget is divided among all the selected algorithms
//! according to the number of hyper-parameters to tune in each algorithm
//! (Table 3)" — more parameters, more budget.

use crate::options::Budget;
use smartml_classifiers::Algorithm;

/// Splits `total` across `algorithms` proportionally to each algorithm's
/// hyperparameter count. Every algorithm receives a non-zero floor share
/// (3 trials / 50 ms) so even one-parameter models get tuned.
pub fn divide_budget(total: Budget, algorithms: &[Algorithm]) -> Vec<(Algorithm, Budget)> {
    let weights: Vec<f64> = algorithms
        .iter()
        .map(|a| a.param_space().n_params() as f64)
        .collect();
    let sum: f64 = weights.iter().sum::<f64>().max(1.0);
    algorithms
        .iter()
        .zip(&weights)
        .map(|(&a, &w)| (a, total.share(w / sum)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_param_counts() {
        // SVM has 5 params, KNN has 1: SVM gets 5x the trials (before floor).
        let shares = divide_budget(Budget::Trials(60), &[Algorithm::Svm, Algorithm::Knn]);
        let svm = match shares[0].1 {
            Budget::Trials(t) => t,
            _ => panic!(),
        };
        let knn = match shares[1].1 {
            Budget::Trials(t) => t,
            _ => panic!(),
        };
        assert_eq!(svm, 50);
        assert_eq!(knn, 10);
    }

    #[test]
    fn floor_guarantees_minimum() {
        let shares = divide_budget(
            Budget::Trials(6),
            &[Algorithm::Svm, Algorithm::Knn, Algorithm::NeuralNet],
        );
        for (_, b) in shares {
            match b {
                Budget::Trials(t) => assert!(t >= 3),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn single_algorithm_gets_everything() {
        let shares = divide_budget(Budget::Trials(40), &[Algorithm::Rpart]);
        assert_eq!(shares.len(), 1);
        assert_eq!(shares[0].1, Budget::Trials(40));
    }

    #[test]
    fn equal_param_counts_split_evenly() {
        // J48 and part both have 3 params.
        let shares = divide_budget(Budget::Trials(20), &[Algorithm::J48, Algorithm::Part]);
        assert_eq!(shares[0].1, shares[1].1);
    }
}
