//! Budget division among nominated algorithms.
//!
//! Paper §2: "this budget is divided among all the selected algorithms
//! according to the number of hyper-parameters to tune in each algorithm
//! (Table 3)" — more parameters, more budget. The same proportional rule
//! reallocates budget freed by a tripped circuit breaker to the surviving
//! algorithms.

use crate::options::Budget;
use smartml_classifiers::Algorithm;

/// Splits `total` across `algorithms` proportionally to each algorithm's
/// hyperparameter count. Every algorithm receives a non-zero floor share
/// (3 trials / 50 ms) so even one-parameter models get tuned.
pub fn divide_budget(total: Budget, algorithms: &[Algorithm]) -> Vec<(Algorithm, Budget)> {
    let weights: Vec<f64> = algorithms
        .iter()
        .map(|a| a.param_space().n_params() as f64)
        .collect();
    let sum: f64 = weights.iter().sum::<f64>().max(1.0);
    algorithms
        .iter()
        .zip(&weights)
        .map(|(&a, &w)| (a, total.share(w / sum)))
        .collect()
}

/// Apportions `freed` trials among `survivors` proportionally to their
/// hyperparameter counts using the largest-remainder method, so the shares
/// sum to exactly `freed` — nothing a tripped breaker released is lost to
/// rounding. Deterministic: ties break by position.
pub fn apportion_trials(freed: usize, survivors: &[Algorithm]) -> Vec<(Algorithm, usize)> {
    if survivors.is_empty() || freed == 0 {
        return survivors.iter().map(|&a| (a, 0)).collect();
    }
    let weights: Vec<f64> = survivors
        .iter()
        .map(|a| a.param_space().n_params().max(1) as f64)
        .collect();
    let sum: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|w| freed as f64 * w / sum).collect();
    let mut shares: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let assigned: usize = shares.iter().sum();
    // Hand the leftover trials to the largest fractional remainders.
    let mut order: Vec<usize> = (0..survivors.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    for &i in order.iter().take(freed.saturating_sub(assigned)) {
        shares[i] += 1;
    }
    survivors.iter().copied().zip(shares).collect()
}

/// Apportions `freed` wall-clock seconds among `survivors` proportionally
/// to their hyperparameter counts (the serial-time analogue of
/// [`apportion_trials`]; no rounding to repair).
pub fn apportion_secs(freed: f64, survivors: &[Algorithm]) -> Vec<(Algorithm, f64)> {
    if survivors.is_empty() || !freed.is_finite() || freed <= 0.0 {
        return survivors.iter().map(|&a| (a, 0.0)).collect();
    }
    let weights: Vec<f64> = survivors
        .iter()
        .map(|a| a.param_space().n_params().max(1) as f64)
        .collect();
    let sum: f64 = weights.iter().sum();
    survivors
        .iter()
        .zip(&weights)
        .map(|(&a, &w)| (a, freed * w / sum))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_param_counts() {
        // SVM has 5 params, KNN has 1: SVM gets 5x the trials (before floor).
        let shares = divide_budget(Budget::Trials(60), &[Algorithm::Svm, Algorithm::Knn]);
        assert_eq!(shares[0].1.trials(), Some(50));
        assert_eq!(shares[1].1.trials(), Some(10));
    }

    #[test]
    fn floor_guarantees_minimum() {
        let shares = divide_budget(
            Budget::Trials(6),
            &[Algorithm::Svm, Algorithm::Knn, Algorithm::NeuralNet],
        );
        for (_, b) in shares {
            let t = b.trials().expect("trial budgets divide into trial budgets");
            assert!(t >= 3);
        }
    }

    #[test]
    fn single_algorithm_gets_everything() {
        let shares = divide_budget(Budget::Trials(40), &[Algorithm::Rpart]);
        assert_eq!(shares.len(), 1);
        assert_eq!(shares[0].1, Budget::Trials(40));
    }

    #[test]
    fn equal_param_counts_split_evenly() {
        // J48 and part both have 3 params.
        let shares = divide_budget(Budget::Trials(20), &[Algorithm::J48, Algorithm::Part]);
        assert_eq!(shares[0].1, shares[1].1);
    }

    #[test]
    fn apportioned_trials_sum_exactly() {
        for freed in [0usize, 1, 7, 23, 100] {
            let shares = apportion_trials(
                freed,
                &[Algorithm::Svm, Algorithm::Knn, Algorithm::RandomForest],
            );
            let total: usize = shares.iter().map(|(_, t)| t).sum();
            assert_eq!(total, freed, "freed={freed} must be fully reassigned");
        }
    }

    #[test]
    fn apportionment_follows_param_counts() {
        // SVM (5 params) outweighs KNN (1 param).
        let shares = apportion_trials(12, &[Algorithm::Svm, Algorithm::Knn]);
        assert_eq!(shares[0].0, Algorithm::Svm);
        assert_eq!(shares[0].1, 10);
        assert_eq!(shares[1].1, 2);
    }

    #[test]
    fn apportionment_handles_empty_survivors() {
        assert!(apportion_trials(10, &[]).is_empty());
        assert!(apportion_secs(10.0, &[]).is_empty());
    }

    #[test]
    fn apportioned_secs_sum_and_ignore_degenerate_inputs() {
        let shares = apportion_secs(9.0, &[Algorithm::J48, Algorithm::Part]);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 9.0).abs() < 1e-9);
        assert!((shares[0].1 - shares[1].1).abs() < 1e-9);
        for (_, s) in apportion_secs(f64::NAN, &[Algorithm::Knn]) {
            assert_eq!(s, 0.0);
        }
        for (_, s) in apportion_secs(-1.0, &[Algorithm::Knn]) {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn apportionment_is_deterministic() {
        let algorithms = [Algorithm::Svm, Algorithm::Knn, Algorithm::NeuralNet];
        let a = apportion_trials(17, &algorithms);
        let b = apportion_trials(17, &algorithms);
        assert_eq!(a, b);
    }
}
